"""Ablation A3: cut-enumeration front end — throughput and yield.

Times k-feasible cut enumeration and cut-function extraction on the
EPFL-like suite, and records the extraction report (functions per size,
balanced/degenerate fractions) that feeds Tables II/III.

Writes ``results/cut_enumeration.md``.
"""

import pytest

from repro.aig.cuts import cut_statistics, enumerate_cuts
from repro.analysis.tables import write_markdown_table
from repro.workloads.epfl import epfl_like_suite, suite_summary
from repro.workloads.extraction import extract_cut_functions, extraction_report


@pytest.fixture(scope="module")
def suite(scale):
    return epfl_like_suite(scale=scale.suite_scale)


@pytest.mark.parametrize("circuit", ["adder", "multiplier", "ctrl", "voter"])
def test_enumeration_throughput(benchmark, suite, circuit, scale):
    aig = suite[circuit]
    cuts = benchmark.pedantic(
        enumerate_cuts,
        args=(aig,),
        kwargs={"k": max(scale.sizes), "max_cuts": scale.max_cuts},
        rounds=1,
        iterations=1,
    )
    assert len(cuts) >= aig.num_inputs


def test_extraction_throughput(benchmark, suite, scale):
    aig = suite["adder"]
    functions = benchmark.pedantic(
        extract_cut_functions,
        args=([aig],),
        kwargs={"sizes": scale.sizes, "max_cuts": scale.max_cuts},
        rounds=1,
        iterations=1,
    )
    assert sum(len(v) for v in functions.values()) > 0


def test_cut_reports(benchmark, suite, workload, results_dir, scale):
    rows = extraction_report(workload)
    write_markdown_table(
        rows,
        results_dir / "cut_enumeration.md",
        title=f"Ablation A3 — extracted cut functions (scale={scale.name})",
    )
    write_markdown_table(
        suite_summary(suite),
        results_dir / "suite.md",
        title=f"EPFL-like suite (scale={scale.name})",
    )
    stats = benchmark.pedantic(
        cut_statistics,
        args=(enumerate_cuts(suite["max"], k=max(scale.sizes)),),
        rounds=1,
        iterations=1,
    )
    assert stats
