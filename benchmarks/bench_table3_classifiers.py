"""Bench: Table III — runtime and accuracy of all NPN classifiers.

Per-method timing benchmarks on the largest workload slice, plus a full
Table III regeneration written to ``results/table3.md``.

Paper reference (paper scale):

    n   #func    exact   kitty      huang13      petkovska16  zhou20        ours
    6   28672    1673    1673/39s   7375/.006s   1752/.021s   1690/.046s    1673/.121s
    8   480516   48895   -          190708/.13   50066/.554   49577/4.7     48887/12.3

Reproduced claims: ours matches (or near-matches) exact; huang13 is
fastest but overcounts massively; petkovska16 and zhou20 sit in between;
kitty is exact but orders of magnitude slower and capped at small n.
"""

import pytest

from repro.analysis.tables import write_markdown_table
from repro.baselines import get_classifier
from repro.experiments.table3 import METHODS, table3_row


@pytest.fixture(scope="module")
def table3_rows(workload, scale):
    return [
        table3_row(
            n,
            workload[n],
            kitty_max_n=scale.kitty_max_n,
            kitty_limit=scale.kitty_limit,
        )
        for n in sorted(workload)
    ]


@pytest.fixture(scope="module")
def largest_set(workload):
    n = max(workload)
    return workload[n]


@pytest.mark.parametrize("method", [*METHODS, "kitty"])
def test_classifier_throughput(benchmark, method, workload, scale):
    """Per-function keying cost of each method (kitty on a small slice)."""
    if method == "kitty":
        n = min(workload)
        tables = workload[n][: min(scale.kitty_limit, 50)]
    else:
        n = max(workload)
        tables = workload[n]
    classifier = get_classifier(method)

    def run():
        return len({classifier.key(tt) for tt in tables})

    classes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert classes >= 1


def test_exact_engine_throughput(benchmark, workload):
    n = max(workload)
    tables = workload[n]
    exact = get_classifier("exact")
    result = benchmark.pedantic(
        lambda: exact.classify(tables).num_classes, rounds=1, iterations=1
    )
    assert result >= 1


def test_table3_regeneration(benchmark, table3_rows, results_dir, scale):
    write_markdown_table(
        table3_rows,
        results_dir / "table3.md",
        title=f"Table III — classifier comparison (scale={scale.name})",
    )
    benchmark.pedantic(lambda: table3_rows, rounds=1, iterations=1)
    assert len(table3_rows) == len(set(row["n"] for row in table3_rows))


def test_table3_accuracy_shape(table3_rows):
    """The paper's accuracy ordering on every row."""
    for row in table3_rows:
        exact = row["exact"]
        assert row["ours_classes"] <= exact
        assert row["ours_classes"] >= 0.98 * exact
        assert row["huang13_classes"] >= exact
        assert row["petkovska16_classes"] >= exact
        assert row["zhou20_classes"] >= exact
        # huang13 is the coarsest heuristic.
        assert row["huang13_classes"] >= row["zhou20_classes"]


def test_table3_kitty_matches_exact_where_run(table3_rows, workload):
    """Kitty's canonical form is exact on the slice it processes."""
    from repro.baselines.exact import ExactClassifier

    for row in table3_rows:
        if row["kitty_classes"] is None:
            continue
        subset = list(workload[row["n"]])[: row["kitty_functions"]]
        assert row["kitty_classes"] == ExactClassifier().count_classes(subset)


def test_table3_huang_is_fastest(table3_rows):
    """Runtime shape: huang13 beats the near-exact canonical methods."""
    for row in table3_rows:
        if row["functions"] < 200:
            continue  # timing noise on tiny sets
        assert row["huang13_seconds"] <= row["petkovska16_seconds"] * 2
        assert row["huang13_seconds"] <= row["zhou20_seconds"] * 2
