"""Shared fixtures for the benchmark harness.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke`` / ``small``
(default) / ``paper``.  Every bench writes its regenerated table to
``benchmarks/results/`` so EXPERIMENTS.md can reference concrete runs.

Acceptance benches additionally persist machine-readable results via the
``persist_bench`` fixture — one ``BENCH_<name>.json`` per bench under
``benchmarks/results/`` — so the performance trajectory is tracked as a
concrete artifact across PRs instead of living only in CI logs.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

import pytest

# Make the sibling `benchmarks` modules importable when pytest is invoked
# from the repository root.
sys.path.insert(0, str(Path(__file__).parent))

from repro.experiments.workload_cache import benchmark_functions, scale_settings

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    """The resolved scale settings for this run."""
    return scale_settings(None)


@pytest.fixture(scope="session")
def workload(scale):
    """The per-n EPFL-like cut-function sets (built once per session)."""
    return benchmark_functions(scale.name)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def persist_bench(results_dir):
    """Writer for machine-readable per-bench result files.

    ``persist_bench(name, payload)`` writes ``results/BENCH_<name>.json``
    containing the payload plus enough environment context (python,
    platform) to interpret numbers later.  Timings vary run to run, so
    these files are artifacts, not golden files — regression tooling
    should compare trends, not bytes.
    """

    def persist(name: str, payload: dict) -> Path:
        document = {
            "bench": name,
            "python": platform.python_version(),
            "platform": platform.platform(),
            **payload,
        }
        path = results_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        return path

    return persist
