"""Shared fixtures for the benchmark harness.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke`` / ``small``
(default) / ``paper``.  Every bench writes its regenerated table to
``benchmarks/results/`` so EXPERIMENTS.md can reference concrete runs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the sibling `benchmarks` modules importable when pytest is invoked
# from the repository root.
sys.path.insert(0, str(Path(__file__).parent))

from repro.experiments.workload_cache import benchmark_functions, scale_settings

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    """The resolved scale settings for this run."""
    return scale_settings(None)


@pytest.fixture(scope="session")
def workload(scale):
    """The per-n EPFL-like cut-function sets (built once per session)."""
    return benchmark_functions(scale.name)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
