"""Ablation A4: signature-guided exact canonicalisation vs Kitty.

The paper's future-work direction (influence/sensitivity inside an exact
method), measured: per-function canonicalisation cost and search-space
size of the guided canonical form against exhaustive enumeration, on
circuit cut functions.

Writes ``results/ablation_guided.md``.
"""

import time

import pytest

from repro.analysis.tables import write_markdown_table
from repro.baselines.exact_enum import exact_npn_canonical
from repro.baselines.guided import guided_exact_canonical, search_space_size
from repro.core.transforms import group_order


@pytest.fixture(scope="module")
def sample(workload):
    n = min(max(workload), 6)  # keep kitty affordable
    return n, list(workload[n])[:150]


def test_guided_throughput(benchmark, sample):
    n, tables = sample
    result = benchmark.pedantic(
        lambda: len({guided_exact_canonical(tt).bits for tt in tables}),
        rounds=1,
        iterations=1,
    )
    assert result >= 1


def test_kitty_throughput(benchmark, sample):
    n, tables = sample
    subset = tables[:40]
    result = benchmark.pedantic(
        lambda: len({exact_npn_canonical(tt).representative.bits for tt in subset}),
        rounds=1,
        iterations=1,
    )
    assert result >= 1


def test_guided_vs_kitty_table(benchmark, sample, results_dir):
    n, tables = sample
    subset = tables[:60]

    start = time.perf_counter()
    guided_keys = {guided_exact_canonical(tt).bits for tt in subset}
    guided_seconds = time.perf_counter() - start

    start = time.perf_counter()
    kitty_keys = {exact_npn_canonical(tt).representative.bits for tt in subset}
    kitty_seconds = time.perf_counter() - start

    sizes = [search_space_size(tt) for tt in subset]
    rows = [
        {
            "n": n,
            "functions": len(subset),
            "guided_classes": len(guided_keys),
            "kitty_classes": len(kitty_keys),
            "guided_seconds": round(guided_seconds, 3),
            "kitty_seconds": round(kitty_seconds, 3),
            "speedup": round(kitty_seconds / max(guided_seconds, 1e-9), 1),
            "mean_search_space": round(sum(sizes) / len(sizes), 1),
            "kitty_search_space": group_order(n),
        }
    ]
    write_markdown_table(
        rows,
        results_dir / "ablation_guided.md",
        title="Ablation A4 — guided exact canonicalisation vs exhaustive (Kitty)",
    )
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    # Both are exact: identical class counts; guided must win on speed.
    assert len(guided_keys) == len(kitty_keys)
    assert guided_seconds < kitty_seconds
