"""Bench: signature-vector computation kernels + Table I regeneration.

Micro-benchmarks for every vector of Definition 6-10 (the per-function
work inside Algorithm 1's loop), plus the end-to-end MSV, at a
representative bit width — and a run that regenerates Table I and writes
it to ``results/table1.md``.
"""

import random

import pytest

from repro.analysis.tables import write_markdown_table
from repro.core import signatures as sig
from repro.core.msv import compute_msv
from repro.core.truth_table import TruthTable
from repro.experiments.table1 import run_table1


@pytest.fixture(scope="module", params=[4, 6, 8, 10])
def function_under_test(request):
    rng = random.Random(request.param)
    return TruthTable.random(request.param, rng)


def bench_vector(benchmark, compute, tt):
    result = benchmark(compute, tt)
    assert result is not None


def test_ocv1(benchmark, function_under_test):
    bench_vector(benchmark, sig.ocv1, function_under_test)


def test_ocv2(benchmark, function_under_test):
    bench_vector(benchmark, sig.ocv2, function_under_test)


def test_oiv(benchmark, function_under_test):
    bench_vector(benchmark, sig.oiv, function_under_test)


def test_osv_histogram(benchmark, function_under_test):
    bench_vector(benchmark, sig.osv_histogram, function_under_test)


def test_osdv_split(benchmark, function_under_test):
    bench_vector(benchmark, sig.osdv1, function_under_test)


def test_full_msv(benchmark, function_under_test):
    result = benchmark(compute_msv, function_under_test)
    assert result.key


def test_regenerate_table1(benchmark, results_dir):
    rows = benchmark(run_table1)
    assert all(row["matches_paper"] for row in rows)
    printable = [
        {
            "signature": row["signature"],
            "f1": str(row["f1"]),
            "f3": str(row["f3"]),
            "matches_paper": row["matches_paper"],
        }
        for row in rows
    ]
    write_markdown_table(
        printable,
        results_dir / "table1.md",
        title="Table I — signature vectors of f1 and f3 (all match the paper)",
    )
