"""Bench: observability must cost <3% of coalesced service throughput.

The acceptance contract of the observability layer (ISSUE 9): the
instrumented hot path — metrics mirroring, per-request tracing, and the
profiling hooks on the engine/library/canonical layers — may cost at
most :data:`MAX_OVERHEAD_FRACTION` of coalesced ``match_many``
throughput versus the same daemon with :func:`repro.obs.set_enabled`
flipped off (every recording call early-returns on one flag read, and
``Tracer.start`` returns ``None`` so no spans are taken).

Methodology mirrors ``bench_service_throughput.py`` — a prebuilt
library, one pipelined connection, cache disabled so every query walks
the full engine path — measured as **paired ratios**: enabled and
disabled run back-to-back (order alternating per pair) and the gate is
the *median* of the per-pair ratios.  Pairing cancels the slow load
drift of a shared runner (adjacent runs see similar machine state),
alternation cancels order bias, and the median discards blip pairs —
a plain best-of-N on each side flickered by more than the gate itself.

Results go to ``results/obs_overhead.md`` (human) and
``results/BENCH_obs.json`` (machine, for cross-PR tracking).
"""

import statistics
import time

import pytest

from repro import obs
from repro.analysis.tables import write_markdown_table
from repro.library import build_library
from repro.service import ServiceClient, ThreadedService
from repro.workloads import random_tables

WORKLOAD_N = 6
QUERY_COUNT = 2_000
WORKLOAD_SEED = 2023

#: Instrumentation may cost at most this fraction of throughput.
MAX_OVERHEAD_FRACTION = 0.03

#: Back-to-back (enabled, disabled) pairs; the gate is the median ratio.
PAIRS = 7

COALESCED_BATCH = 256
COALESCED_WAIT_MS = 5.0


@pytest.fixture(scope="module")
def query_tables():
    return random_tables(WORKLOAD_N, QUERY_COUNT, WORKLOAD_SEED)


@pytest.fixture(scope="module")
def served_library(query_tables):
    """Built from the workload itself, so every query hits."""
    return build_library(query_tables)


def _serve_once(library, tables, enabled: bool) -> float:
    """One daemon run with observability on/off; returns seconds."""
    previous = obs.set_enabled(enabled)
    try:
        with ThreadedService(
            library,
            max_batch=COALESCED_BATCH,
            max_wait_ms=COALESCED_WAIT_MS,
            max_pending=4 * len(tables),
            cache_size=0,  # no cache assists; every query walks the engine
        ) as svc:
            with ServiceClient(port=svc.port) as client:
                t0 = time.perf_counter()
                results = client.match_many(tables)
                seconds = time.perf_counter() - t0
        assert all(r["hit"] for r in results)
        return seconds
    finally:
        obs.set_enabled(previous)


def test_observability_overhead_under_threshold(
    query_tables, served_library, results_dir, persist_bench
):
    """The acceptance gate: enabled costs <3% vs disabled, paired median."""
    _serve_once(served_library, query_tables, True)  # warm-up, untimed
    enabled_runs, disabled_runs, ratios = [], [], []
    for pair_index in range(PAIRS):
        order = (True, False) if pair_index % 2 == 0 else (False, True)
        seconds = {
            enabled: _serve_once(served_library, query_tables, enabled)
            for enabled in order
        }
        enabled_runs.append(seconds[True])
        disabled_runs.append(seconds[False])
        ratios.append(seconds[True] / seconds[False])

    overhead = statistics.median(ratios) - 1.0
    enabled_seconds = min(enabled_runs)
    disabled_seconds = min(disabled_runs)
    assert overhead < MAX_OVERHEAD_FRACTION, (
        f"observability costs {overhead:.1%} of coalesced throughput "
        f"(median of {PAIRS} paired ratios; best {disabled_seconds:.3f}s "
        f"off vs {enabled_seconds:.3f}s on); the gate is "
        f"{MAX_OVERHEAD_FRACTION:.0%}"
    )

    rows = [
        {
            "observability": state,
            "seconds": round(seconds, 4),
            "queries_per_s": round(QUERY_COUNT / seconds),
        }
        for state, seconds in [
            ("disabled (obs.set_enabled(False))", disabled_seconds),
            ("enabled (default)", enabled_seconds),
        ]
    ]
    write_markdown_table(
        rows,
        results_dir / "obs_overhead.md",
        title=(
            f"Observability overhead — {QUERY_COUNT} random {WORKLOAD_N}-var "
            f"coalesced queries, {max(overhead, 0.0):.2%} overhead "
            f"(gate {MAX_OVERHEAD_FRACTION:.0%})"
        ),
    )
    persist_bench(
        "obs",
        {
            "workload": {
                "n": WORKLOAD_N,
                "count": QUERY_COUNT,
                "seed": WORKLOAD_SEED,
            },
            "pairs": PAIRS,
            "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
            "enabled_seconds": round(enabled_seconds, 4),
            "disabled_seconds": round(disabled_seconds, 4),
            "pair_ratios": [round(r, 4) for r in ratios],
            "overhead_fraction": round(overhead, 4),
            "enabled_queries_per_s": round(QUERY_COUNT / enabled_seconds),
            "disabled_queries_per_s": round(QUERY_COUNT / disabled_seconds),
        },
    )
