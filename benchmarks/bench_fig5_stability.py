"""Bench: Fig. 5 — runtime linearity and stability.

The paper's claim: on consecutive-encoding random sets the signature
classifier's cumulative runtime grows linearly with the number of
functions and barely varies across chunks, while the canonical-form
method (``testnpn -11`` / zhou20 here) fluctuates widely.

Writes ``results/fig5.md`` with the (x, y) series for both methods at 5
and 7 bits, plus the relative-spread stability scores.
"""

import pytest

from repro.analysis.tables import write_markdown_table
from repro.analysis.timing import time_classifier
from repro.baselines import get_classifier
from repro.experiments.fig5 import fig5_series
from repro.workloads.random_functions import consecutive_tables

WIDTHS = (5, 7)
METHODS = ("ours", "zhou20")


@pytest.fixture(scope="module")
def fig5_rows(scale):
    return [fig5_series(n, scale.fig5_counts, METHODS) for n in WIDTHS]


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("method", METHODS)
def test_throughput_on_consecutive_sets(benchmark, width, method, scale):
    tables = consecutive_tables(width, scale.fig5_counts[0], seed=width)
    classifier = get_classifier(method)
    count = benchmark.pedantic(
        lambda: len({classifier.key(tt) for tt in tables}), rounds=1, iterations=1
    )
    assert count >= 1


def test_fig5_regeneration(benchmark, fig5_rows, results_dir, scale):
    rows = []
    for row in fig5_rows:
        for index, point in enumerate(row["points"]):
            rows.append(
                {
                    "n": row["n"],
                    "functions": point,
                    **{m: row[m][index] for m in METHODS},
                }
            )
    write_markdown_table(
        rows,
        results_dir / "fig5.md",
        title=f"Fig. 5 — cumulative seconds vs #functions (scale={scale.name})",
    )
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    assert rows


def test_fig5_ours_linear(fig5_rows):
    """Cumulative time of ours grows ~linearly: the per-function cost of
    the last segment stays within 4x of the first segment's."""
    for row in fig5_rows:
        points = row["points"]
        times = row["ours"]
        if times[0] <= 0 or len(points) < 2:
            continue
        first_rate = times[0] / points[0]
        last_rate = (times[-1] - times[-2]) / (points[-1] - points[-2])
        assert last_rate <= 4 * first_rate + 1e-9


def test_fig5_stability_scores(benchmark, scale, results_dir):
    """Ours is steadier across independently drawn consecutive sets than
    the canonical-form baseline (the paper's actual Fig. 5 comparison:
    runtime as a function of *which* set was generated)."""
    from repro.experiments.fig5 import block_stability

    rows = []
    for width in WIDTHS:
        scores = block_stability(
            width, scale.fig5_counts[0], METHODS, base_seed=31 * width
        )
        rows.append({"n": width, **{m: round(s, 4) for m, s in scores.items()}})
    write_markdown_table(
        rows,
        results_dir / "fig5_stability.md",
        title="Fig. 5 stability — relative spread of per-chunk runtimes",
    )
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    assert rows
