"""Bench: the fabric must scale throughput with workers, correctly.

The acceptance run of the distributed fabric (ISSUE 10): the same
pipelined workload the service bench uses — random 6-variable queries
against a library built from the workload itself — is pushed through a
real router + worker fleet (subprocesses, the operator entry points) at
1, 2, and 4 workers.  For every fleet size:

* every witness re-verifies **offline** (decode transform + rep, apply,
  compare) — scale-out must not bend correctness;
* the router reports zero degraded refusals and zero retries — a
  healthy fleet serves without touching the failure machinery.

Throughput must not collapse as workers are added (router fan-out +
replica sharding are supposed to compose), and on machines with enough
cores the 4-worker fleet must beat the 1-worker fleet.  Results go to
``results/fabric_scaling.md`` (human) and ``results/BENCH_fabric.json``
(machine, for cross-PR tracking).
"""

import json
import os
import time

import pytest

from repro.analysis.tables import write_markdown_table
from repro.core.transforms import NPNTransform
from repro.core.truth_table import TruthTable
from repro.fabric.chaos import ChaosFleet
from repro.library import build_library
from repro.service import ServiceClient
from repro.service.client import http_get
from repro.workloads import random_tables

WORKLOAD_N = 6
QUERY_COUNT = 1_500
WORKLOAD_SEED = 2023

FLEET_SIZES = (1, 2, 4)

#: With >= 4 usable cores the 4-worker fleet must beat the 1-worker
#: fleet by at least this factor (modest on purpose: shared CI runners
#: are noisy, and the win to pin is "scale-out helps", not a ratio).
MIN_SCALING_4X = 1.1

ROUTER_KNOBS = {"timeout_ms": 30_000, "attempts": 2}


@pytest.fixture(scope="module")
def query_tables():
    return random_tables(WORKLOAD_N, QUERY_COUNT, WORKLOAD_SEED)


@pytest.fixture(scope="module")
def fabric_library_dir(query_tables, tmp_path_factory):
    """A library built from the workload, saved for the worker fleets."""
    path = tmp_path_factory.mktemp("fabric_bench") / "lib"
    build_library(query_tables).save(path)
    return path


def _verify_offline(tables, results) -> None:
    for query, result in zip(tables, results):
        assert result["hit"], f"{query!r} missed its own library"
        representative = TruthTable.from_hex(
            result["n"], result["representative"]
        )
        transform = NPNTransform.from_dict(result["transform"])
        assert representative.apply(transform) == query, (
            f"witness for {query!r} does not re-verify offline"
        )


def _run_fleet(library_dir, worker_count, tables):
    """One fleet run: pipeline every query, return (results, s, stats)."""
    ring = tuple(f"w{i}" for i in range(worker_count))
    with ChaosFleet(library_dir, ring) as fleet:
        fleet.start(**ROUTER_KNOBS)
        with ServiceClient(port=fleet.router.port, timeout=120.0) as client:
            t0 = time.perf_counter()
            results = client.match_many(tables)
            seconds = time.perf_counter() - t0
        status, body = http_get(fleet.router.address, "/v1/stats")
        assert status == 200
        stats = json.loads(body)
    return results, seconds, stats


def test_fabric_scaling_and_witness_verification(
    query_tables, fabric_library_dir, results_dir, persist_bench
):
    """The acceptance run: 1 -> 2 -> 4 workers, all witnesses verified."""
    runs = {}
    for worker_count in FLEET_SIZES:
        results, seconds, stats = _run_fleet(
            fabric_library_dir, worker_count, query_tables
        )
        _verify_offline(query_tables, results)
        fabric = stats["fabric"]
        # A healthy fleet never touches the failure machinery.
        assert fabric["degraded"] == 0
        assert fabric["retries"] == 0
        assert stats["registry"]["counts"]["alive"] == worker_count
        runs[worker_count] = {
            "seconds": round(seconds, 4),
            "queries_per_s": round(QUERY_COUNT / seconds),
            "errors": sum(stats.get("errors_by_type", {}).values()),
        }

    qps = {count: runs[count]["queries_per_s"] for count in FLEET_SIZES}
    # Adding workers must never collapse throughput.
    assert qps[4] > 0.5 * qps[1], f"4-worker fleet collapsed: {qps}"
    cores = len(os.sched_getaffinity(0))
    if cores >= 4:
        assert qps[4] >= MIN_SCALING_4X * qps[1], (
            f"no scale-out win on {cores} cores: {qps}"
        )

    rows = [
        {
            "workers": count,
            "seconds": runs[count]["seconds"],
            "queries_per_s": runs[count]["queries_per_s"],
            "speedup_vs_1": round(qps[count] / qps[1], 2),
        }
        for count in FLEET_SIZES
    ]
    write_markdown_table(
        rows,
        results_dir / "fabric_scaling.md",
        title=(
            f"Fabric scaling — {QUERY_COUNT} random {WORKLOAD_N}-var "
            f"queries through router + N workers, every witness "
            f"re-verified offline"
        ),
    )
    persist_bench(
        "fabric",
        {
            "workload": {
                "n": WORKLOAD_N,
                "count": QUERY_COUNT,
                "seed": WORKLOAD_SEED,
            },
            "router": ROUTER_KNOBS,
            "cores": cores,
            "min_scaling_required_at_4": MIN_SCALING_4X,
            "runs": {str(count): runs[count] for count in FLEET_SIZES},
            "speedup_4_vs_1": round(qps[4] / qps[1], 3),
        },
    )
