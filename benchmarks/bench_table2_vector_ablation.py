"""Bench: Table II — class counts per signature-vector combination.

Regenerates every row of the paper's Table II on the EPFL-like workload,
asserts the two structural properties (soundness vs exact; refinement as
parts are added), and writes ``results/table2.md``.

Paper reference (EPFL workload, paper scale):

    n   exact  OIV    OCV1   OSV    OIV+OSV  ...  All
    4   49     28     41     48     48            49
    6   1673   1175   1380   1619   1654          1673
    8   48895  44497  44183  48584  48876         48887

The reproduced *counts* differ (different circuit instances, see
DESIGN.md); the ordering between columns is the reproduced claim.
"""

import pytest

from repro.analysis.stats import refinement_holds
from repro.analysis.tables import write_markdown_table
from repro.experiments.table2 import COLUMNS, table2_row


@pytest.fixture(scope="module")
def table2_rows(workload, scale):
    return [table2_row(n, workload[n]) for n in sorted(workload)]


def test_table2_full(benchmark, workload, scale, results_dir, table2_rows):
    """Time one full Table II regeneration (smallest n as the benchmark
    body — the full table is produced once by the fixture)."""
    smallest = min(workload)
    row = benchmark.pedantic(
        table2_row, args=(smallest, workload[smallest]), rounds=1, iterations=1
    )
    assert row["All"] <= row["exact"]
    write_markdown_table(
        table2_rows,
        results_dir / "table2.md",
        title=f"Table II — signature-vector ablation (scale={scale.name})",
    )


def test_table2_soundness(table2_rows):
    """No column ever exceeds the exact class count."""
    for row in table2_rows:
        for label in COLUMNS:
            assert row[label] <= row["exact"], (row["n"], label)


def test_table2_refinement(table2_rows):
    """Adding vectors only splits classes (the paper's column ordering)."""
    for row in table2_rows:
        assert refinement_holds([row["OIV"], row["OIV+OSV"], row["All"]])
        assert refinement_holds(
            [row["OCV1"], row["OCV1+OSV"], row["OCV1+OCV2+OSV"], row["All"]]
        )
        assert refinement_holds([row["OSV"], row["OIV+OSV"], row["OIV+OSV+OSDV"]])


def test_table2_point_beats_face(table2_rows):
    """Section IV-A: sensitivity discriminates better than 1-ary cofactors,
    and the OIV+OSV combination beats cofactors alone."""
    better = 0
    total = 0
    for row in table2_rows:
        total += 1
        if row["OSV"] >= row["OCV1"] and row["OIV+OSV"] >= row["OCV1"]:
            better += 1
    assert better >= total - 1  # allow one workload-specific inversion


def test_table2_all_near_exact(table2_rows):
    """The full MSV stays within 1% of exact on every row (paper: exact
    up to n=7, 48887/48895 at n=8)."""
    for row in table2_rows:
        assert row["All"] >= 0.99 * row["exact"], row["n"]
