"""Ablation A2: OSDV pair-counting strategy — FWHT vs direct pairwise.

DESIGN.md calls out the O(2^n * n) Walsh-Hadamard auto-correlation as the
implementation choice behind OSDV; the alternative is the naive O(m^2)
pair loop.  This bench measures both across set densities and widths and
records the crossover, justifying the adaptive threshold in
``repro.spectral.walsh.DIRECT_PAIR_THRESHOLD``.

Writes ``results/ablation_osdv.md``.
"""

import random
import time

import numpy as np
import pytest

from repro.analysis.tables import write_markdown_table
from repro.spectral.walsh import (
    pair_distance_histogram_direct,
    xor_autocorrelation,
)
from repro.core import bitops


def random_indicator(n, members, seed):
    rng = random.Random(seed)
    indicator = np.zeros(1 << n, dtype=np.int64)
    for index in rng.sample(range(1 << n), members):
        indicator[index] = 1
    return indicator


def fwht_histogram(indicator, n):
    correlation = xor_autocorrelation(indicator)
    weights = bitops.popcount_table(n)
    histogram = np.zeros(n + 1, dtype=np.int64)
    np.add.at(histogram, weights, correlation)
    histogram[0] = 0
    return histogram // 2


@pytest.mark.parametrize("n", [6, 8, 10])
@pytest.mark.parametrize("density", [0.05, 0.25, 0.5])
def test_fwht_pair_counting(benchmark, n, density):
    members = max(2, int(density * (1 << n)))
    indicator = random_indicator(n, members, seed=n)
    histogram = benchmark(fwht_histogram, indicator, n)
    assert int(histogram.sum()) == members * (members - 1) // 2


@pytest.mark.parametrize("n", [6, 8, 10])
@pytest.mark.parametrize("density", [0.05, 0.25])
def test_direct_pair_counting(benchmark, n, density):
    members = max(2, int(density * (1 << n)))
    indicator = random_indicator(n, members, seed=n)
    indices = np.flatnonzero(indicator)
    histogram = benchmark(pair_distance_histogram_direct, indices, n)
    assert int(histogram.sum()) == members * (members - 1) // 2


def test_crossover_table(benchmark, results_dir):
    """Measure both strategies across set sizes; record the crossover."""
    rows = []
    n = 8
    for members in (4, 8, 16, 24, 32, 64, 128):
        indicator = random_indicator(n, members, seed=members)
        indices = np.flatnonzero(indicator)
        start = time.perf_counter()
        for _ in range(20):
            pair_distance_histogram_direct(indices, n)
        direct_us = (time.perf_counter() - start) / 20 * 1e6
        start = time.perf_counter()
        for _ in range(20):
            fwht_histogram(indicator, n)
        fwht_us = (time.perf_counter() - start) / 20 * 1e6
        rows.append(
            {
                "members": members,
                "direct_us": round(direct_us, 1),
                "fwht_us": round(fwht_us, 1),
                "winner": "direct" if direct_us < fwht_us else "fwht",
            }
        )
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    write_markdown_table(
        rows,
        results_dir / "ablation_osdv.md",
        title="Ablation A2 — OSDV pair counting: direct vs FWHT (n=8)",
    )
    # The FWHT must win for dense sets (the asymptotic claim).
    assert rows[-1]["winner"] == "fwht"
