"""Bench: Figs. 3-4 — witness reconstruction and discrimination power.

Times the exhaustive 4-variable searches that reconstruct the paper's
case-study functions from their printed signature values, verifies every
claim, and writes ``results/fig34.md``.
"""

import pytest

from repro.analysis.tables import write_markdown_table
from repro.experiments.fig34 import (
    find_fig3_witness,
    find_fig4_g_witness,
    find_fig4_h_witness,
    run_fig34,
)


def test_fig3_search(benchmark):
    witness = benchmark.pedantic(find_fig3_witness, rounds=1, iterations=1)
    assert witness is not None
    assert witness.is_balanced


def test_fig4_g_search(benchmark):
    pair = benchmark.pedantic(find_fig4_g_witness, rounds=1, iterations=1)
    assert pair is not None


def test_fig4_h_search(benchmark):
    pair = benchmark.pedantic(find_fig4_h_witness, rounds=1, iterations=1)
    assert pair is not None


def test_fig34_regeneration(benchmark, results_dir):
    rows = benchmark.pedantic(run_fig34, rounds=1, iterations=1)
    assert len(rows) == 3
    assert all(row["holds"] for row in rows)
    printable = [
        {
            "case": row["case"],
            "functions": " vs ".join(row["functions"]),
            "claim": row["claim"],
            "holds": row["holds"],
        }
        for row in rows
    ]
    write_markdown_table(
        printable,
        results_dir / "fig34.md",
        title="Figs. 3-4 — reconstructed witnesses (all claims verified)",
    )
