"""Bench: the gather-kernel matcher must beat the seed scalar matcher.

The acceptance contract of the kernels layer (ISSUE 5): on 5000 mixed
hit/miss 6-variable queries against a 2500-class library — every hit a
random NPN image of a stored class, so each one forces a real witness
search — the kernel-backed ``ClassLibrary.match_many`` must deliver
**at least 5x** the throughput of the seed scalar matcher
(:func:`repro.baselines.matcher.find_npn_transform_scalar` per query,
the exact pre-kernels hot path), and every witness must re-verify
*offline*: applying the returned transform to the stored representative
must reproduce the query exactly, via the scalar big-int ``apply`` —
not the gather kernels that produced it.

Signatures are computed once, outside both timed regions, and handed to
both paths: the ratio isolates the witness-search hot path the kernels
replace (the signature pass is identical shared work, and the online
service provides it precomputed exactly the same way).  The kernel side
takes the best of two runs so a scheduler blip on a shared runner
cannot fail the ratio; noise on the (much longer) scalar side only
inflates the measured speedup.

Results go to ``results/matcher.md`` (human) and
``results/BENCH_matcher.json`` (machine, for cross-PR tracking).
"""

import time

import pytest

from repro.analysis.tables import write_markdown_table
from repro.baselines.matcher import find_npn_transform_scalar
from repro.library import build_library
from repro.workloads import hit_miss_queries

#: The acceptance workload: 5000 mixed hit/miss 6-variable queries.
WORKLOAD_N = 6
HIT_COUNT = 2_500
MISS_COUNT = 2_500
WORKLOAD_SEED = 1105

#: Required throughput ratio of the kernel path over the seed matcher.
MIN_MATCHER_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def workload_queries():
    corpus, queries = hit_miss_queries(
        WORKLOAD_N, HIT_COUNT, MISS_COUNT, WORKLOAD_SEED
    )
    return build_library(corpus), queries


def _seed_match_many(library, queries, signatures):
    """The pre-kernels match loop: one scalar witness search per query."""
    out = []
    for query, signature in zip(queries, signatures):
        entry = library.classes.get(library.class_id_of(signature))
        if entry is None:
            out.append(None)
            continue
        witness = find_npn_transform_scalar(entry.representative, query)
        out.append(None if witness is None else (entry, witness))
    return out


def _verify_offline(queries, outcomes) -> int:
    """Scalar re-verification of every witness; returns hit count."""
    hits = 0
    for query, outcome in zip(queries, outcomes):
        if outcome is None:
            continue
        entry, witness = outcome
        assert entry.representative.apply(witness) == query, (
            f"witness for {query!r} does not re-verify offline"
        )
        hits += 1
    return hits


def test_kernel_matcher_speedup_and_witness_parity(
    workload_queries, results_dir, persist_bench
):
    """The acceptance run: >= 5x match_many speedup, byte-equal outcomes."""
    library, queries = workload_queries
    signatures = library._signature_engine().signatures(queries)

    start = time.perf_counter()
    scalar_outcomes = _seed_match_many(library, queries, signatures)
    scalar_seconds = time.perf_counter() - start

    kernel_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        kernel_matches = library.match_many(queries, signatures=signatures)
        kernel_seconds = min(kernel_seconds, time.perf_counter() - start)
    kernel_outcomes = [
        None if match is None else (match.entry, match.transform)
        for match in kernel_matches
    ]

    # Every witness (from both paths) re-verifies offline, and the two
    # paths agree byte-for-byte: same hits, same classes, same witnesses.
    scalar_hits = _verify_offline(queries, scalar_outcomes)
    kernel_hits = _verify_offline(queries, kernel_outcomes)
    assert scalar_hits == kernel_hits == HIT_COUNT
    for scalar_outcome, kernel_outcome in zip(scalar_outcomes, kernel_outcomes):
        assert (scalar_outcome is None) == (kernel_outcome is None)
        if kernel_outcome is not None:
            assert kernel_outcome[0].class_id == scalar_outcome[0].class_id
            assert kernel_outcome[1] == scalar_outcome[1]

    speedup = scalar_seconds / kernel_seconds
    assert speedup >= MIN_MATCHER_SPEEDUP, (
        f"kernels only bought {speedup:.2f}x "
        f"({scalar_seconds:.2f}s scalar vs {kernel_seconds:.2f}s kernel)"
    )

    total = len(queries)
    rows = [
        {
            "matcher": "seed scalar backtracker",
            "seconds": round(scalar_seconds, 4),
            "queries_per_s": round(total / scalar_seconds),
        },
        {
            "matcher": "gather kernels (match_many)",
            "seconds": round(kernel_seconds, 4),
            "queries_per_s": round(total / kernel_seconds),
        },
    ]
    write_markdown_table(
        rows,
        results_dir / "matcher.md",
        title=(
            f"Matcher kernels — {total} mixed hit/miss {WORKLOAD_N}-var "
            f"queries, {speedup:.1f}x speedup, every witness re-verified"
        ),
    )
    persist_bench(
        "matcher",
        {
            "workload": {
                "n": WORKLOAD_N,
                "hits": HIT_COUNT,
                "misses": MISS_COUNT,
                "seed": WORKLOAD_SEED,
                "library_classes": library.num_classes,
            },
            "min_speedup_required": MIN_MATCHER_SPEEDUP,
            "speedup": round(speedup, 3),
            "scalar_seconds": round(scalar_seconds, 4),
            "kernel_seconds": round(kernel_seconds, 4),
            "scalar_queries_per_s": round(total / scalar_seconds),
            "kernel_queries_per_s": round(total / kernel_seconds),
            "witnesses_verified_offline": kernel_hits,
            "witnesses_byte_identical_to_scalar": True,
        },
    )


def test_matcher_throughput_benchmark(benchmark, workload_queries):
    """pytest-benchmark timing of the kernel-backed configuration."""
    library, queries = workload_queries
    signatures = library._signature_engine().signatures(queries)
    result = benchmark.pedantic(
        library.match_many,
        (queries,),
        {"signatures": signatures},
        rounds=3,
        iterations=1,
    )
    assert sum(1 for match in result if match is not None) == HIT_COUNT
