"""Bench: the service's coalescer must amortise like the offline engine.

The acceptance contract of the online service (ISSUE 4): on 2000 random
6-variable queries pipelined over one connection against a prebuilt
library, serving with ``max_batch=256`` must deliver **at least 5x** the
throughput of ``max_batch=1`` (request-at-a-time serving, everything
else identical) — and every served witness must re-verify *offline*:
decoding the reply's transform and representative and applying one to
the other must reproduce the query exactly.

The match cache is disabled for the measurement (queries are unique
anyway) so the ratio isolates what coalescing buys on the engine path:
one vectorized ``PackedTables`` signature pass per batch instead of per
request.  The coalesced side takes the best of two runs so a scheduler
blip on a shared runner cannot fail the ratio; noise on the (much
longer) serial side only inflates the measured speedup.

Results go to ``results/service_throughput.md`` (human) and
``results/BENCH_service.json`` (machine, for cross-PR tracking).
"""

import time

import pytest

from repro.analysis.tables import write_markdown_table
from repro.core.transforms import NPNTransform
from repro.core.truth_table import TruthTable
from repro.library import build_library
from repro.service import ServiceClient, ThreadedService
from repro.workloads import random_tables

#: The acceptance workload: 2000 random 6-variable queries.
WORKLOAD_N = 6
QUERY_COUNT = 2_000
WORKLOAD_SEED = 42

#: Required throughput ratio of coalesced over request-at-a-time serving.
MIN_COALESCING_SPEEDUP = 5.0

COALESCED_BATCH = 256
COALESCED_WAIT_MS = 5.0


@pytest.fixture(scope="module")
def query_tables():
    return random_tables(WORKLOAD_N, QUERY_COUNT, WORKLOAD_SEED)


@pytest.fixture(scope="module")
def served_library(query_tables):
    """A library built from the query workload itself, so every query hits."""
    return build_library(query_tables)


def _serve_and_measure(library, tables, max_batch, max_wait_ms):
    """One daemon run: pipeline every query, return (results, seconds, stats)."""
    with ThreadedService(
        library,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        max_pending=4 * len(tables),
        cache_size=0,  # isolate coalescing; no cache assists
    ) as svc:
        with ServiceClient(port=svc.port) as client:
            t0 = time.perf_counter()
            results = client.match_many(tables)
            seconds = time.perf_counter() - t0
            stats = client.stats()
    return results, seconds, stats


def _verify_offline(tables, results) -> None:
    """Every served witness must reproduce its query from the stored rep."""
    for query, result in zip(tables, results):
        assert result["hit"], f"{query!r} missed its own library"
        representative = TruthTable.from_hex(result["n"], result["representative"])
        transform = NPNTransform.from_dict(result["transform"])
        assert representative.apply(transform) == query, (
            f"witness for {query!r} does not re-verify offline"
        )


def test_coalescing_speedup_and_witness_verification(
    query_tables, served_library, results_dir, persist_bench
):
    """The acceptance run: >= 5x coalescing speedup, all witnesses verified."""
    coalesced_seconds = float("inf")
    for _ in range(2):
        coalesced_results, seconds, coalesced_stats = _serve_and_measure(
            served_library, query_tables, COALESCED_BATCH, COALESCED_WAIT_MS
        )
        coalesced_seconds = min(coalesced_seconds, seconds)
    serial_results, serial_seconds, serial_stats = _serve_and_measure(
        served_library, query_tables, max_batch=1, max_wait_ms=0
    )

    _verify_offline(query_tables, coalesced_results)
    _verify_offline(query_tables, serial_results)

    # The configurations really did what their names claim.
    assert serial_stats["batches"] == QUERY_COUNT
    assert serial_stats["max_batch_size"] == 1
    assert coalesced_stats["mean_batch_size"] > 8
    assert coalesced_stats["batches"] < QUERY_COUNT / 8

    speedup = serial_seconds / coalesced_seconds
    assert speedup >= MIN_COALESCING_SPEEDUP, (
        f"coalescing only bought {speedup:.2f}x "
        f"({serial_seconds:.2f}s serial vs {coalesced_seconds:.2f}s coalesced)"
    )

    rows = [
        {
            "serving": "request-at-a-time (max_batch=1)",
            "seconds": round(serial_seconds, 4),
            "queries_per_s": round(QUERY_COUNT / serial_seconds),
            "batches": serial_stats["batches"],
            "mean_batch": serial_stats["mean_batch_size"],
        },
        {
            "serving": f"coalesced (max_batch={COALESCED_BATCH})",
            "seconds": round(coalesced_seconds, 4),
            "queries_per_s": round(QUERY_COUNT / coalesced_seconds),
            "batches": coalesced_stats["batches"],
            "mean_batch": coalesced_stats["mean_batch_size"],
        },
    ]
    write_markdown_table(
        rows,
        results_dir / "service_throughput.md",
        title=(
            f"Service coalescing — {QUERY_COUNT} random {WORKLOAD_N}-var "
            f"queries, {speedup:.1f}x speedup, every witness re-verified"
        ),
    )
    persist_bench(
        "service",
        {
            "workload": {
                "n": WORKLOAD_N,
                "count": QUERY_COUNT,
                "seed": WORKLOAD_SEED,
            },
            "min_speedup_required": MIN_COALESCING_SPEEDUP,
            "speedup": round(speedup, 3),
            "coalesced": {
                "max_batch": COALESCED_BATCH,
                "max_wait_ms": COALESCED_WAIT_MS,
                "seconds": round(coalesced_seconds, 4),
                "batches": coalesced_stats["batches"],
                "mean_batch_size": coalesced_stats["mean_batch_size"],
                "latency_p50_ms": coalesced_stats["latency_p50_ms"],
                "latency_p99_ms": coalesced_stats["latency_p99_ms"],
            },
            "serial": {
                "seconds": round(serial_seconds, 4),
                "batches": serial_stats["batches"],
                "latency_p50_ms": serial_stats["latency_p50_ms"],
                "latency_p99_ms": serial_stats["latency_p99_ms"],
            },
            "witnesses_verified_offline": QUERY_COUNT,
        },
    )


def test_cache_turns_repeat_traffic_into_no_ops(served_library, query_tables):
    """With the LRU enabled, a repeated burst is answered without batches."""
    subset = query_tables[:500]
    with ThreadedService(
        served_library,
        max_batch=COALESCED_BATCH,
        max_wait_ms=COALESCED_WAIT_MS,
        cache_size=1 << 16,
    ) as svc:
        with ServiceClient(port=svc.port) as client:
            client.match_many(subset)
            after_first = client.stats()
            t0 = time.perf_counter()
            repeat = client.match_many(subset)
            warm_seconds = time.perf_counter() - t0
            after_second = client.stats()
    assert all(result["cached"] for result in repeat)
    assert after_second["batches"] == after_first["batches"]
    assert after_second["cache_hits"] >= len(subset)
    _verify_offline(subset, repeat)
    assert warm_seconds < 1.0


def test_pipelined_throughput_benchmark(
    benchmark, served_library, query_tables
):
    """pytest-benchmark timing of the coalesced configuration."""
    with ThreadedService(
        served_library,
        max_batch=COALESCED_BATCH,
        max_wait_ms=COALESCED_WAIT_MS,
        cache_size=0,
    ) as svc:
        with ServiceClient(port=svc.port) as client:
            result = benchmark.pedantic(
                client.match_many, (query_tables,), rounds=2, iterations=1
            )
    assert len(result) == QUERY_COUNT
