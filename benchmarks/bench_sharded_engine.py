"""Bench: sharded multi-process engine — parity first, scaling second.

The acceptance contract of the sharded engine (ISSUE 2 + ISSUE 7): on
10k random 6-variable functions, :class:`repro.engine.ShardedClassifier`
must produce buckets *byte-identical* to :class:`BatchedClassifier` for
workers ∈ {1, 2, 4} over **both** transports (zero-copy shared memory
and the legacy pickle path) — the parity assertions run on every
invocation and in CI.

Scaling is asserted, not just reported, *when the box can express it*:
with ≥ 4 schedulable cores, the shm transport at workers=4 must beat
workers=1 wall-clock.  Schedulable means ``len(os.sched_getaffinity(0))``
— a 16-core machine whose CI container is pinned to one core has
effective parallelism 1, and ``os.cpu_count()`` would lie about that
(the original scale-out "regression" reports came from exactly this
mismatch plus pickle serialization dominating the fan-out).  On narrower
boxes the contract is recorded as skipped in the results artifact, and
every row carries its effective parallelism and an ``oversubscribed``
flag so a reader can tell a real regression from a starved runner.

Also measures the streaming entry point and shard-size insensitivity.
"""

import os
import time

import pytest

from functools import reduce

from repro.analysis.tables import write_markdown_table
from repro.engine import BatchedClassifier, ShardedClassifier
from repro.workloads import iter_random_tables, packed_shards, random_tables

#: The acceptance workload: 10k random 6-variable functions.
WORKLOAD_N = 6
WORKLOAD_COUNT = 10_000
WORKLOAD_SEED = 42

#: Worker counts whose buckets must be byte-identical to the batched engine.
PARITY_WORKERS = (1, 2, 4)

#: Minimum schedulable cores for the workers=4-beats-workers=1 assertion.
SCALING_MIN_CORES = 4


def schedulable_cores() -> int:
    """Cores this process may actually run on — the honest parallelism cap.

    ``os.cpu_count()`` reports the machine; cgroup/affinity-pinned CI
    containers can schedule on far fewer.  Falls back to ``cpu_count``
    on platforms without ``sched_getaffinity``.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - macOS/Windows fallback
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def acceptance_tables():
    return random_tables(WORKLOAD_N, WORKLOAD_COUNT, WORKLOAD_SEED)


@pytest.fixture(scope="module")
def reference_result(acceptance_tables):
    return BatchedClassifier().classify(acceptance_tables)


def test_bucket_parity_and_scaling(
    acceptance_tables, reference_result, results_dir, persist_bench
):
    """The acceptance run: dual-transport parity + the gated scaling contract."""
    reference_digest = reference_result.buckets_digest()
    affinity = schedulable_cores()
    rows = []
    seconds = {}  # (transport, workers) -> wall-clock
    for transport in ("shm", "pickle"):
        for workers in PARITY_WORKERS:
            classifier = ShardedClassifier(
                workers=workers, transport=transport
            )
            with classifier.open_pool():  # warm pool: time dispatch, not fork
                t0 = time.perf_counter()
                result = classifier.classify(acceptance_tables)
                elapsed = time.perf_counter() - t0
            assert result.buckets_digest() == reference_digest, (
                f"workers={workers} transport={transport} diverged "
                f"from the batched engine"
            )
            seconds[(transport, workers)] = elapsed
            rows.append(
                {
                    "engine": f"sharded workers={workers} [{transport}]",
                    "seconds": round(elapsed, 4),
                    "functions_per_s": round(WORKLOAD_COUNT / elapsed),
                    "effective_parallelism": min(workers, affinity),
                    "oversubscribed": workers > affinity,
                    "classes": result.num_classes,
                    "buckets": result.buckets_digest()[:12],
                }
            )
    rows.append(
        {
            "engine": "batched (single-process reference)",
            "seconds": None,
            "functions_per_s": None,
            "effective_parallelism": 1,
            "oversubscribed": False,
            "classes": reference_result.num_classes,
            "buckets": reference_digest[:12],
        }
    )

    # The scale-out contract: only meaningful when the box can actually
    # run 4 workers at once.  A pinned 1-core container exercising it
    # would "fail" on scheduler round-robin, not on engine behavior.
    single = seconds[("shm", 1)]
    multi = seconds[("shm", 4)]
    scaling_asserted = affinity >= SCALING_MIN_CORES
    if scaling_asserted:
        assert multi < single, (
            f"scale-out regression: workers=4 ({multi:.2f}s) did not beat "
            f"workers=1 ({single:.2f}s) over shm with {affinity} "
            f"schedulable cores"
        )

    write_markdown_table(
        rows,
        results_dir / "sharded_engine.md",
        title=(
            f"Sharded engine parity + scaling "
            f"({WORKLOAD_COUNT} random {WORKLOAD_N}-var functions, "
            f"{affinity} schedulable cores; shm workers=1 {single:.2f}s "
            f"vs workers=4 {multi:.2f}s; scaling contract "
            f"{'asserted' if scaling_asserted else 'skipped: too few cores'})"
        ),
    )
    persist_bench(
        "sharded_engine",
        {
            "workload": {
                "n": WORKLOAD_N,
                "count": WORKLOAD_COUNT,
                "seed": WORKLOAD_SEED,
            },
            "cpus": os.cpu_count(),
            "schedulable_cores": affinity,
            "parity_workers": list(PARITY_WORKERS),
            "scaling_contract": {
                "min_cores": SCALING_MIN_CORES,
                "asserted": scaling_asserted,
                "holds": multi < single if scaling_asserted else None,
            },
            "seconds_by_transport_workers": {
                f"{transport}-w{workers}": round(elapsed, 4)
                for (transport, workers), elapsed in seconds.items()
            },
            "rows": rows,
        },
    )


def test_streaming_matches_one_shot(reference_result):
    """classify_iter over a lazy generator reproduces the one-shot buckets."""
    classifier = ShardedClassifier(workers=2, shard_size=512)
    streamed = classifier.classify_iter(
        iter_random_tables(WORKLOAD_N, WORKLOAD_COUNT, WORKLOAD_SEED),
        stream_chunk=1024,
    )
    assert streamed.buckets_digest() == reference_result.buckets_digest()


def test_shard_size_insensitive(acceptance_tables, reference_result):
    """Pathological shard sizes cannot change the output, only the speed."""
    subset = acceptance_tables[:1_000]
    reference = BatchedClassifier().classify(subset)
    for shard_size in (1, 97, 100_000):
        result = ShardedClassifier(workers=2, shard_size=shard_size).classify(
            subset
        )
        assert result.buckets_digest() == reference.buckets_digest()


def test_manual_shard_merge_matches_one_shot(reference_result):
    """Classifying packed shards separately and merging reproduces buckets.

    The workload-side sharding path: ``packed_shards`` feeds shard-sized
    batches to independent classify calls whose results are folded with
    ``merged_with`` — the DIY equivalent of what ``ShardedClassifier``
    automates, and it must land on the same digest.
    """
    stream = iter_random_tables(WORKLOAD_N, WORKLOAD_COUNT, WORKLOAD_SEED)
    classifier = BatchedClassifier()
    partials = [classifier.classify(shard) for shard in packed_shards(stream, 1024)]
    merged = reduce(lambda left, right: left.merged_with(right), partials)
    assert merged.buckets_digest() == reference_result.buckets_digest()


def test_no_leaked_shm_segments(acceptance_tables):
    """After sharded runs, this process owns zero live /dev/shm arenas."""
    from repro.engine.shm import live_arena_names

    classifier = ShardedClassifier(workers=2, transport="shm")
    classifier.classify(acceptance_tables[:500])
    assert live_arena_names() == []


def test_sharded_classify_benchmark(benchmark, acceptance_tables):
    """pytest-benchmark timing of the default-configuration sharded run."""
    def run():
        return ShardedClassifier().classify(acceptance_tables)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.num_functions == WORKLOAD_COUNT
