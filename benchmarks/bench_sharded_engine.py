"""Bench: sharded multi-process engine — parity first, throughput second.

The acceptance contract of the sharded engine (ISSUE 2): on 10k random
6-variable functions, :class:`repro.engine.ShardedClassifier` must
produce buckets *byte-identical* to :class:`BatchedClassifier` for
workers ∈ {1, 2, 4} — the parity assertion runs on every invocation and
in CI.  Throughput of workers=1 vs workers=#CPUs is *reported* (written
to ``results/sharded_engine.md``) but not asserted: shard fan-out only
pays off when real cores are available, and CI runners may have one.

Also measures the streaming entry point and shard-size insensitivity.
"""

import os
import time

import pytest

from functools import reduce

from repro.analysis.tables import write_markdown_table
from repro.engine import BatchedClassifier, ShardedClassifier
from repro.workloads import iter_random_tables, packed_shards, random_tables

#: The acceptance workload: 10k random 6-variable functions.
WORKLOAD_N = 6
WORKLOAD_COUNT = 10_000
WORKLOAD_SEED = 42

#: Worker counts whose buckets must be byte-identical to the batched engine.
PARITY_WORKERS = (1, 2, 4)


@pytest.fixture(scope="module")
def acceptance_tables():
    return random_tables(WORKLOAD_N, WORKLOAD_COUNT, WORKLOAD_SEED)


@pytest.fixture(scope="module")
def reference_result(acceptance_tables):
    return BatchedClassifier().classify(acceptance_tables)


def test_bucket_parity_and_throughput(
    acceptance_tables, reference_result, results_dir, persist_bench
):
    """The acceptance run: parity for workers ∈ {1, 2, 4} + throughput table."""
    reference_digest = reference_result.buckets_digest()
    cpus = os.cpu_count() or 1
    rows = []
    seconds_by_workers = {}
    for workers in sorted({*PARITY_WORKERS, cpus}):
        t0 = time.perf_counter()
        result = ShardedClassifier(workers=workers).classify(acceptance_tables)
        seconds = time.perf_counter() - t0
        assert result.buckets_digest() == reference_digest, (
            f"workers={workers} diverged from the batched engine"
        )
        seconds_by_workers[workers] = seconds
        rows.append(
            {
                "engine": f"sharded workers={workers}",
                "seconds": round(seconds, 4),
                "functions_per_s": round(WORKLOAD_COUNT / seconds),
                "classes": result.num_classes,
                "buckets": result.buckets_digest()[:12],
            }
        )
    multi = seconds_by_workers[cpus]
    single = seconds_by_workers[1]
    rows.append(
        {
            "engine": "batched (single-process reference)",
            "seconds": None,
            "functions_per_s": None,
            "classes": reference_result.num_classes,
            "buckets": reference_digest[:12],
        }
    )
    write_markdown_table(
        rows,
        results_dir / "sharded_engine.md",
        title=(
            f"Sharded engine parity + throughput "
            f"({WORKLOAD_COUNT} random {WORKLOAD_N}-var functions, "
            f"{cpus} CPUs: workers=1 {single:.2f}s vs "
            f"workers={cpus} {multi:.2f}s)"
        ),
    )
    persist_bench(
        "sharded_engine",
        {
            "workload": {
                "n": WORKLOAD_N,
                "count": WORKLOAD_COUNT,
                "seed": WORKLOAD_SEED,
            },
            "cpus": cpus,
            "parity_workers": list(PARITY_WORKERS),
            "seconds_by_workers": {
                str(workers): round(seconds, 4)
                for workers, seconds in seconds_by_workers.items()
            },
            "rows": rows,
        },
    )


def test_streaming_matches_one_shot(reference_result):
    """classify_iter over a lazy generator reproduces the one-shot buckets."""
    classifier = ShardedClassifier(workers=2, shard_size=512)
    streamed = classifier.classify_iter(
        iter_random_tables(WORKLOAD_N, WORKLOAD_COUNT, WORKLOAD_SEED),
        stream_chunk=1024,
    )
    assert streamed.buckets_digest() == reference_result.buckets_digest()


def test_shard_size_insensitive(acceptance_tables, reference_result):
    """Pathological shard sizes cannot change the output, only the speed."""
    subset = acceptance_tables[:1_000]
    reference = BatchedClassifier().classify(subset)
    for shard_size in (1, 97, 100_000):
        result = ShardedClassifier(workers=2, shard_size=shard_size).classify(
            subset
        )
        assert result.buckets_digest() == reference.buckets_digest()


def test_manual_shard_merge_matches_one_shot(reference_result):
    """Classifying packed shards separately and merging reproduces buckets.

    The workload-side sharding path: ``packed_shards`` feeds shard-sized
    batches to independent classify calls whose results are folded with
    ``merged_with`` — the DIY equivalent of what ``ShardedClassifier``
    automates, and it must land on the same digest.
    """
    stream = iter_random_tables(WORKLOAD_N, WORKLOAD_COUNT, WORKLOAD_SEED)
    classifier = BatchedClassifier()
    partials = [classifier.classify(shard) for shard in packed_shards(stream, 1024)]
    merged = reduce(lambda left, right: left.merged_with(right), partials)
    assert merged.buckets_digest() == reference_result.buckets_digest()


def test_sharded_classify_benchmark(benchmark, acceptance_tables):
    """pytest-benchmark timing of the default-configuration sharded run."""
    def run():
        return ShardedClassifier().classify(acceptance_tables)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.num_functions == WORKLOAD_COUNT
