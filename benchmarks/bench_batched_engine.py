"""Bench: batched signature engine vs. the per-function classifier.

The headline acceptance check of the engine: on a 10k-function, n=6
random workload the :class:`repro.engine.BatchedClassifier` must deliver
at least 3x the throughput of ``FacePointClassifier`` while producing
byte-identical class buckets (checked via ``buckets_digest``).  Also
measures the packed-batch entry point, the warm-cache hot path, and the
per-stage scaling over n; writes ``results/batched_engine.md``.
"""

import time

import pytest

from repro.analysis.tables import write_markdown_table
from repro.core.classifier import FacePointClassifier
from repro.engine import BatchedClassifier, PackedTables
from repro.workloads import packed_consecutive_tables, random_tables

#: The acceptance workload: 10k random 6-variable functions.
WORKLOAD_N = 6
WORKLOAD_COUNT = 10_000
WORKLOAD_SEED = 42

#: Required throughput ratio of batched over per-function classification.
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def acceptance_tables():
    return random_tables(WORKLOAD_N, WORKLOAD_COUNT, WORKLOAD_SEED)


@pytest.fixture(scope="module")
def acceptance_packed(acceptance_tables):
    return PackedTables.from_tables(acceptance_tables)


def test_per_function_classify(benchmark, acceptance_tables):
    result = benchmark.pedantic(
        FacePointClassifier().classify, (acceptance_tables,), rounds=1, iterations=1
    )
    assert result.num_functions == WORKLOAD_COUNT


def test_batched_classify(benchmark, acceptance_tables):
    def run():
        return BatchedClassifier().classify(acceptance_tables)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.num_functions == WORKLOAD_COUNT


def test_batched_classify_prepacked(benchmark, acceptance_packed):
    def run():
        return BatchedClassifier().classify(acceptance_packed)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.num_functions == WORKLOAD_COUNT


def test_warm_cache_classify(benchmark, acceptance_tables):
    classifier = BatchedClassifier()
    classifier.classify(acceptance_tables)  # prime the signature cache

    result = benchmark.pedantic(
        classifier.classify, (acceptance_tables,), rounds=3, iterations=1
    )
    assert result.num_functions == WORKLOAD_COUNT
    assert classifier.cache_stats.hit_rate > 0.5


def test_speedup_and_bucket_parity(acceptance_tables, results_dir, persist_bench):
    """The engine's contract: >= 3x throughput, byte-identical buckets.

    The batched side takes the best of two cold runs so a scheduler blip
    on a shared CI runner cannot fail the ratio; noise on the (much
    longer) per-function baseline only inflates the measured speedup.
    """
    t0 = time.perf_counter()
    reference = FacePointClassifier().classify(acceptance_tables)
    per_function_seconds = time.perf_counter() - t0

    batched_seconds = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        batched = BatchedClassifier().classify(acceptance_tables)
        batched_seconds = min(batched_seconds, time.perf_counter() - t0)

    assert batched.buckets_digest() == reference.buckets_digest()
    speedup = per_function_seconds / batched_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine is only {speedup:.2f}x faster "
        f"({per_function_seconds:.2f}s vs {batched_seconds:.2f}s)"
    )

    rows = [
        {
            "engine": "per-function",
            "seconds": per_function_seconds,
            "functions_per_s": WORKLOAD_COUNT / per_function_seconds,
            "classes": reference.num_classes,
            "buckets": reference.buckets_digest()[:12],
        },
        {
            "engine": "batched",
            "seconds": batched_seconds,
            "functions_per_s": WORKLOAD_COUNT / batched_seconds,
            "classes": batched.num_classes,
            "buckets": batched.buckets_digest()[:12],
        },
    ]
    write_markdown_table(
        rows,
        results_dir / "batched_engine.md",
        title=(
            f"Batched engine vs per-function classifier "
            f"({WORKLOAD_COUNT} random {WORKLOAD_N}-var functions, "
            f"{speedup:.1f}x speedup)"
        ),
    )
    persist_bench(
        "batched_engine",
        {
            "workload": {
                "n": WORKLOAD_N,
                "count": WORKLOAD_COUNT,
                "seed": WORKLOAD_SEED,
            },
            "min_speedup_required": MIN_SPEEDUP,
            "speedup": round(speedup, 3),
            "rows": rows,
        },
    )


def test_cache_skips_recomputation(results_dir):
    """Consecutive-table stress: the second pass is nearly free."""
    batch = packed_consecutive_tables(WORKLOAD_N, 5_000, seed=7)
    classifier = BatchedClassifier()

    t0 = time.perf_counter()
    cold = classifier.classify(batch)
    cold_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = classifier.classify(batch)
    warm_seconds = time.perf_counter() - t0

    assert warm.buckets_digest() == cold.buckets_digest()
    assert classifier.cache_stats.hits >= 5_000
    assert warm_seconds < cold_seconds
