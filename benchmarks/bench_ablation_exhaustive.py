"""Ablation A1: exhaustive function spaces vs known exact class counts.

Over ALL functions of 2 and 3 variables (and 4 at paper scale), compare
the class counts of every MSV part selection against the mathematically
known exact counts (4, 14, 222).  This removes the workload from the
equation entirely: any gap is the signature's intrinsic inexactness.

Writes ``results/ablation_exhaustive.md``.
"""

import os

import pytest

from repro.analysis.tables import write_markdown_table
from repro.core.classifier import FacePointClassifier
from repro.core.truth_table import TruthTable
from repro.experiments.table2 import COLUMNS

KNOWN_EXACT = {1: 2, 2: 4, 3: 14, 4: 222}


def all_functions(n):
    return [TruthTable(n, bits) for bits in range(1 << (1 << n))]


@pytest.fixture(scope="module")
def widths(scale):
    return (2, 3, 4) if scale.name == "paper" else (2, 3)


@pytest.fixture(scope="module")
def ablation_rows(widths):
    rows = []
    for n in widths:
        tables = all_functions(n)
        row = {"n": n, "functions": len(tables), "exact": KNOWN_EXACT[n]}
        for label, parts in COLUMNS.items():
            row[label] = FacePointClassifier(parts).count_classes(tables)
        rows.append(row)
    return rows


def test_exhaustive_ablation(benchmark, ablation_rows, results_dir):
    tables = all_functions(3)
    clf = FacePointClassifier()
    count = benchmark.pedantic(
        lambda: clf.count_classes(tables), rounds=1, iterations=1
    )
    assert count == KNOWN_EXACT[3]
    write_markdown_table(
        ablation_rows,
        results_dir / "ablation_exhaustive.md",
        title="Ablation A1 — all n-variable functions vs known exact counts",
    )


def test_full_msv_exact_on_small_spaces(ablation_rows):
    """The full MSV achieves the known exact counts (222/222 at n = 4)."""
    for row in ablation_rows:
        assert row["All"] == row["exact"]


def test_single_vectors_are_strictly_coarser(ablation_rows):
    """On the full n=3 space, each single vector alone is inexact."""
    row = next(r for r in ablation_rows if r["n"] == 3)
    assert row["OIV"] < row["exact"]
    assert row["OCV1"] < row["exact"]
    # OSV alone is strong but the combination is what reaches exactness.
    assert row["OSV"] <= row["exact"]
