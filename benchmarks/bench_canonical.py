"""Bench: canonical engine vs signature buckets — parity and pruning.

The canonical engine's acceptance contract:

* **Count parity** — on every n = 4..6 mixed workload the exact engine
  reports class counts byte-identical to the batched signature engine
  (the signatures are perfect discriminators there), with identical
  member partitions.
* **Pruning** — on the mixed n = 6 workload the signature pre-filter +
  matcher must decide at least 90% of the functions without an exact
  canonicalization (``pruned_fraction >= 0.90``).

Results are persisted to ``results/BENCH_canonical.json`` and the
markdown table to ``results/canonical_compare.md``.
"""

import pytest

from repro.analysis.tables import write_markdown_table
from repro.canonical.engine import CanonicalClassifier
from repro.engine import BatchedClassifier
from repro.experiments.canonical_compare import (
    COMPARE_ARITIES,
    _mixed_workload,
    run_canonical_compare,
)

#: Serving-shaped workload per arity: hot orbits (each contributing
#: many NPN images) salted with fresh random misses.
WORKLOAD_ORBITS = 40
WORKLOAD_REPEATS = 24
WORKLOAD_FRESH = 40
WORKLOAD_SEED = 2023

#: Minimum share of functions the pre-filter must decide at n = 6.
MIN_PRUNED_FRACTION = 0.90


def _partition(result):
    return sorted(
        tuple(sorted(tt.bits for tt in members))
        for members in result.groups.values()
    )


@pytest.fixture(scope="module")
def compare_rows():
    return run_canonical_compare(
        orbits=WORKLOAD_ORBITS,
        repeats=WORKLOAD_REPEATS,
        fresh=WORKLOAD_FRESH,
        seed=WORKLOAD_SEED,
    )


@pytest.mark.parametrize("n", COMPARE_ARITIES)
def test_class_count_parity(n):
    tables = _mixed_workload(
        n,
        orbits=WORKLOAD_ORBITS,
        repeats=WORKLOAD_REPEATS,
        fresh=WORKLOAD_FRESH,
        seed=WORKLOAD_SEED,
    )
    signature = BatchedClassifier().classify(tables)
    canonical = CanonicalClassifier().classify(tables)
    assert canonical.num_classes == signature.num_classes
    assert _partition(canonical) == _partition(signature)


def test_pruning_and_persist(compare_rows, results_dir, persist_bench):
    """The acceptance run: >= 90% pruned at n = 6, table persisted."""
    by_n = {row["n"]: row for row in compare_rows}
    for n in COMPARE_ARITIES:
        assert by_n[n]["canonical_classes"] == by_n[n]["signature_classes"]
    pruned = by_n[6]["pruned_fraction"]
    assert pruned >= MIN_PRUNED_FRACTION, (
        f"signature pre-filter pruned only {pruned:.1%} of exact "
        f"canonicalization calls at n=6 (need >= {MIN_PRUNED_FRACTION:.0%})"
    )
    write_markdown_table(
        compare_rows,
        results_dir / "canonical_compare.md",
        title=(
            "Canonical engine vs signature buckets — mixed "
            f"{WORKLOAD_ORBITS}+{WORKLOAD_FRESH} workload per n"
        ),
    )
    persist_bench(
        "canonical",
        {
            "workload": {
                "orbits": WORKLOAD_ORBITS,
                "repeats_per_orbit": WORKLOAD_REPEATS,
                "fresh": WORKLOAD_FRESH,
                "seed": WORKLOAD_SEED,
            },
            "min_pruned_fraction_required": MIN_PRUNED_FRACTION,
            "pruned_fraction_n6": pruned,
            "rows": compare_rows,
        },
    )
