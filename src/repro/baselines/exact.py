"""Exact NPN classification at scale: MSV bucketing + pairwise matching.

The paper's "#Exact Classes" column (computed there with Kitty for n <= 6
and ABC's exact mode beyond) is reproduced here without exhaustive
enumeration: functions are first bucketed by their full Mixed Signature
Vector — a sound invariant, so NPN-equivalent functions always share a
bucket — and the (rare) multi-member buckets are resolved by the complete
pairwise matcher of :mod:`repro.baselines.matcher`.

Because the MSV is a near-perfect discriminator (Table II), buckets almost
always contain a single exact class and the matcher is invoked only to
*confirm* equivalence, keeping the engine close to linear time in
practice while remaining exact by construction.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.baselines.base import GroupingResult, register_classifier
from repro.baselines.matcher import find_npn_transform
from repro.core.msv import DEFAULT_PARTS, compute_msv, normalize_parts
from repro.core.truth_table import TruthTable

__all__ = ["ExactClassifier", "ExactStats"]


@dataclass
class ExactStats:
    """Work counters for one classification run (ablation instrumentation)."""

    functions: int = 0
    buckets: int = 0
    match_attempts: int = 0
    match_successes: int = 0
    collision_buckets: set = field(default_factory=set)

    @property
    def bucket_collisions(self) -> int:
        """Buckets holding more than one exact class (MSV inexactness)."""
        return len(self.collision_buckets)


@register_classifier
class ExactClassifier:
    """Exact NPN classification via signature buckets and complete matching.

    Args:
        bucket_parts: MSV parts used for the (sound) pre-bucketing.
            Weaker selections stay exact — they only shift work onto the
            matcher.  The default is the paper's full MSV.
    """

    name = "exact"

    def __init__(self, bucket_parts: Iterable[str] = DEFAULT_PARTS) -> None:
        self.bucket_parts = normalize_parts(bucket_parts)
        self.stats = ExactStats()

    def classify(self, tables: Iterable[TruthTable]) -> GroupingResult:
        """Group into *exact* NPN classes.

        Class keys are ``(msv, ordinal)`` pairs: the bucket signature plus
        the index of the exact class inside the bucket.
        """
        result = GroupingResult(self.name)
        stats = self.stats = ExactStats()
        buckets: dict = {}
        for tt in tables:
            stats.functions += 1
            signature = compute_msv(tt, self.bucket_parts)
            representatives = buckets.setdefault(signature, [])
            matched = None
            for ordinal, rep in enumerate(representatives):
                stats.match_attempts += 1
                if find_npn_transform(rep, tt) is not None:
                    stats.match_successes += 1
                    matched = ordinal
                    break
            if matched is None:
                matched = len(representatives)
                representatives.append(tt)
                if matched:
                    stats.collision_buckets.add(signature)
            result.add((signature, matched), tt)
        stats.buckets = len(buckets)
        return result

    def count_classes(self, tables: Iterable[TruthTable]) -> int:
        """Number of exact classes (same work as :meth:`classify`)."""
        return self.classify(tables).num_classes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExactClassifier(bucket_parts={self.bucket_parts})"
