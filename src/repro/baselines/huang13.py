"""Huang et al., FPT'13 — the ``testnpn -6`` baseline of Table III.

"Fast Boolean matching based on NPN classification" computes a canonical
form in a single linear pass over 1-ary cofactor counts:

1. complement the output if ones are the majority,
2. complement every input whose positive cofactor outweighs the negative,
3. sort variables by their (normalised) positive-cofactor count, breaking
   ties by original index.

No tie is ever resolved semantically, so NPN-equivalent functions with
balanced outputs, balanced variables or equal cofactor counts frequently
receive different "canonical" forms — the method is ultra fast but splits
classes heavily (the paper measures 251 claimed classes against 49 exact
ones at n = 4).  Our reconstruction keeps exactly that character.
"""

from __future__ import annotations

from repro.baselines.base import KeyedClassifier, register_classifier
from repro.baselines.refinement import ordering_transform, phase_normalize
from repro.core.truth_table import TruthTable

__all__ = ["huang_canonical", "Huang13Classifier"]


def huang_canonical(tt: TruthTable) -> TruthTable:
    """Single-pass heuristic canonical form (see module docstring)."""
    n = tt.n
    if n == 0:
        return TruthTable(0, 0)
    normalized, output_phase, input_phase = phase_normalize(tt)
    counts = [normalized.cofactor_count(i, 1) for i in range(n)]
    order = sorted(range(n), key=lambda i: (counts[i], i))
    transform = ordering_transform(n, order, input_phase, output_phase)
    return tt.apply(transform)


@register_classifier
class Huang13Classifier(KeyedClassifier):
    """Classifier keyed by the Huang'13 heuristic canonical form."""

    name = "huang13"

    def key(self, tt: TruthTable):
        return huang_canonical(tt).bits
