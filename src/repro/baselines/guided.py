"""Signature-guided *exact* NPN canonicalisation — the paper's future work.

The paper closes with: "Influence and sensitivity still have great
potential to be extended to the traditional method to achieve exact NPN
classification, and we will explore them in the future."  This module is
that extension, realised:

The canonical form is defined as the minimum truth table over all
**key-respecting** transforms — transforms that (a) normalise polarities
from cofactor counts where counts decide, and (b) arrange variables in
non-decreasing order of their face/point keys (influence + cofactor pair
+ per-polarity sensitivity histograms, sharpened by 2-ary cross-cofactor
refinement).  Because the keys are NP-invariant, the key-respecting
transform sets of two NPN-equivalent functions correspond one-to-one, so
the restricted minimum is a *complete and sound* canonical form — exact
classification — while the enumeration space shrinks from
``2^(n+1) * n!`` to the product of residual tie-block factorials times
``2^(#count-balanced variables)``.

A fully symmetric tie block (every pair NE-symmetric) is collapsed to a
single arrangement: any order yields the same table.  For typical cut
functions the whole search degenerates to a handful of candidates, giving
Kitty-exact results at a fraction of Kitty's cost (measured in
``benchmarks/bench_ablation_guided.py``).
"""

from __future__ import annotations

import itertools

from repro.baselines.base import KeyedClassifier, register_classifier
from repro.baselines.matcher import variable_keys
from repro.baselines.refinement import ordering_transform, refine_partition
from repro.core.truth_table import TruthTable

__all__ = ["guided_exact_canonical", "GuidedExactClassifier", "search_space_size"]


def guided_exact_canonical(tt: TruthTable) -> TruthTable:
    """Exact canonical form via face/point-key-restricted enumeration."""
    n = tt.n
    if n == 0:
        return TruthTable(0, 0)
    half = 1 << (n - 1)
    count = tt.count_ones()
    if count < half:
        output_phases = (0,)
    elif count > half:
        output_phases = (1,)
    else:
        output_phases = (0, 1)

    best: TruthTable | None = None
    for output_phase in output_phases:
        base = tt if output_phase == 0 else ~tt
        for candidate in _pn_candidates(base):
            if best is None or candidate < best:
                best = candidate
    return best


def _pn_candidates(base: TruthTable):
    """Yield the key-respecting PN images of ``base`` (output fixed)."""
    n = base.n
    determined_phase = 0
    undecided: list[int] = []
    for i in range(n):
        positive = base.cofactor_count(i, 1)
        negative = base.cofactor_count(i, 0)
        if positive > negative:
            determined_phase |= 1 << i
        elif positive == negative:
            undecided.append(i)
    normalized = base.flip_inputs(determined_phase)

    blocks = refine_partition(
        normalized, initial_keys=list(variable_keys(normalized))
    )
    block_orders = [_block_arrangements(normalized, block) for block in blocks]

    for arrangement in itertools.product(*block_orders):
        order = [v for block in arrangement for v in block]
        for extra in _phase_masks(undecided):
            transform = ordering_transform(
                n, order, determined_phase ^ extra, 0
            )
            yield base.apply(transform)


def _block_arrangements(tt: TruthTable, block: list[int]) -> list[tuple[int, ...]]:
    """Within-block orders to try; collapses fully symmetric blocks."""
    if len(block) <= 1:
        return [tuple(block)]
    symmetric = all(
        tt.has_symmetric_pair(block[a], block[b])
        for a in range(len(block))
        for b in range(a + 1, len(block))
    )
    if symmetric:
        return [tuple(block)]
    return [tuple(p) for p in itertools.permutations(block)]


def _phase_masks(undecided: list[int]):
    """All selective negations over the count-balanced variables."""
    for bits in range(1 << len(undecided)):
        mask = 0
        for position, variable in enumerate(undecided):
            if (bits >> position) & 1:
                mask |= 1 << variable
        yield mask


def search_space_size(tt: TruthTable) -> int:
    """Candidates the guided search enumerates (vs ``2^(n+1) n!`` for Kitty).

    Instrumentation for the ablation bench.
    """
    n = tt.n
    if n == 0:
        return 1
    half = 1 << (n - 1)
    count = tt.count_ones()
    output_phases = 2 if count == half else 1
    total = 0
    for output_phase in range(2):
        if output_phases == 1 and (
            (output_phase == 0) != (count < half)
        ):
            continue
        base = tt if output_phase == 0 else ~tt
        determined = 0
        undecided = 0
        for i in range(n):
            positive = base.cofactor_count(i, 1)
            negative = base.cofactor_count(i, 0)
            if positive > negative:
                determined |= 1 << i
            elif positive == negative:
                undecided += 1
        normalized = base.flip_inputs(determined)
        blocks = refine_partition(
            normalized, initial_keys=list(variable_keys(normalized))
        )
        arrangements = 1
        for block in blocks:
            arrangements *= len(_block_arrangements(normalized, block))
        total += arrangements * (1 << undecided)
    return total


@register_classifier
class GuidedExactClassifier(KeyedClassifier):
    """Exact classifier keyed by the guided canonical form.

    Same exactness as ``kitty``; the per-function cost adapts to the
    function's signature structure instead of always paying ``2^n * n!``.
    """

    name = "guided"

    def key(self, tt: TruthTable):
        return guided_exact_canonical(tt).bits
