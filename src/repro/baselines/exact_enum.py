"""Exhaustive exact NPN canonicalisation — the "Kitty" baseline of Table III.

The canonical form of a function is the lexicographically smallest truth
table over its entire NPN orbit (all ``2^(n+1) * n!`` transformations).
Enumeration uses one elementary table operation per step:

* permutations via Heap's algorithm (one variable swap per step),
* input phases via the reflected Gray code (one variable flip per step),
* both output polarities.

This is the same strategy as Kitty's ``exact_npn_canonization``.  Exact by
construction, and — like the paper reports for Kitty — impractically slow
beyond n = 6; larger instances go through
:class:`repro.baselines.exact.ExactClassifier` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import KeyedClassifier, register_classifier
from repro.core import bitops
from repro.core.transforms import NPNTransform, all_transforms
from repro.core.truth_table import TruthTable

__all__ = [
    "CanonicalForm",
    "exact_npn_canonical",
    "exact_npn_canonical_reference",
    "ExactEnumerationClassifier",
]


@dataclass(frozen=True)
class CanonicalForm:
    """Canonical representative plus a transform that reaches it."""

    representative: TruthTable
    transform: NPNTransform

    def verify(self, original: TruthTable) -> bool:
        """Check ``transform(original) == representative``."""
        return original.apply(self.transform) == self.representative


def exact_npn_canonical(tt: TruthTable) -> CanonicalForm:
    """Minimum truth table over the NPN orbit, with a witnessing transform."""
    n = tt.n
    if n == 0:
        # Orbit of a constant is {f, ~f}; the representative is constant 0.
        rep = TruthTable(0, 0)
        return CanonicalForm(rep, NPNTransform((), 0, tt.bits & 1))
    best_bits = None
    best_state = None  # (output_phase, perm tuple, gray mask)
    for output_phase in (0, 1):
        base = tt.bits if output_phase == 0 else bitops.flip_output(tt.bits, n)
        for perm, permuted in _heap_permutations(base, n):
            candidate = permuted
            gray = 0
            step = 0
            while True:
                if best_bits is None or candidate < best_bits:
                    best_bits = candidate
                    # `perm` is Heap's live list — snapshot it.
                    best_state = (output_phase, tuple(perm), gray)
                step += 1
                if step == 1 << n:
                    break
                var = (step & -step).bit_length() - 1
                candidate = bitops.flip_input(candidate, n, var)
                gray ^= 1 << var
    output_phase, perm, gray = best_state
    # candidate = flip_inputs(permute(base, perm), gray) corresponds to
    # input phase p_i = gray bit at perm[i] (flips applied after permuting).
    input_phase = 0
    for i in range(n):
        input_phase |= ((gray >> perm[i]) & 1) << i
    transform = NPNTransform(tuple(perm), input_phase, output_phase)
    return CanonicalForm(TruthTable(n, best_bits), transform)


def exact_npn_canonical_reference(tt: TruthTable) -> TruthTable:
    """O(2^(n+1) n! * 2^n) brute-force oracle for tiny ``n``."""
    return min(tt.apply(t) for t in all_transforms(tt.n))


def _heap_permutations(table: int, n: int):
    """Yield ``(perm, permuted_table)`` for all n! permutations.

    Heap's algorithm swaps one pair of array entries between consecutive
    permutations; the table is updated with the matching variable swap, so
    the invariant ``permuted_table == permute_inputs(table, perm)`` holds
    throughout (swapping values u, v in the array composes the value
    transposition on the left of the effective permutation).
    """
    perm = list(range(n))
    current = table
    yield perm, current
    counters = [0] * n
    i = 1
    while i < n:
        if counters[i] < i:
            j = counters[i] if i % 2 else 0
            current = bitops.swap_inputs(current, n, perm[i], perm[j])
            perm[i], perm[j] = perm[j], perm[i]
            yield perm, current
            counters[i] += 1
            i = 1
        else:
            counters[i] = 0
            i += 1


@register_classifier
class ExactEnumerationClassifier(KeyedClassifier):
    """Exact classifier keyed by the exhaustive canonical form.

    The analogue of the paper's Kitty column: exact classification with a
    per-function cost of ``O(2^n * n!)`` table operations.
    """

    name = "kitty"

    def key(self, tt: TruthTable):
        return exact_npn_canonical(tt).representative.bits
