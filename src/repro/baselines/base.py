"""Shared infrastructure for NPN classifiers: result type, base class, registry."""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field

from repro.core.truth_table import TruthTable

__all__ = ["GroupingResult", "KeyedClassifier", "register_classifier", "get_classifier"]


@dataclass
class GroupingResult:
    """Functions grouped into (claimed) NPN classes by some method."""

    method: str
    groups: dict[Hashable, list[TruthTable]] = field(default_factory=dict)

    @property
    def num_classes(self) -> int:
        return len(self.groups)

    @property
    def num_functions(self) -> int:
        return sum(len(members) for members in self.groups.values())

    def representatives(self) -> list[TruthTable]:
        return [members[0] for members in self.groups.values()]

    def class_sizes(self) -> list[int]:
        return sorted((len(m) for m in self.groups.values()), reverse=True)

    def add(self, key: Hashable, tt: TruthTable) -> None:
        self.groups.setdefault(key, []).append(tt)


class KeyedClassifier:
    """Base class for classifiers that map each function to a hashable key.

    Subclasses implement :meth:`key`; two functions land in the same class
    iff their keys are equal.  Canonical-form methods return the canonical
    truth table bits as the key.
    """

    #: short identifier used by benches and the CLI
    name = "keyed"

    def key(self, tt: TruthTable) -> Hashable:
        raise NotImplementedError

    def classify(self, tables: Iterable[TruthTable]) -> GroupingResult:
        result = GroupingResult(self.name)
        for tt in tables:
            result.add(self.key(tt), tt)
        return result

    def count_classes(self, tables: Iterable[TruthTable]) -> int:
        return len({self.key(tt) for tt in tables})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, type] = {}


def register_classifier(cls: type) -> type:
    """Class decorator registering a classifier under its ``name``."""
    _REGISTRY[cls.name] = cls
    return cls


def get_classifier(name: str, **kwargs):
    """Instantiate a registered classifier by name (for CLI and benches)."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown classifier {name!r}; known: {known}") from None
    return cls(**kwargs)


def registered_classifiers() -> tuple[str, ...]:
    """Names of all registered classifiers."""
    return tuple(sorted(_REGISTRY))
