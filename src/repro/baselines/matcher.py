"""Pairwise exact NPN matching with signature pruning.

Given two functions ``f`` and ``g``, decide whether some NPN transform
maps ``f`` onto ``g`` — and produce it.  This is the classical
"search with signature pruning" approach of the paper's related work
(in particular Zhang et al., ICCAD'21 [6], which prunes with sensitivity
signatures); it is what makes exact classification tractable beyond the
reach of exhaustive enumeration:

1. reject instantly unless satisfy counts allow a match for some output
   polarity;
2. per variable, compute an NPN-invariant *variable key* (influence,
   polarity-sorted cofactor counts, polarity-sorted sensitivity
   histograms); a variable of ``f`` may only map to a variable of ``g``
   with an identical key;
3. backtrack over slot assignments, checking after every extension that
   every cofactor of the assigned prefix has matching satisfy counts
   (``2^d`` masked popcounts at depth ``d``);
4. at full depth the prefix checks amount to bit-for-bit equality; the
   witnessing transform is verified once more for defence in depth.

Worst-case exponential like every exact matcher, but the per-variable keys
collapse the candidate lists to near-singletons for all but highly
symmetric functions — and symmetric functions succeed on the first branch.
"""

from __future__ import annotations

import numpy as np

from repro.core import bitops
from repro.core import characteristics as chars
from repro.core.transforms import NPNTransform
from repro.core.truth_table import TruthTable

__all__ = ["find_npn_transform", "are_npn_equivalent", "variable_keys"]


def find_npn_transform(
    source: TruthTable, target: TruthTable
) -> NPNTransform | None:
    """A transform ``t`` with ``t(source) == target``, or ``None``.

    Complete: returns a transform iff the functions are NPN equivalent.
    """
    if source.n != target.n:
        return None
    n = source.n
    if n == 0:
        phase = (source.bits ^ target.bits) & 1
        return NPNTransform((), 0, phase)
    if source.bits == target.bits:
        # Identical tables need no search: the identity witnesses them.
        # Library matching hits this constantly (queries equal to stored
        # representatives), so skip the variable-key computation.
        return NPNTransform.identity(n)
    size = 1 << n
    count_f, count_g = source.count_ones(), target.count_ones()
    for output_phase in (0, 1):
        expected = count_g if output_phase == 0 else size - count_g
        if count_f != expected:
            continue
        flipped = target if output_phase == 0 else ~target
        transform = _find_pn_transform(source, flipped)
        if transform is not None:
            result = NPNTransform(transform.perm, transform.input_phase, output_phase)
            if source.apply(result) == target:  # defence in depth
                return result
    return None


def are_npn_equivalent(a: TruthTable, b: TruthTable) -> bool:
    """Convenience wrapper around :func:`find_npn_transform`."""
    return find_npn_transform(a, b) is not None


def variable_keys(tt: TruthTable) -> tuple[tuple, ...]:
    """Per-variable NP-invariant keys used to restrict candidate mappings.

    Invariant under input negation and permutation (what the PN matching
    core needs — output polarity is resolved before the search); cofactor
    pairs are *not* preserved by output negation.

    Key of variable ``i``: ``(influence, sorted cofactor-count pair,
    sorted pair of per-polarity sensitivity histograms)``.  Equivalent
    variables (under any NP transform mapping one onto the other) always
    share keys; the converse does not hold, which is why a search follows.
    """
    n = tt.n
    profile = chars.sensitivity_profile(tt)
    keys = []
    for i in range(n):
        infl = chars.influence(tt, i)
        neg = tt.cofactor_count(i, 0)
        pos = tt.cofactor_count(i, 1)
        mask = bitops.to_bit_array(bitops.var_mask(n, i), n).astype(bool)
        hist_pos = tuple(np.bincount(profile[mask], minlength=n + 1).tolist())
        hist_neg = tuple(np.bincount(profile[~mask], minlength=n + 1).tolist())
        keys.append(
            (
                infl,
                (neg, pos) if neg <= pos else (pos, neg),
                min(
                    (hist_neg, hist_pos),
                    (hist_pos, hist_neg),
                ),
            )
        )
    return tuple(keys)


def _find_pn_transform(f: TruthTable, g: TruthTable) -> NPNTransform | None:
    """PN-only matching core: find ``t`` (no output negation) with ``t(f) = g``.

    Searches assignments ``slot i of f <- (variable v of g, polarity b)``
    such that ``g(x) = f(w)``, ``w_i = x_{perm[i]} ^ phase_i``.
    """
    n = f.n
    keys_f = variable_keys(f)
    keys_g = variable_keys(g)
    if sorted(keys_f) != sorted(keys_g):
        return None
    candidates = [
        [v for v in range(n) if keys_g[v] == keys_f[i]] for i in range(n)
    ]
    # Fill the most constrained slots first.
    order = sorted(range(n), key=lambda i: len(candidates[i]))
    full_mask = bitops.table_mask(n)

    assignment: list[tuple[int, int] | None] = [None] * n
    used = [False] * n

    def extend(depth: int, restrictions: list[tuple[int, int]]) -> bool:
        """``restrictions``: list of (mask_f, mask_g) cofactor pairs so far."""
        if depth == n:
            return True
        slot = order[depth]
        var_pos = bitops.var_mask(n, slot)  # mask over f's words: w_slot = 1
        for v in candidates[slot]:
            if used[v]:
                continue
            g_pos = bitops.var_mask(n, v)
            for polarity in (0, 1):
                # g-words with x_v = c correspond to f-words with
                # w_slot = c ^ polarity.
                new_restrictions = []
                feasible = True
                for mask_f, mask_g in restrictions:
                    for c in (0, 1):
                        sub_g = mask_g & (g_pos if c else ~g_pos & full_mask)
                        wanted = c ^ polarity
                        sub_f = mask_f & (
                            var_pos if wanted else ~var_pos & full_mask
                        )
                        if bitops.popcount(f.bits & sub_f) != bitops.popcount(
                            g.bits & sub_g
                        ):
                            feasible = False
                            break
                        new_restrictions.append((sub_f, sub_g))
                    if not feasible:
                        break
                if not feasible:
                    continue
                assignment[slot] = (v, polarity)
                used[v] = True
                if extend(depth + 1, new_restrictions):
                    return True
                used[v] = False
                assignment[slot] = None
        return False

    if not extend(0, [(full_mask, full_mask)]):
        return None
    perm = tuple(assignment[i][0] for i in range(n))
    phase = 0
    for i in range(n):
        phase |= assignment[i][1] << i
    return NPNTransform(perm, phase, 0)
