"""Pairwise exact NPN matching with signature pruning.

Given two functions ``f`` and ``g``, decide whether some NPN transform
maps ``f`` onto ``g`` — and produce it.  This is the classical
"search with signature pruning" approach of the paper's related work
(in particular Zhang et al., ICCAD'21 [6], which prunes with sensitivity
signatures); it is what makes exact classification tractable beyond the
reach of exhaustive enumeration:

1. reject instantly unless satisfy counts allow a match for some output
   polarity;
2. per variable, compute an NPN-invariant *variable key* (influence,
   polarity-sorted cofactor counts, polarity-sorted sensitivity
   histograms); a variable of ``f`` may only map to a variable of ``g``
   with an identical key;
3. enumerate the transforms surviving the key and first-level cofactor
   constraints and check them **all in one vectorized gather+compare**
   through :mod:`repro.kernels` (``n <= 6``): variable keys are
   computed batched as int64 rows, candidate index maps are looked up
   in the precomputed gather table, and one fancy-indexed gather checks
   every candidate of every query — across queries and across sources;
4. the witnessing transform is verified in a single final step — the
   one place verification happens, for every search path.

The witness returned is the first surviving candidate in the
deterministic search order (most-constrained slot first, candidate
variables in index order, polarity 0 before 1, output phase 0 before
1) — exactly the transform the scalar backtracker finds, so results
are byte-stable across the two implementations.

For ``n > 6`` (and as the seed reference the benchmarks compare
against) the scalar backtracker of :func:`find_npn_transform_scalar`
remains: it extends slot assignments one at a time, checking after
every extension that every cofactor of the assigned prefix has matching
satisfy counts (``2^d`` masked popcounts at depth ``d``).

Worst-case exponential like every exact matcher, but the per-variable keys
collapse the candidate lists to near-singletons for all but highly
symmetric functions — and symmetric functions succeed within the first
vectorized chunk.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro import kernels
from repro.core import bitops
from repro.core import characteristics as chars
from repro.core.transforms import NPNTransform
from repro.core.truth_table import TruthTable
from repro.kernels import MAX_KERNEL_VARS

__all__ = [
    "find_npn_transform",
    "find_npn_transforms_from",
    "find_npn_transforms_grouped",
    "find_npn_transform_scalar",
    "are_npn_equivalent",
    "variable_keys",
]

#: Entries kept by the keyed LRUs over the per-table invariant keys —
#: sized for a working set of library representatives plus recent queries.
VARIABLE_KEY_CACHE_SIZE = 4096

#: Per-target candidate budget of the batched path; targets enumerating
#: more fall back to the chunked early-exit search (symmetric functions
#: match within the first chunk there anyway).
_BULK_CANDIDATE_CAP = 1024

#: Candidates checked per gather in the chunked early-exit search.
_SEARCH_CHUNK = 4096

#: Candidate rows the batched path accumulates before a gather flush —
#: bounds the numpy intermediates and the Python candidate lists no
#: matter how large (or how symmetric) the query batch is.
_GATHER_WINDOW = 1 << 16


def find_npn_transform(
    source: TruthTable, target: TruthTable
) -> NPNTransform | None:
    """A transform ``t`` with ``t(source) == target``, or ``None``.

    Complete: returns a transform iff the functions are NPN equivalent.
    """
    return find_npn_transforms_grouped([(source, [target])])[0][0]


def find_npn_transforms_from(
    source: TruthTable,
    targets: Sequence[TruthTable],
    cache_dir: str | Path | None = None,
) -> list[NPNTransform | None]:
    """Witnesses mapping ``source`` onto each target, sharing all pruning.

    The single-source bulk form of :func:`find_npn_transform`; entry
    ``i`` is ``None`` when ``targets[i]`` is not NPN-equivalent to
    ``source`` (including arity mismatches).
    """
    return find_npn_transforms_grouped([(source, list(targets))], cache_dir)[0]


def find_npn_transforms_grouped(
    pairs: Sequence[tuple[TruthTable, Sequence[TruthTable]]],
    cache_dir: str | Path | None = None,
) -> list[list[NPNTransform | None]]:
    """Batched witness search over many ``(source, targets)`` groups.

    The hot-path entry of the library's :meth:`ClassLibrary.match_many`:
    one batched variable-key pass per arity over *all* targets, source
    keys from a keyed LRU, and one fancy-indexed gather per arity
    checking every surviving candidate transform of every pair —
    candidate checks are batched across queries *and* across sources.

    Every returned witness passes the single final verification step —
    ``source.apply(witness) == target`` — regardless of which search
    path produced it (identity short-circuit, vectorized gather, chunked
    early-exit, or the ``n > 6`` scalar fallback).
    """
    pairs = [(source, list(targets)) for source, targets in pairs]
    raw = _search_transforms_grouped(pairs, cache_dir)
    return [
        [
            w if w is not None and source.apply(w) == target else None
            for w, target in zip(row, targets)
        ]
        for row, (source, targets) in zip(raw, pairs)
    ]


def are_npn_equivalent(a: TruthTable, b: TruthTable) -> bool:
    """Convenience wrapper around :func:`find_npn_transform`."""
    return find_npn_transform(a, b) is not None


def _variable_keys_uncached(tt: TruthTable) -> tuple[tuple, ...]:
    n = tt.n
    profile = chars.sensitivity_profile(tt)
    keys = []
    for i in range(n):
        infl = chars.influence(tt, i)
        neg = tt.cofactor_count(i, 0)
        pos = tt.cofactor_count(i, 1)
        mask = bitops.to_bit_array(bitops.var_mask(n, i), n).astype(bool)
        hist_pos = tuple(np.bincount(profile[mask], minlength=n + 1).tolist())
        hist_neg = tuple(np.bincount(profile[~mask], minlength=n + 1).tolist())
        keys.append(
            (
                infl,
                (neg, pos) if neg <= pos else (pos, neg),
                min(
                    (hist_neg, hist_pos),
                    (hist_pos, hist_neg),
                ),
            )
        )
    return tuple(keys)


@lru_cache(maxsize=VARIABLE_KEY_CACHE_SIZE)
def variable_keys(tt: TruthTable) -> tuple[tuple, ...]:
    """Per-variable NP-invariant keys used to restrict candidate mappings.

    Invariant under input negation and permutation (what the PN matching
    core needs — output polarity is resolved before the search); cofactor
    pairs are *not* preserved by output negation.

    Key of variable ``i``: ``(influence, sorted cofactor-count pair,
    sorted pair of per-polarity sensitivity histograms)``.  Equivalent
    variables (under any NP transform mapping one onto the other) always
    share keys; the converse does not hold, which is why a search follows.

    Memoized per :class:`TruthTable` (keyed LRU of
    ``VARIABLE_KEY_CACHE_SIZE`` entries): repeated ``match`` calls
    against the same library representative stop recomputing the
    invariant keys.  The vectorized path keeps its own equally-sized LRU
    over the int64 row encoding (:func:`repro.kernels.key_matrices`).
    """
    return _variable_keys_uncached(tt)


@lru_cache(maxsize=VARIABLE_KEY_CACHE_SIZE)
def _source_key_matrix(tt: TruthTable) -> tuple[np.ndarray, np.ndarray, int]:
    """``(key rows, cofactor pairs, satisfy count)`` of one source table.

    The int64-row twin of :func:`variable_keys` the vectorized search
    consumes; memoized so repeated matches against the same library
    representative reuse the computed rows.
    """
    matrices = kernels.key_matrices(tt.n, [tt.bits])
    return (
        matrices.keys[0],
        matrices.cofactors[0],
        int(matrices.counts[0]),
    )


# ----------------------------------------------------------------------
# Vectorized search (n <= MAX_KERNEL_VARS)
# ----------------------------------------------------------------------


def _search_transforms_grouped(
    pairs: list[tuple[TruthTable, list[TruthTable]]],
    cache_dir: str | Path | None,
) -> list[list[NPNTransform | None]]:
    """Unverified witnesses per pair group (the caller verifies, once)."""
    results: list[list[NPNTransform | None]] = [
        [None] * len(targets) for _, targets in pairs
    ]
    pending_by_n: dict[int, list[tuple[int, int]]] = {}
    for p, (source, targets) in enumerate(pairs):
        n = source.n
        for t, target in enumerate(targets):
            if target.n != n:
                continue
            if n == 0:
                results[p][t] = NPNTransform(
                    (), 0, (source.bits ^ target.bits) & 1
                )
            elif target.bits == source.bits:
                # Identical tables need no search: the identity witnesses
                # them.  Library matching hits this constantly (queries
                # equal to stored representatives), so skip the keys.
                results[p][t] = NPNTransform.identity(n)
            elif n > MAX_KERNEL_VARS:
                results[p][t] = _scalar_search(source, target, variable_keys)
            else:
                pending_by_n.setdefault(n, []).append((p, t))
    for n, pending in pending_by_n.items():
        _vector_search_arity(n, pairs, pending, results, cache_dir)
    return results


def _vector_search_arity(
    n: int,
    pairs: list[tuple[TruthTable, list[TruthTable]]],
    pending: list[tuple[int, int]],
    results: list[list[NPNTransform | None]],
    cache_dir: str | Path | None,
) -> None:
    """Resolve all pending (pair, target) slots of one arity in-place."""
    size = 1 << n
    mask = bitops.table_mask(n)

    # One batched key pass over every pending target; the complement
    # encodings (for output phase 1) are derived, not recomputed.
    matrices = kernels.key_matrices(
        n, [pairs[p][1][t].bits for p, t in pending]
    )
    complements = kernels.complement_key_matrices(matrices, n)

    # Distinct sources of this arity share bit-matrix rows in the gather
    # and stack their (LRU-cached) key rows for the candidate matrices.
    src_rows: dict[int, int] = {}
    src_ints: list[int] = []
    src_stack: list[tuple[np.ndarray, np.ndarray, int]] = []
    src_of_target = np.empty(len(pending), dtype=np.intp)
    for k, (p, _) in enumerate(pending):
        source = pairs[p][0]
        row = src_rows.get(source.bits)
        if row is None:
            row = len(src_ints)
            src_rows[source.bits] = row
            src_ints.append(source.bits)
            src_stack.append(_source_key_matrix(source))
        src_of_target[k] = row
    s_keys = np.stack([s[0] for s in src_stack])[src_of_target]
    s_cofs = np.stack([s[1] for s in src_stack])[src_of_target]
    s_counts = np.array([s[2] for s in src_stack], dtype=np.int64)[
        src_of_target
    ]

    # Candidate matrices across the whole batch: ``masks[k][i][v]`` is
    # the bitmask of input polarities slot ``i`` may take reading
    # variable ``v`` (0 when the keys differ or no polarity fits), and
    # ``counts[k][i]`` the number of key-equal candidates (the slot
    # ordering criterion of the scalar backtracker).  Phase-1 state is
    # computed lazily, only over the sub-batch whose satisfy counts make
    # output negation viable at all.
    phase0_viable = s_counts == matrices.counts
    phase1_viable = s_counts == size - matrices.counts
    phase_state: list[dict | None] = [None, None]
    for phase, viable, key_state in (
        (0, phase0_viable, matrices),
        (1, phase1_viable, complements),
    ):
        if not viable.any():
            continue
        rows = np.flatnonzero(viable)
        sub = kernels.KeyMatrices(
            key_state.counts[rows],
            key_state.keys[rows],
            key_state.cofactors[rows],
        )
        phase_state[phase] = _phase_state(
            s_keys[rows], s_cofs[rows], sub, rows, n
        )

    table = kernels.gather_table(n, cache_dir)
    src_bits = kernels.bit_matrix(n, src_ints)

    cand_perms: list[tuple[int, ...]] = []
    cand_phases: list[int] = []
    cand_src: list[int] = []
    segments: list[tuple[int, int, int, int, int, int]] = []
    overflow: list[int] = []

    def flush() -> None:
        """Gather-and-compare the accumulated candidate window.

        Windows bound both the numpy intermediates and the Python
        candidate lists — the batched path never materialises more than
        ``_GATHER_WINDOW`` candidate rows at once, mirroring the entry
        budget the kernels apply everywhere else.  A target's segments
        are always flushed together (the window only rolls over between
        targets), so the phase-0-before-phase-1 resolution order holds.
        """
        if not cand_perms:
            return
        rows = np.fromiter(
            (table.row_of(perm) for perm in cand_perms),
            dtype=np.intp,
            count=len(cand_perms),
        )
        maps = table.index_maps(rows, np.array(cand_phases, dtype=np.uint8))
        images = src_bits[np.array(cand_src, dtype=np.intp)[:, None], maps]
        packed = kernels.pack_rows(images).tolist()
        # Segments preserve the search order: output phase 0 before 1,
        # then candidate enumeration order — the first hit is the witness
        # the scalar backtracker would have returned.
        for p, t, output_phase, start, stop, g_value in segments:
            if results[p][t] is not None:
                continue
            for c in range(start, stop):
                if packed[c] == g_value:
                    results[p][t] = NPNTransform(
                        cand_perms[c], cand_phases[c], output_phase
                    )
                    break
        cand_perms.clear()
        cand_phases.clear()
        cand_src.clear()
        segments.clear()

    for k, (p, t) in enumerate(pending):
        target = pairs[p][1][t]
        collected: list[tuple[int, list, int]] | None = []
        for output_phase, state in enumerate(phase_state):
            if state is None:
                continue
            local = state["local"].get(k)
            if local is None:
                continue
            unique = state["unique"][local]
            if unique is not None:
                candidates = [unique] if unique else []
            else:
                candidates = _collect_assignments(
                    n,
                    state["masks"][local].tolist(),
                    state["counts"][local].tolist(),
                    _BULK_CANDIDATE_CAP,
                )
            if candidates is None:
                collected = None  # highly symmetric: chunked early-exit
                break
            if not candidates:
                continue
            g_value = target.bits if output_phase == 0 else target.bits ^ mask
            collected.append((output_phase, candidates, g_value))
        if collected is None:
            overflow.append(k)
            continue
        row = int(src_of_target[k])
        for output_phase, candidates, g_value in collected:
            start = len(cand_perms)
            for perm, phase in candidates:
                cand_perms.append(perm)
                cand_phases.append(phase)
                cand_src.append(row)
            segments.append(
                (p, t, output_phase, start, len(cand_perms), g_value)
            )
        if len(cand_perms) >= _GATHER_WINDOW:
            flush()
    flush()

    for k in overflow:
        p, t = pending[k]
        chunk_state = []
        for state in phase_state:
            local = state["local"].get(k) if state is not None else None
            if local is None:
                chunk_state.append((False, None, None))
            else:
                chunk_state.append(
                    (
                        True,
                        state["masks"][local].tolist(),
                        state["counts"][local].tolist(),
                    )
                )
        results[p][t] = _chunked_search(
            n,
            src_bits[int(src_of_target[k])],
            pairs[p][1][t],
            tuple(chunk_state),
            table,
        )


def _phase_state(
    s_keys: np.ndarray,
    s_cofs: np.ndarray,
    t_matrices: kernels.KeyMatrices,
    rows: np.ndarray,
    n: int,
) -> dict:
    """Candidate state for one output phase over a viable sub-batch.

    ``masks[l][i][v]``: bit ``b`` set iff slot ``i`` of the source may
    read target variable ``v`` with input polarity ``b`` — keys equal
    and the first-level cofactor counts line up (g-words with ``x_v =
    c`` are f-words with ``w_i = c ^ b``).  ``counts[l][i]`` counts
    key-equal candidates only (polarity-blind), preserving the scalar
    backtracker's most-constrained-slot ordering.

    ``unique[l]`` resolves the dominant case without any Python search:
    the single surviving assignment as ``(perm, phase)`` when every slot
    has exactly one key-equal candidate with exactly one feasible
    polarity, ``()`` when the matrices already prove no assignment
    exists, and ``None`` when the backtracking collector must run.
    """
    t_keys, t_cofs = t_matrices.keys, t_matrices.cofactors
    equal_keys = (s_keys[:, :, None, :] == t_keys[:, None, :, :]).all(-1)
    s_view = s_cofs[:, :, None, :]  # [L, slot, 1, col]
    t_view = t_cofs[:, None, :, :]  # [L, 1, var, col]
    pol0 = (t_view[..., 0] == s_view[..., 0]) & (t_view[..., 1] == s_view[..., 1])
    pol1 = (t_view[..., 0] == s_view[..., 1]) & (t_view[..., 1] == s_view[..., 0])
    masks = np.where(
        equal_keys, pol0.astype(np.int8) | (pol1.astype(np.int8) << 1), np.int8(0)
    )
    counts = equal_keys.sum(axis=-1)

    total = len(rows)
    unique: list[tuple | None] = [None] * total
    if n:
        single = (counts == 1).all(axis=1)
        perm = equal_keys.argmax(axis=-1)
        perm_ok = (np.sort(perm, axis=1) == np.arange(n)).all(axis=1)
        polarity = np.take_along_axis(masks, perm[..., None], axis=2)[..., 0]
        nonzero = (polarity != 0).all(axis=1)
        one_polarity = (polarity & (polarity - 1) == 0).all(axis=1)
        rejected = (counts == 0).any(axis=1) | (single & ~(perm_ok & nonzero))
        resolved = single & perm_ok & nonzero & one_polarity
        phases = (((polarity >> 1) & 1) << np.arange(n)).sum(axis=1)
        perm_rows = perm.tolist()
        phase_values = phases.tolist()
        for l in np.flatnonzero(rejected):
            unique[l] = ()
        for l in np.flatnonzero(resolved):
            unique[l] = (tuple(perm_rows[l]), phase_values[l])
    return {
        "local": {int(k): l for l, k in enumerate(rows)},
        "masks": masks,
        "counts": counts,
        "unique": unique,
    }


def _slot_order(order_counts: list) -> list[int]:
    """Most-constrained-first slot order (the backtracker's heuristic)."""
    return sorted(range(len(order_counts)), key=order_counts.__getitem__)


def _collect_assignments(
    n: int, mask_rows: list, order_counts: list, cap: int
) -> list[tuple[tuple[int, ...], int]] | None:
    """All ``(perm, input_phase)`` assignments, or ``None`` over ``cap``.

    A bounded materialisation of :func:`_iter_assignments` — one
    enumerator, one search-order guarantee.
    """
    out = list(
        itertools.islice(_iter_assignments(n, mask_rows, order_counts), cap + 1)
    )
    return None if len(out) > cap else out


def _iter_assignments(
    n: int, mask_rows: list, order_counts: list
) -> Iterator[tuple[tuple[int, ...], int]]:
    """Streaming twin of :func:`_collect_assignments` (same order)."""
    if min(order_counts, default=1) == 0:
        return
    order = _slot_order(order_counts)
    slot_var = [0] * n
    slot_pol = [0] * n
    used = [False] * n

    def extend(depth: int) -> Iterator[tuple[tuple[int, ...], int]]:
        if depth == n:
            phase = 0
            for i in range(n):
                phase |= slot_pol[i] << i
            yield tuple(slot_var), phase
            return
        slot = order[depth]
        row = mask_rows[slot]
        for v in range(n):
            allowed = row[v]
            if not allowed or used[v]:
                continue
            used[v] = True
            slot_var[slot] = v
            for polarity in (0, 1):
                if (allowed >> polarity) & 1:
                    slot_pol[slot] = polarity
                    yield from extend(depth + 1)
            used[v] = False

    yield from extend(0)


def _chunked_search(
    n: int,
    f_bits: np.ndarray,
    target: TruthTable,
    phase_state: tuple,
    table: kernels.GatherTable,
) -> NPNTransform | None:
    """Early-exit gather search for targets with huge candidate sets."""
    mask = bitops.table_mask(n)
    for output_phase, (viable, mask_rows, order_counts) in enumerate(
        phase_state
    ):
        if not viable:
            continue
        generator = _iter_assignments(n, mask_rows, order_counts)
        g_value = target.bits if output_phase == 0 else target.bits ^ mask
        while chunk := list(itertools.islice(generator, _SEARCH_CHUNK)):
            rows = np.fromiter(
                (table.row_of(perm) for perm, _ in chunk),
                dtype=np.intp,
                count=len(chunk),
            )
            phases = np.fromiter(
                (phase for _, phase in chunk),
                dtype=np.uint8,
                count=len(chunk),
            )
            packed = kernels.pack_rows(f_bits[table.index_maps(rows, phases)])
            hits = np.flatnonzero(packed == np.uint64(g_value))
            if hits.size:
                perm, phase = chunk[int(hits[0])]
                return NPNTransform(perm, phase, output_phase)
    return None


# ----------------------------------------------------------------------
# Scalar reference (the seed matcher; n > MAX_KERNEL_VARS fallback)
# ----------------------------------------------------------------------


def find_npn_transform_scalar(
    source: TruthTable, target: TruthTable
) -> NPNTransform | None:
    """The seed scalar matcher: per-pair backtracking, no vectorization.

    Kept as the ``n > MAX_KERNEL_VARS`` fallback, as the oracle the
    parity tests compare against, and as the baseline the matcher
    benchmark measures the kernels against.  Recomputes variable keys on
    every call (the seed behaviour) so benchmark comparisons stay
    honest; the fallback path inside the bulk search passes the
    memoized :func:`variable_keys` instead.
    """
    witness = _scalar_search(source, target, _variable_keys_uncached)
    if witness is None:
        return None
    return witness if source.apply(witness) == target else None


def _scalar_search(
    source: TruthTable, target: TruthTable, keys
) -> NPNTransform | None:
    if source.n != target.n:
        return None
    n = source.n
    if n == 0:
        return NPNTransform((), 0, (source.bits ^ target.bits) & 1)
    if source.bits == target.bits:
        return NPNTransform.identity(n)
    size = 1 << n
    count_f, count_g = source.count_ones(), target.count_ones()
    for output_phase in (0, 1):
        expected = count_g if output_phase == 0 else size - count_g
        if count_f != expected:
            continue
        flipped = target if output_phase == 0 else ~target
        transform = _find_pn_transform(source, flipped, keys)
        if transform is not None:
            return NPNTransform(transform.perm, transform.input_phase, output_phase)
    return None


def _find_pn_transform(
    f: TruthTable, g: TruthTable, keys=_variable_keys_uncached
) -> NPNTransform | None:
    """PN-only matching core: find ``t`` (no output negation) with ``t(f) = g``.

    Searches assignments ``slot i of f <- (variable v of g, polarity b)``
    such that ``g(x) = f(w)``, ``w_i = x_{perm[i]} ^ phase_i``.
    """
    n = f.n
    keys_f = keys(f)
    keys_g = keys(g)
    if sorted(keys_f) != sorted(keys_g):
        return None
    candidates = [
        [v for v in range(n) if keys_g[v] == keys_f[i]] for i in range(n)
    ]
    # Fill the most constrained slots first.
    order = sorted(range(n), key=lambda i: len(candidates[i]))
    full_mask = bitops.table_mask(n)

    assignment: list[tuple[int, int] | None] = [None] * n
    used = [False] * n

    def extend(depth: int, restrictions: list[tuple[int, int]]) -> bool:
        """``restrictions``: list of (mask_f, mask_g) cofactor pairs so far."""
        if depth == n:
            return True
        slot = order[depth]
        var_pos = bitops.var_mask(n, slot)  # mask over f's words: w_slot = 1
        for v in candidates[slot]:
            if used[v]:
                continue
            g_pos = bitops.var_mask(n, v)
            for polarity in (0, 1):
                # g-words with x_v = c correspond to f-words with
                # w_slot = c ^ polarity.
                new_restrictions = []
                feasible = True
                for mask_f, mask_g in restrictions:
                    for c in (0, 1):
                        sub_g = mask_g & (g_pos if c else ~g_pos & full_mask)
                        wanted = c ^ polarity
                        sub_f = mask_f & (
                            var_pos if wanted else ~var_pos & full_mask
                        )
                        if bitops.popcount(f.bits & sub_f) != bitops.popcount(
                            g.bits & sub_g
                        ):
                            feasible = False
                            break
                        new_restrictions.append((sub_f, sub_g))
                    if not feasible:
                        break
                if not feasible:
                    continue
                assignment[slot] = (v, polarity)
                used[v] = True
                if extend(depth + 1, new_restrictions):
                    return True
                used[v] = False
                assignment[slot] = None
        return False

    if not extend(0, [(full_mask, full_mask)]):
        return None
    perm = tuple(assignment[i][0] for i in range(n))
    phase = 0
    for i in range(n):
        phase |= assignment[i][1] << i
    return NPNTransform(perm, phase, 0)
