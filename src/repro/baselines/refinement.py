"""Shared canonicalisation machinery for the reconstructed baselines.

Canonical-form methods (Huang'13, Petkovska'16, Zhou'20) all follow the
same skeleton the paper describes in Section V: normalise output and input
polarities from cofactor counts, order variables by signature keys, and
differ in how hard they work on the *ties*.  This module provides the
common pieces:

* :func:`phase_normalize` — polarity normalisation by satisfy counts;
* :func:`refine_partition` — iterated partition refinement of the
  variable order using 2-ary cross-cofactor keys;
* :func:`ordering_transform` — turn an ordering + polarities into an
  :class:`~repro.core.transforms.NPNTransform`.
"""

from __future__ import annotations

from repro.core.transforms import NPNTransform
from repro.core.truth_table import TruthTable

__all__ = ["phase_normalize", "refine_partition", "ordering_transform"]


def phase_normalize(tt: TruthTable) -> tuple[TruthTable, int, int]:
    """Make ones the minority globally and per variable.

    Returns ``(g, output_phase, input_phase)`` where ``g`` is ``tt`` with
    the output complemented when ``|f| > 2^(n-1)`` and each input ``i``
    complemented when ``|f_{x_i=1}| > |f_{x_i=0}|``.  Ties (balanced
    function or balanced variable) keep the positive polarity — the
    deliberate heuristic gap that separates the fast baselines from exact
    methods.
    """
    n = tt.n
    output_phase = 0
    if n and tt.count_ones() > (1 << (n - 1)):
        tt = ~tt
        output_phase = 1
    input_phase = 0
    for i in range(n):
        if tt.cofactor_count(i, 1) > tt.cofactor_count(i, 0):
            tt = tt.flip_input(i)
            input_phase |= 1 << i
    return tt, output_phase, input_phase


def refine_partition(
    tt: TruthTable,
    max_rounds: int | None = None,
    initial_keys: list[tuple] | None = None,
) -> list[list[int]]:
    """Order variables by signature keys, refining ties iteratively.

    Starts from the 1-ary cofactor count of each variable (or the caller's
    ``initial_keys`` — e.g. the face/point variable keys of the guided
    canonicaliser) and repeatedly extends each variable's key with the
    sorted multiset of its 2-ary cofactor counts *grouped by the current
    block of the other variable* — the cross-signature refinement used by
    the hierarchical classifiers.  Stops at a fixpoint (or after
    ``max_rounds``).

    Returns the ordered blocks: a list of variable groups, smallest key
    first; variables inside one block are indistinguishable under the
    refinement and form the residual tie.
    """
    n = tt.n
    if n == 0:
        return []
    if initial_keys is not None:
        if len(initial_keys) != n:
            raise ValueError("initial_keys must have one entry per variable")
        keys = [(tt.cofactor_count(i, 1), initial_keys[i]) for i in range(n)]
    else:
        keys = [(tt.cofactor_count(i, 1),) for i in range(n)]
    rounds = 0
    while True:
        blocks = _blocks_from_keys(keys)
        if len(blocks) == n:
            break
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            break
        block_of = {}
        for index, block in enumerate(blocks):
            for v in block:
                block_of[v] = index
        new_keys = []
        for i in range(n):
            cross = []
            for j in range(n):
                if j == i:
                    continue
                counts = tuple(
                    sorted(
                        _pair_count(tt, i, vi, j, vj)
                        for vi in (0, 1)
                        for vj in (0, 1)
                    )
                )
                cross.append((block_of[j], counts))
            new_keys.append(keys[i] + (tuple(sorted(cross)),))
        old_partition = {frozenset(block) for block in blocks}
        new_partition = {frozenset(block) for block in _blocks_from_keys(new_keys)}
        if new_partition == old_partition:
            break
        keys = new_keys
    return _blocks_from_keys(keys)


def ordering_transform(
    n: int, order: list[int], input_phase: int, output_phase: int
) -> NPNTransform:
    """Transform placing original variable ``order[j]`` at position ``j``.

    ``input_phase`` and ``output_phase`` are expressed on the *original*
    function's variables (as returned by :func:`phase_normalize`); the
    phase word is composed into the transform.
    """
    rank = [0] * n
    for position, variable in enumerate(order):
        rank[variable] = position
    # g(x) = f(w), w_i = x_{perm[i]} ^ p_i with perm[i] = rank[i]: original
    # variable i is read from position rank[i], negated per input_phase.
    return NPNTransform(tuple(rank), input_phase, output_phase)


def _pair_count(tt: TruthTable, i: int, vi: int, j: int, vj: int) -> int:
    from repro.core.characteristics import cofactor_count

    return cofactor_count(tt, (i, j), (vi | (vj << 1)))


def _blocks_from_keys(keys: list[tuple]) -> list[list[int]]:
    order = sorted(range(len(keys)), key=lambda i: keys[i])
    blocks: list[list[int]] = []
    previous = None
    for i in order:
        if keys[i] != previous:
            blocks.append([])
            previous = keys[i]
        blocks[-1].append(i)
    return blocks
