"""Zhou et al., TC'20 — the ``testnpn -11`` baseline of Table III.

"Fast exact NPN classification by co-designing canonical form and its
computation algorithm" combines signature-based ordering, generalised
symmetry detection and a local search over elementary transforms.  The
paper's authors modified ABC to *remove the final exhaustive enumeration*
for a fair comparison; this reconstruction mirrors that modified version:

1. polarity normalisation and partition-refined variable ordering (the
   co-designed signature part);
2. symmetric-variable detection inside residual tie blocks — symmetric
   ties are genuinely order-invariant, so they cost nothing;
3. **flip-swap local search**: starting from the ordered form, greedily
   apply any single input flip, adjacent swap, or (for balanced
   functions) output flip that lexicographically decreases the table,
   until a fixpoint.

The local search converges after a data-dependent number of passes —
exactly the structure-sensitive runtime the paper's Fig. 5 contrasts with
its own classifier — and resolves most but not all residual ties (the
paper measures 1690 vs 1673 exact classes at n = 6).
"""

from __future__ import annotations

from repro.baselines.base import KeyedClassifier, register_classifier
from repro.baselines.refinement import (
    ordering_transform,
    phase_normalize,
    refine_partition,
)
from repro.core import bitops
from repro.core.truth_table import TruthTable

__all__ = ["zhou_canonical", "Zhou20Classifier"]

#: Safety bound on local-search passes (termination is guaranteed anyway
#: because every accepted move strictly decreases the table).
MAX_PASSES = 64


def zhou_canonical(tt: TruthTable) -> TruthTable:
    """Signature + symmetry + flip-swap canonical form (see module docstring)."""
    n = tt.n
    if n == 0:
        return TruthTable(0, 0)
    normalized, output_phase, input_phase = phase_normalize(tt)
    blocks = refine_partition(normalized)
    order = [v for block in blocks for v in block]
    transform = ordering_transform(n, order, input_phase, output_phase)
    table = tt.apply(transform).bits
    table = _flip_swap_descent(table, n, allow_output=tt.is_balanced)
    return TruthTable(n, table)


def _flip_swap_descent(table: int, n: int, allow_output: bool) -> int:
    """Greedy descent over single flips, adjacent swaps, and output flips."""
    for _ in range(MAX_PASSES):
        improved = False
        for i in range(n):
            candidate = bitops.flip_input(table, n, i)
            if candidate < table:
                table = candidate
                improved = True
        for i in range(n - 1):
            candidate = bitops.swap_inputs(table, n, i, i + 1)
            if candidate < table:
                table = candidate
                improved = True
        if allow_output:
            candidate = bitops.flip_output(table, n)
            if candidate < table:
                table = candidate
                improved = True
        if not improved:
            break
    return table


def count_symmetric_ties(tt: TruthTable) -> int:
    """Residual tie-block pairs that are genuine variable symmetries.

    Instrumentation for the ablation benches: symmetric ties are harmless
    (any order yields the same table); the dangerous ties are the
    non-symmetric ones the local search must resolve.
    """
    normalized, _, _ = phase_normalize(tt)
    symmetric = 0
    for block in refine_partition(normalized):
        for a_index in range(len(block)):
            for b_index in range(a_index + 1, len(block)):
                if normalized.has_symmetric_pair(block[a_index], block[b_index]):
                    symmetric += 1
    return symmetric


@register_classifier
class Zhou20Classifier(KeyedClassifier):
    """Classifier keyed by the Zhou'20-style canonical form."""

    name = "zhou20"

    def key(self, tt: TruthTable):
        return zhou_canonical(tt).bits
