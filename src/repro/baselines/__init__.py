"""Baseline NPN classifiers compared against in the paper's Table III.

* :mod:`repro.baselines.exact_enum` — exhaustive canonical form (the
  "Kitty" column; exact, slow, practical for n <= 6).
* :mod:`repro.baselines.matcher` — pairwise NPN matching with signature
  pruning (the ICCAD'21 [6] style search; exact).
* :mod:`repro.baselines.exact` — bucketed exact classifier built from the
  two above (the "#Exact Classes" oracle for every table).
* :mod:`repro.baselines.huang13` — Huang et al., FPT'13 (``testnpn -6``):
  ultra-fast heuristic canonical form, heavily overcounts classes.
* :mod:`repro.baselines.petkovska16` — Petkovska et al., FPL'16
  (``testnpn -7``): hierarchical canonicalisation, near-exact.
* :mod:`repro.baselines.zhou20` — Zhou et al., TC'20 (``testnpn -11``
  with the final exhaustive enumeration removed, as in the paper's
  modified ABC): signature/symmetry canonical form with flip-swap local
  search; near-exact, structure-dependent runtime.
"""

from repro.baselines.base import (
    GroupingResult,
    KeyedClassifier,
    get_classifier,
    register_classifier,
)
from repro.baselines.exact import ExactClassifier
from repro.baselines.exact_enum import ExactEnumerationClassifier, exact_npn_canonical
from repro.baselines.huang13 import Huang13Classifier
from repro.baselines.matcher import find_npn_transform
from repro.baselines.petkovska16 import Petkovska16Classifier
from repro.baselines.zhou20 import Zhou20Classifier

__all__ = [
    "GroupingResult",
    "KeyedClassifier",
    "get_classifier",
    "register_classifier",
    "ExactClassifier",
    "ExactEnumerationClassifier",
    "exact_npn_canonical",
    "find_npn_transform",
    "Huang13Classifier",
    "Petkovska16Classifier",
    "Zhou20Classifier",
    "FacePointKeyed",
]


@register_classifier
class FacePointKeyed(KeyedClassifier):
    """The paper's classifier (Algorithm 1) in the uniform baseline interface.

    Registered as ``"ours"`` so the Table III benches can instantiate all
    competitors through one registry.
    """

    name = "ours"

    def __init__(self, parts=None) -> None:
        from repro.core.msv import DEFAULT_PARTS, normalize_parts

        self.parts = normalize_parts(parts if parts is not None else DEFAULT_PARTS)

    def key(self, tt):
        from repro.core.msv import compute_msv

        return compute_msv(tt, self.parts)
