"""Petkovska et al., FPL'16 — the ``testnpn -7`` baseline of Table III.

"Fast hierarchical NPN classification" layers increasingly expensive
canonicalisation steps, stopping as soon as the form is unique:

1. polarity normalisation from 1-ary cofactor counts (as Huang'13);
2. variable ordering by iterated partition refinement with 2-ary
   cross-cofactor keys (:func:`repro.baselines.refinement.refine_partition`);
3. *bounded* enumeration inside the residual tie blocks: if the number of
   block-local permutations (times output polarities for balanced
   functions) stays within a budget, the lexicographically smallest table
   wins; otherwise the tie is left in index order.

The budget is what separates this method from exact classification: most
functions canonicalise perfectly, highly symmetric ones occasionally
split — a small overcount (the paper measures 1752 vs 1673 exact classes
at n = 6) at moderate runtime.
"""

from __future__ import annotations

import itertools
from math import factorial

from repro.baselines.base import KeyedClassifier, register_classifier
from repro.baselines.refinement import (
    ordering_transform,
    phase_normalize,
    refine_partition,
)
from repro.core.truth_table import TruthTable

__all__ = ["petkovska_canonical", "Petkovska16Classifier"]

#: Maximum number of candidate orders explored inside tie blocks.
DEFAULT_BUDGET = 48


def petkovska_canonical(tt: TruthTable, budget: int = DEFAULT_BUDGET) -> TruthTable:
    """Hierarchical canonical form with a bounded tie-enumeration budget."""
    n = tt.n
    if n == 0:
        return TruthTable(0, 0)
    normalized, output_phase, input_phase = phase_normalize(tt)
    blocks = refine_partition(normalized)

    combinations = 1
    for block in blocks:
        combinations *= factorial(len(block))
    polarities = (0, 1) if tt.is_balanced else (0,)
    total = combinations * len(polarities)

    if total <= 1:
        order = [v for block in blocks for v in block]
        transform = ordering_transform(n, order, input_phase, output_phase)
        return tt.apply(transform)

    if total > budget:
        # Over budget: refine what we can, leave residual ties in index
        # order — the hierarchical method's deliberate inexactness.
        order = [v for block in blocks for v in block]
        transform = ordering_transform(n, order, input_phase, output_phase)
        return tt.apply(transform)

    best = None
    for polarity in polarities:
        base = tt if polarity == 0 else ~tt
        base_norm, base_out, base_in = phase_normalize(base)
        base_blocks = refine_partition(base_norm)
        for arrangement in itertools.product(
            *(itertools.permutations(block) for block in base_blocks)
        ):
            order = [v for block in arrangement for v in block]
            transform = ordering_transform(n, order, base_in, base_out)
            candidate = base.apply(transform)
            if best is None or candidate < best:
                best = candidate
    return best


@register_classifier
class Petkovska16Classifier(KeyedClassifier):
    """Classifier keyed by the hierarchical canonical form."""

    name = "petkovska16"

    def __init__(self, budget: int = DEFAULT_BUDGET) -> None:
        self.budget = budget

    def key(self, tt: TruthTable):
        return petkovska_canonical(tt, self.budget).bits
