"""Corpora for class-library construction.

Two sources feed :mod:`repro.library` builds:

* :func:`exhaustive_tables` — every function of a small arity, so the
  library holds the complete class inventory (222 NPN classes at n = 4);
* :func:`sampled_tables` — a seeded random sample for arities where
  ``2^(2^n)`` functions are out of reach (n >= 5), covering the heavy
  classes first by sheer probability mass.

:func:`corpus_for_arity` picks between them the way the CLI does.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.truth_table import TruthTable
from repro.workloads.random_functions import iter_random_tables

__all__ = ["EXHAUSTIVE_MAX_VARS", "exhaustive_tables", "sampled_tables", "corpus_for_arity"]

#: Largest arity that is enumerated exhaustively (2^(2^5) is already 2^32).
EXHAUSTIVE_MAX_VARS = 4


def exhaustive_tables(n: int) -> Iterator[TruthTable]:
    """All ``2^(2^n)`` functions of ``n`` variables, ascending by table."""
    if not 0 <= n <= EXHAUSTIVE_MAX_VARS:
        raise ValueError(
            f"exhaustive enumeration supports n <= {EXHAUSTIVE_MAX_VARS}, "
            f"got {n} (use sampled_tables for larger arities)"
        )
    for bits in range(1 << (1 << n)):
        yield TruthTable(n, bits)


def sampled_tables(n: int, count: int, seed: int) -> Iterator[TruthTable]:
    """A seeded uniform sample of ``n``-variable functions."""
    if count < 1:
        raise ValueError(f"sample count must be positive, got {count}")
    return iter_random_tables(n, count, seed)


def corpus_for_arity(n: int, samples: int, seed: int) -> Iterator[TruthTable]:
    """Exhaustive corpus where feasible, seeded sample otherwise.

    Mirrors the ``repro library build`` CLI: arities up to
    ``EXHAUSTIVE_MAX_VARS`` enumerate everything (``samples`` is
    ignored), larger ones draw ``samples`` seeded random functions.
    """
    if n <= EXHAUSTIVE_MAX_VARS:
        return exhaustive_tables(n)
    return sampled_tables(n, samples, seed)
