"""Workload generation: benchmark circuits, extraction, random function sets."""

from repro.workloads.batched import (
    pack_by_arity,
    packed_consecutive_tables,
    packed_equivalent_tables,
    packed_random_tables,
    packed_shards,
)
from repro.workloads.epfl import epfl_like_suite, suite_summary
from repro.workloads.extraction import extract_cut_functions, extraction_report
from repro.workloads.learning import miss_heavy_queries, with_repeats
from repro.workloads.library_corpus import (
    corpus_for_arity,
    exhaustive_tables,
    sampled_tables,
)
from repro.workloads.random_functions import (
    consecutive_tables,
    hit_miss_queries,
    iter_random_tables,
    random_tables,
    seeded_equivalent_tables,
)

__all__ = [
    "epfl_like_suite",
    "suite_summary",
    "extract_cut_functions",
    "extraction_report",
    "random_tables",
    "iter_random_tables",
    "consecutive_tables",
    "seeded_equivalent_tables",
    "hit_miss_queries",
    "miss_heavy_queries",
    "with_repeats",
    "packed_random_tables",
    "packed_consecutive_tables",
    "packed_equivalent_tables",
    "pack_by_arity",
    "packed_shards",
    "exhaustive_tables",
    "sampled_tables",
    "corpus_for_arity",
]
