"""EPFL-like benchmark suite (substitution for the EPFL files, see DESIGN.md).

The paper extracts its function sets from the EPFL combinational suite.
Those files are not available offline, so this module assembles the same
*kind* of suite programmatically from :mod:`repro.aig.builders`: an
arithmetic family (carry chains, products, shift networks, comparators)
and a random/control family (one-hot control, priority logic, arbitration,
voting, unstructured random logic).  Sizes are parameterised by a scale
factor so the benches can trade fidelity against pure-Python runtime.
"""

from __future__ import annotations

from repro.aig import builders
from repro.aig.network import AIG

__all__ = ["epfl_like_suite", "suite_summary", "ARITHMETIC", "CONTROL"]

ARITHMETIC = "arithmetic"
CONTROL = "random_control"


def epfl_like_suite(scale: int = 1) -> dict[str, AIG]:
    """Build the full suite; ``scale`` in {1, 2, 3} grows circuit widths.

    Returns a name -> AIG mapping covering both EPFL categories.  The
    names mirror the EPFL suite's where a direct analogue exists.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    s = scale
    circuits = {
        # -- arithmetic family -----------------------------------------
        "adder": builders.ripple_adder(16 * s),
        "cla": builders.carry_lookahead_adder(12 * s),
        "multiplier": builders.multiplier(6 + 2 * s),
        "square": builders.square(6 + 2 * s),
        "barrel_shifter": builders.barrel_shifter(16 * (1 << (s - 1))),
        "max": builders.max_unit(12 * s),
        "comparator": builders.comparator(16 * s),
        "subtractor": builders.subtractor(14 * s),
        "div": builders.divider(5 + 2 * s),
        "sqrt": builders.int_sqrt(10 * s),
        # -- random/control family -------------------------------------
        "priority": builders.priority_encoder(16 * s),
        "dec": builders.decoder(4 + (s - 1)),
        "arbiter": builders.round_robin_arbiter(6 + 2 * s),
        "voter": builders.majority_voter(9 + 2 * ((s - 1) * 2)),
        "parity": builders.parity(16 * s),
        "ctrl": builders.random_control(12, 260 * s, seed=101),
        "i2c_like": builders.random_control(14, 420 * s, seed=202),
        "router_like": builders.random_control(10, 180 * s, seed=303),
    }
    return circuits


def category_of(name: str) -> str:
    """EPFL category of a suite member."""
    arithmetic = {
        "adder",
        "cla",
        "multiplier",
        "square",
        "barrel_shifter",
        "max",
        "comparator",
        "subtractor",
        "div",
        "sqrt",
    }
    return ARITHMETIC if name in arithmetic else CONTROL


def suite_summary(suite: dict[str, AIG]) -> list[dict]:
    """Per-circuit statistics table (name, category, I/O, ANDs, depth)."""
    rows = []
    for name, aig in sorted(suite.items()):
        rows.append(
            {
                "name": name,
                "category": category_of(name),
                "inputs": aig.num_inputs,
                "outputs": aig.num_outputs,
                "ands": aig.num_ands,
                "depth": aig.depth(),
            }
        )
    return rows
