"""Miss-heavy query traffic for the learn-on-miss serving path.

The matcher benchmarks (:func:`repro.workloads.hit_miss_queries`) lean
on hits — the expensive witness searches.  A *learning* daemon is
stressed by the opposite shape: queries whose signature class the
library has never seen, each of which mints a class and appends a WAL
record.  :func:`miss_heavy_queries` builds that traffic against a
concrete library — every generated miss is *verified* to miss (rejection
sampling against :meth:`ClassLibrary.lookup`), so the minted-class count
of a run is exact, not probabilistic.

:func:`with_repeats` then turns a query list into the convergence
workload: each query repeated ``repeats`` times in a deterministic
shuffle, so under ``--learn`` the first occurrence mints and every
repeat must resolve as a hit — the property the service-level learning
tests and the CI smoke assert.
"""

from __future__ import annotations

import random

from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable
from repro.library.store import ClassLibrary

__all__ = ["miss_heavy_queries", "with_repeats"]

#: Rejection-sampling bound per miss; at any arity with spare signature
#: space this is never approached, and a saturated library (every class
#: of the arity stored) fails loudly instead of looping forever.
_MAX_DRAWS_PER_MISS = 10_000


def miss_heavy_queries(
    library: ClassLibrary,
    n: int,
    count: int,
    seed: int,
    miss_fraction: float = 0.8,
) -> list[TruthTable]:
    """``count`` queries at arity ``n``, ``miss_fraction`` of them misses.

    Misses are uniformly random functions re-drawn until their signature
    class is absent from ``library``; hits are random NPN images of
    stored representatives of arity ``n`` (requiring a witness search,
    not the identity short-circuit).  A library with no classes at ``n``
    gets all-miss traffic regardless of ``miss_fraction``.  The mix is
    deterministically shuffled: same arguments, same queries.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if not 0.0 <= miss_fraction <= 1.0:
        raise ValueError(
            f"miss_fraction must be in [0, 1], got {miss_fraction}"
        )
    rng = random.Random(seed)
    reps = [e.representative for e in library.entries() if e.n == n]
    misses = count if not reps else round(count * miss_fraction)
    queries: list[TruthTable] = []
    for _ in range(misses):
        queries.append(_draw_miss(library, n, rng))
    for _ in range(count - misses):
        queries.append(rng.choice(reps).apply(random_transform(n, rng)))
    rng.shuffle(queries)
    return queries


def _draw_miss(
    library: ClassLibrary, n: int, rng: random.Random
) -> TruthTable:
    """One random function whose signature class the library lacks."""
    for _ in range(_MAX_DRAWS_PER_MISS):
        tt = TruthTable.random(n, rng)
        if library.lookup(tt) is None:
            return tt
    raise ValueError(
        f"could not draw a miss at n={n} in {_MAX_DRAWS_PER_MISS} tries — "
        f"the library covers (nearly) every signature class of the arity"
    )


def with_repeats(
    queries: list[TruthTable], repeats: int, seed: int
) -> list[TruthTable]:
    """Each query ``repeats`` times, deterministically shuffled.

    The shuffle interleaves classes rather than batching copies
    back-to-back, which is the realistic traffic shape for exercising
    the learn -> cache/match convergence.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    out = [tt for tt in queries for _ in range(repeats)]
    random.Random(seed).shuffle(out)
    return out
