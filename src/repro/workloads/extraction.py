"""Circuit -> cut functions pipeline (the paper's Section V-A front end).

"The truth tables are extracted from these benchmarks using cut
enumeration.  We deleted the Boolean functions of the same truth table."
This module is that sentence as code: enumerate k-feasible cuts on every
circuit, compute each cut's truth table over its leaves, group by cut
size, and deduplicate identical tables.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.aig.cuts import enumerate_cuts
from repro.aig.network import AIG
from repro.aig.simulate import cut_function
from repro.core.truth_table import TruthTable

__all__ = ["extract_cut_functions", "extraction_report"]


def extract_cut_functions(
    circuits: Iterable[AIG] | AIG,
    sizes: Iterable[int],
    max_cuts: int = 16,
    limit_per_size: int | None = None,
) -> dict[int, list[TruthTable]]:
    """Deduplicated cut truth tables of the given circuits, per cut size.

    Args:
        circuits: one AIG or an iterable of them.
        sizes: cut sizes ``n`` of interest (the paper uses 4..10).
        max_cuts: per-node priority-cut cap during enumeration.
        limit_per_size: optional cap on functions kept per size (keeps
            bench runtimes bounded; first-seen order, deterministic).

    Returns:
        ``{n: [TruthTable, ...]}`` with exact-duplicate tables removed,
        in first-seen order.  A cut counts towards size ``n`` when it has
        exactly ``n`` leaves, matching the paper's per-``n`` rows.
    """
    if isinstance(circuits, AIG):
        circuits = [circuits]
    wanted = sorted(set(sizes))
    if not wanted or wanted[0] < 1:
        raise ValueError("cut sizes must be positive")
    k = max(wanted)
    seen: dict[int, set[int]] = {n: set() for n in wanted}
    collected: dict[int, list[TruthTable]] = {n: [] for n in wanted}
    budget_left = {
        n: (limit_per_size if limit_per_size is not None else None) for n in wanted
    }
    for aig in circuits:
        cuts = enumerate_cuts(aig, k=k, max_cuts=max_cuts)
        for variable in aig.and_variables():
            for cut in cuts[variable]:
                n = cut.size
                if n not in seen:
                    continue
                if budget_left[n] is not None and budget_left[n] <= 0:
                    continue
                tt = cut_function(aig, variable, cut.leaves)
                if tt.bits in seen[n]:
                    continue
                seen[n].add(tt.bits)
                collected[n].append(tt)
                if budget_left[n] is not None:
                    budget_left[n] -= 1
    return collected


def extraction_report(functions: dict[int, list[TruthTable]]) -> list[dict]:
    """Summary rows: per size, how many unique functions were extracted."""
    rows = []
    for n in sorted(functions):
        tables = functions[n]
        degenerate = sum(1 for tt in tables if tt.is_degenerate)
        balanced = sum(1 for tt in tables if tt.is_balanced)
        rows.append(
            {
                "n": n,
                "functions": len(tables),
                "balanced": balanced,
                "degenerate": degenerate,
            }
        )
    return rows
