"""Random and structured truth-table sets.

Two generators reproduce the paper's synthetic inputs:

* :func:`random_tables` — uniformly random functions (general stress);
* :func:`consecutive_tables` — "randomly generate a fixed number of
  Boolean functions with truth tables in consecutive binary encoding"
  (Section V-C, the Fig. 5 runtime-stability workload): a random starting
  point followed by consecutive integer truth tables.  Consecutive tables
  are highly structured and correlated, which is exactly what makes
  canonical-form methods' runtime fluctuate.

:func:`seeded_equivalent_tables` additionally plants known NPN orbits
inside a random set — used by tests and accuracy benches where ground
truth about equivalences must be known by construction.
"""

from __future__ import annotations

import random

from repro.core import bitops
from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable

__all__ = [
    "random_tables",
    "iter_random_tables",
    "consecutive_tables",
    "seeded_equivalent_tables",
    "hit_miss_queries",
]


def random_tables(n: int, count: int, seed: int) -> list[TruthTable]:
    """``count`` uniformly random ``n``-variable functions (deterministic)."""
    return list(iter_random_tables(n, count, seed))


def iter_random_tables(n: int, count: int, seed: int):
    """Lazy :func:`random_tables`: the identical sequence, O(1) memory.

    The streaming companion for :meth:`ShardedClassifier.classify_iter`
    and any workload too large to materialise — same seed, same tables,
    delivered one at a time.
    """
    rng = random.Random(seed)
    for _ in range(count):
        yield TruthTable.random(n, rng)


def consecutive_tables(
    n: int, count: int, seed: int | None = None, start: int | None = None
) -> list[TruthTable]:
    """Consecutive-integer truth tables, as in the paper's Fig. 5 workload.

    Either ``start`` is given explicitly or it is drawn from ``seed``.
    Wraps around the table space if the range overruns it.
    """
    size = bitops.table_mask(n) + 1
    if start is None:
        if seed is None:
            raise ValueError("provide either a start value or a seed")
        start = random.Random(seed).randrange(size)
    return [TruthTable(n, (start + k) % size) for k in range(count)]


def hit_miss_queries(
    n: int, hits: int, misses: int, seed: int
) -> tuple[list[TruthTable], list[TruthTable]]:
    """``(library corpus, shuffled query mix)`` for matcher benchmarks.

    Every *hit* query is a fresh random NPN image of a corpus function —
    so resolving it requires an actual witness search, not the identity
    short-circuit — and every *miss* is an independent random function
    (at ``n >= 5`` random draws essentially never collide with the
    corpus signatures).  The mix is deterministically shuffled.
    """
    rng = random.Random(seed)
    corpus = random_tables(n, hits, seed)
    queries = [tt.apply(random_transform(n, rng)) for tt in corpus]
    queries += random_tables(n, misses, seed + 1)
    rng.shuffle(queries)
    return corpus, queries


def seeded_equivalent_tables(
    n: int, orbits: int, members_per_orbit: int, seed: int
) -> tuple[list[TruthTable], int]:
    """A shuffled set with a known number of NPN classes.

    Draws ``orbits`` random functions, adds ``members_per_orbit - 1``
    random NPN images of each, and shuffles.  Returns ``(tables,
    upper_bound)`` where ``upper_bound`` is the number of distinct seed
    orbits — the true class count is at most that (random seeds may
    collide into one class, which the exact engine will discover).
    """
    rng = random.Random(seed)
    tables: list[TruthTable] = []
    for _ in range(orbits):
        seed_function = TruthTable.random(n, rng)
        tables.append(seed_function)
        for _ in range(members_per_orbit - 1):
            tables.append(seed_function.apply(random_transform(n, rng)))
    rng.shuffle(tables)
    return tables, orbits
