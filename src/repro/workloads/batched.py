"""Packed-batch views of the workload generators.

The generators in :mod:`repro.workloads.random_functions` stay the single
source of truth for *which* functions a workload contains (their seeds
are part of the reproduction contract); these helpers deliver the same
deterministic sets already packed for :mod:`repro.engine`, plus a
splitter for mixed-arity workloads such as extracted cut functions.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.truth_table import TruthTable
from repro.engine.packed import PackedTables
from repro.workloads.random_functions import (
    consecutive_tables,
    random_tables,
    seeded_equivalent_tables,
)

__all__ = [
    "packed_random_tables",
    "packed_consecutive_tables",
    "packed_equivalent_tables",
    "pack_by_arity",
    "packed_shards",
]


def packed_random_tables(n: int, count: int, seed: int) -> PackedTables:
    """:func:`~repro.workloads.random_functions.random_tables`, packed."""
    return PackedTables.from_tables(random_tables(n, count, seed))


def packed_consecutive_tables(
    n: int, count: int, seed: int | None = None, start: int | None = None
) -> PackedTables:
    """The Fig. 5 consecutive-encoding stress workload, packed."""
    return PackedTables.from_tables(consecutive_tables(n, count, seed, start))


def packed_equivalent_tables(
    n: int, orbits: int, members_per_orbit: int, seed: int
) -> tuple[PackedTables, int]:
    """Seeded NPN orbits, packed; returns ``(batch, class upper bound)``."""
    tables, bound = seeded_equivalent_tables(n, orbits, members_per_orbit, seed)
    return PackedTables.from_tables(tables), bound


def packed_shards(tables: Iterable[TruthTable], shard_size: int):
    """Split a same-arity stream into :class:`PackedTables` shards.

    Consumes ``tables`` lazily and yields packed batches of at most
    ``shard_size`` rows.  (The sharded *engine* builds its own wire
    buffers internally — this is the workload-side counterpart, for
    callers that classify shard-by-shard themselves and merge results,
    or feed any bulk consumer without materialising the stream.)
    """
    if shard_size < 1:
        raise ValueError(f"shard size must be positive, got {shard_size}")
    block: list[TruthTable] = []
    for tt in tables:
        block.append(tt)
        if len(block) == shard_size:
            yield PackedTables.from_tables(block)
            block = []
    if block:
        yield PackedTables.from_tables(block)


def pack_by_arity(tables: Iterable[TruthTable]) -> dict[int, PackedTables]:
    """Split a mixed-arity workload into one packed batch per ``n``.

    Row order within each batch preserves the input order, so per-arity
    results can be zipped back against the original sequence.
    """
    by_arity: dict[int, list[TruthTable]] = {}
    for tt in tables:
        by_arity.setdefault(tt.n, []).append(tt)
    return {
        n: PackedTables.from_tables(group) for n, group in sorted(by_arity.items())
    }
