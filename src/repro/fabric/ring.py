"""Consistent-hash ring over signature digests: who owns which classes.

The fabric partitions the class library by the **signature digest** of
each class — the ``n{n}-{digest}`` base id of
:meth:`ClassLibrary.base_id_of`.  The MSV is an NPN invariant, so a
*query* hashes to exactly the same shard key as the class it belongs to
(if any): the router can compute a query's owner without knowing the
library at all, and a worker can decide which classes it owns without
talking to anyone.  The exact-canonical ids of the canonical scheme
make class identity injective across machines; the digest shard key on
top of them makes ownership *stable* — a class always hashes to the
same point of the ring, whatever order libraries were built or merged
in.

The ring itself is the textbook construction: every worker id is hashed
onto ``vnodes`` points of a 64-bit circle, a key is owned by the first
``replicas`` *distinct* workers clockwise from its hash.  Replication is
what makes failover answer *correctly*: the ring successor of a suspect
owner holds a replica of the same shard, so a hedged or failed-over
request gets the same verified witness the owner would have served —
not a spurious miss.

Everything here is deterministic (blake2b, no process seed), so router
and workers build byte-identical rings from the same spec — the
registration handshake rejects workers whose spec disagrees.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.core.msv import DEFAULT_PARTS, compute_msv
from repro.core.truth_table import TruthTable

__all__ = [
    "HashRing",
    "DEFAULT_VNODES",
    "DEFAULT_REPLICAS",
    "shard_key_of",
    "parse_ring_spec",
]

#: Virtual nodes per worker: enough that 2-4 workers split the digest
#: space within a few percent of evenly, cheap enough to rebuild on
#: every membership change.
DEFAULT_VNODES = 64

#: Workers holding each shard (owner + ring successors).  Two means one
#: worker can die without any shard going dark *or* any failover answer
#: degrading to a miss.
DEFAULT_REPLICAS = 2


def _hash64(text: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(text.encode(), digest_size=8).digest(), "big"
    )


def shard_key_of(table: TruthTable, parts=DEFAULT_PARTS) -> str:
    """The shard key of a query (== its class's key, by NPN invariance)."""
    signature = compute_msv(table, parts)
    return f"n{signature.n}-{signature.digest()}"


def parse_ring_spec(spec: str) -> tuple[str, ...]:
    """Parse the ``--ring`` grammar: comma-separated worker ids."""
    ids = tuple(piece.strip() for piece in spec.split(",") if piece.strip())
    if not ids:
        raise ValueError(f"ring spec {spec!r} names no workers")
    if len(set(ids)) != len(ids):
        raise ValueError(f"ring spec {spec!r} repeats a worker id")
    for worker_id in ids:
        if any(c.isspace() for c in worker_id):
            raise ValueError(f"worker id {worker_id!r} contains whitespace")
    return ids


class HashRing:
    """Deterministic consistent-hash ring with replica ownership.

    Args:
        nodes: the full ring membership (worker ids).  Note this is the
            *spec*, not liveness — a dead worker keeps its arcs, the
            router simply routes its keys to the surviving replicas.
        vnodes: hash points per node.
        replicas: distinct owners per key (primary + successors).
    """

    def __init__(
        self,
        nodes,
        vnodes: int = DEFAULT_VNODES,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        self.nodes = tuple(nodes)
        if not self.nodes:
            raise ValueError("ring needs at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"duplicate node ids in {self.nodes}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.vnodes = vnodes
        self.replicas = min(replicas, len(self.nodes))
        points = []
        for node in self.nodes:
            for v in range(vnodes):
                points.append((_hash64(f"{node}#{v}"), node))
        points.sort()
        self._points = [h for h, _ in points]
        self._owners_at = [node for _, node in points]

    def owners(self, key: str) -> tuple[str, ...]:
        """The ``replicas`` distinct nodes owning ``key``, primary first."""
        start = bisect.bisect_right(self._points, _hash64(key))
        seen: list[str] = []
        total = len(self._owners_at)
        for step in range(total):
            node = self._owners_at[(start + step) % total]
            if node not in seen:
                seen.append(node)
                if len(seen) == self.replicas:
                    break
        return tuple(seen)

    def owner(self, key: str) -> str:
        """The primary owner of ``key``."""
        return self.owners(key)[0]

    def covers(self, key: str, node: str) -> bool:
        """Whether ``node`` holds ``key`` (as primary or replica)."""
        return node in self.owners(key)

    def spec(self) -> dict:
        """The wire form workers register with (must match the router's)."""
        return {
            "nodes": list(self.nodes),
            "vnodes": self.vnodes,
            "replicas": self.replicas,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "HashRing":
        try:
            return cls(
                tuple(spec["nodes"]),
                vnodes=int(spec["vnodes"]),
                replicas=int(spec["replicas"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad ring spec {spec!r}: {exc}") from None

    def shard_filter(self, node: str, parts=DEFAULT_PARTS):
        """Predicate over library entries: does ``node`` hold this class?

        Feed it to :meth:`ClassLibrary.subset` to load a worker's shard
        (its owned arcs plus the replicas of its predecessors).
        """
        if node not in self.nodes:
            raise ValueError(f"node {node!r} is not on the ring {self.nodes}")

        def keep(entry) -> bool:
            return self.covers(
                shard_key_of(entry.representative, parts), node
            )

        return keep

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HashRing(nodes={self.nodes}, vnodes={self.vnodes}, "
            f"replicas={self.replicas})"
        )
