"""A fabric worker: one shard-serving daemon that phones home.

:class:`FabricWorker` *is* a classification daemon — same wire protocol,
same coalescer, same metrics — serving the shard of the library its ring
position owns (the CLI builds that shard with
:meth:`HashRing.shard_filter` + :meth:`ClassLibrary.subset`).  On top of
the daemon it runs the fabric's control-plane half:

* **register** with the router on startup (retried with the fabric's
  capped backoff until the router exists — start order never matters),
  announcing its address, ring spec, and capabilities;
* **heartbeat** at the cadence the router's registration reply dictates;
  a ``known: false`` heartbeat reply means the router restarted and lost
  its registry, so the worker simply re-registers;
* **drain notice** on SIGTERM, *before* draining its own backlog — the
  router stops routing new work to it immediately while the already
  dispatched requests finish on the still-open channels.  That ordering
  is what makes failover drain-aware rather than lossy.

Control-plane calls are deliberately one-shot connections (dial, one
line, one reply, close): they are rare, and a broken control call must
never entangle the data path.
"""

from __future__ import annotations

import asyncio
import json

from repro.fabric.backoff import RetryPolicy
from repro.fabric.registry import DEFAULT_HEARTBEAT_INTERVAL_S
from repro.fabric.ring import HashRing
from repro.service.protocol import MAX_LINE_BYTES
from repro.service.server import ClassificationService

__all__ = ["FabricWorker"]

#: Ceiling for one control-plane round trip (register/heartbeat/drain).
CONTROL_TIMEOUT_S = 2.0


class FabricWorker(ClassificationService):
    """A classification daemon that registers and heartbeats with a router.

    Args:
        library: this worker's **shard** of the class library (already
            filtered to the arcs ``worker_id`` owns on ``ring``).
        worker_id: this worker's ring identity.
        router_address: ``host:port`` of the router's client port (the
            control plane shares it).
        ring: the fabric's ring spec; registration announces it and the
            router rejects mismatches.
        Remaining keyword arguments go to :class:`ClassificationService`.
    """

    def __init__(
        self,
        library,
        worker_id: str,
        router_address: str,
        ring: HashRing,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        register_policy: RetryPolicy | None = None,
        **service_kwargs,
    ) -> None:
        super().__init__(library, **service_kwargs)
        self.worker_id = worker_id
        self.router_address = router_address
        self.ring = ring
        self.heartbeat_interval_s = heartbeat_interval_s
        self.register_policy = (
            register_policy
            if register_policy is not None
            else RetryPolicy(attempts=3, base_ms=100.0, cap_ms=2000.0)
        )
        self.registered = False
        self._control_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        await super().start()
        self._control_task = asyncio.ensure_future(self._control_loop())

    async def _drain(self) -> None:
        """Drain notice to the router first, then answer the backlog."""
        if self._control_task is not None:
            self._control_task.cancel()
            await asyncio.gather(self._control_task, return_exceptions=True)
            self._control_task = None
        try:
            await self._control_call(
                {"op": "drain", "worker_id": self.worker_id}
            )
        except (OSError, ValueError, asyncio.TimeoutError):
            pass  # router gone; nothing left to stop routing
        await super()._drain()

    def _ready_message(self) -> str:
        return (
            f"worker {self.worker_id} serving {self.library.num_classes} "
            f"classes on {self.address} "
            f"(ring {','.join(self.ring.nodes)}, router {self.router_address})"
        )

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    async def _control_loop(self) -> None:
        """Register (with backoff, forever), then heartbeat; re-register
        whenever the router stops recognising us."""
        while True:
            await self._register_with_backoff()
            while True:
                await asyncio.sleep(self.heartbeat_interval_s)
                try:
                    reply = await self._control_call(
                        {"op": "heartbeat", "worker_id": self.worker_id}
                    )
                except (OSError, ValueError, asyncio.TimeoutError):
                    continue  # router unreachable; keep beating
                result = reply.get("result", {})
                if reply.get("ok") and not result.get("known", True):
                    # The router restarted with an empty registry.
                    self.registered = False
                    break

    async def _register_with_backoff(self) -> None:
        retry = 0
        while True:
            try:
                reply = await self._control_call(self._register_payload())
            except (OSError, ValueError, asyncio.TimeoutError):
                reply = None
            if reply is not None and reply.get("ok"):
                self.registered = True
                interval = reply.get("result", {}).get("heartbeat_interval_s")
                if isinstance(interval, (int, float)) and interval > 0:
                    self.heartbeat_interval_s = float(interval)
                return
            if reply is not None and not reply.get("ok"):
                # Typed rejection (ring mismatch, bad payload): retrying
                # with the same payload cannot succeed — log loudly and
                # park instead of hammering the router.
                error = reply.get("error", {})
                print(
                    f"worker {self.worker_id}: registration rejected: "
                    f"[{error.get('type')}] {error.get('message')}",
                    flush=True,
                )
                await asyncio.sleep(60.0)
                continue
            await asyncio.sleep(
                self.register_policy.delay_ms(min(retry, 16)) / 1000.0
            )
            retry += 1

    def _register_payload(self) -> dict:
        return {
            "op": "register",
            "worker": {
                "worker_id": self.worker_id,
                "address": self.address,
                "ring": self.ring.spec(),
                "parts": list(self.library.parts),
                "arities": sorted(self.library.arities()),
                "id_scheme": self.library.id_scheme,
                "classes": self.library.num_classes,
                "learning": self.coalescer.learner is not None,
                "engine": self.coalescer.engine,
                "pid": self.identity()["pid"],
            },
        }

    async def _control_call(self, payload: dict) -> dict:
        """One-shot NDJSON round trip to the router's client port."""
        host, _, port_text = self.router_address.rpartition(":")
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(
                host, int(port_text), limit=MAX_LINE_BYTES + 2
            ),
            CONTROL_TIMEOUT_S,
        )
        try:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), CONTROL_TIMEOUT_S)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        if not line:
            raise ConnectionError("router closed the control connection")
        reply = json.loads(line)
        if not isinstance(reply, dict):
            raise ValueError(f"router sent a non-object reply: {reply!r}")
        return reply

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    async def _route_http(
        self, method: str, path: str, body: bytes, t0: float, query: str = ""
    ) -> tuple[int, dict]:
        status, payload = await super()._route_http(
            method, path, body, t0, query
        )
        if method == "GET" and path == "/healthz":
            payload.update(
                worker_id=self.worker_id,
                router=self.router_address,
                registered=self.registered,
                ring=self.ring.spec(),
            )
        return status, payload

    def identity(self) -> dict:
        identity = super().identity()
        identity.update(
            role="worker",
            worker_id=self.worker_id,
            router=self.router_address,
            registered=self.registered,
            ring=self.ring.spec(),
        )
        return identity
