"""Worker registry: who is serving, and how much we trust them right now.

Every worker daemon registers with the router (capabilities: address,
arities, id scheme, parts, learning) and then heartbeats periodically.
The registry turns those heartbeats into a per-worker trust state:

::

                 register                  heartbeat
    (unknown) ────────────> ALIVE <──────────────────┐
                              │ miss >= suspect_misses
                              v
                           SUSPECT ──────────────────┘  (heartbeat revives)
                              │ miss >= evict_misses
                              v
                            DEAD  (evicted; re-registering revives)

       drain op (SIGTERM'd worker)
    ALIVE/SUSPECT ────────────> DRAINING ──(evict_misses silent)──> DEAD

The router routes new work to ALIVE workers, hedges SUSPECT ones against
their ring successor, and sends *nothing new* to DRAINING or DEAD ones —
a draining worker keeps answering its in-flight backlog, which is
exactly what drain-aware failover means.  All transitions are counted in
the metrics registry so a scrape shows flapping at a glance.

Time is injected (``clock``) so the state machine is unit-testable
without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs

__all__ = [
    "WorkerInfo",
    "WorkerRegistry",
    "ALIVE",
    "SUSPECT",
    "DRAINING",
    "DEAD",
    "WORKER_STATES",
    "DEFAULT_HEARTBEAT_INTERVAL_S",
    "DEFAULT_SUSPECT_MISSES",
    "DEFAULT_EVICT_MISSES",
]

ALIVE = "alive"
SUSPECT = "suspect"
DRAINING = "draining"
DEAD = "dead"
WORKER_STATES = (ALIVE, SUSPECT, DRAINING, DEAD)

DEFAULT_HEARTBEAT_INTERVAL_S = 1.0
#: Missed heartbeat intervals before a worker is suspected (hedged).
DEFAULT_SUSPECT_MISSES = 3
#: Missed heartbeat intervals before a worker is evicted outright.
DEFAULT_EVICT_MISSES = 8

_REG = obs.registry()
_TRANSITIONS = _REG.counter(
    "repro_fabric_worker_transitions_total",
    "Worker trust-state transitions observed by the router's registry.",
    labels=("state",),
)
_WORKERS = _REG.gauge(
    "repro_fabric_workers",
    "Registered workers by current trust state.",
    labels=("state",),
)


@dataclass
class WorkerInfo:
    """One registered worker: identity, capabilities, trust state."""

    worker_id: str
    address: str
    capabilities: dict = field(default_factory=dict)
    state: str = ALIVE
    registered_at: float = 0.0
    last_seen: float = 0.0
    heartbeats: int = 0

    def as_dict(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "address": self.address,
            "state": self.state,
            "heartbeats": self.heartbeats,
            "capabilities": dict(self.capabilities),
        }


class WorkerRegistry:
    """Tracks worker liveness from registrations, heartbeats and drains.

    Args:
        heartbeat_interval_s: the cadence workers were told to beat at.
        suspect_misses / evict_misses: missed-interval thresholds of the
            ALIVE -> SUSPECT -> DEAD ladder.
        clock: monotonic time source (injected for tests).
    """

    def __init__(
        self,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        suspect_misses: int = DEFAULT_SUSPECT_MISSES,
        evict_misses: int = DEFAULT_EVICT_MISSES,
        clock=time.monotonic,
    ) -> None:
        if heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be > 0")
        if not 0 < suspect_misses < evict_misses:
            raise ValueError(
                "need 0 < suspect_misses < evict_misses, got "
                f"{suspect_misses} / {evict_misses}"
            )
        self.heartbeat_interval_s = heartbeat_interval_s
        self.suspect_misses = suspect_misses
        self.evict_misses = evict_misses
        self._clock = clock
        self.workers: dict[str, WorkerInfo] = {}

    # ------------------------------------------------------------------
    # Control-plane events
    # ------------------------------------------------------------------

    def register(
        self, worker_id: str, address: str, capabilities: dict | None = None
    ) -> WorkerInfo:
        """A worker announced itself (or came back from the dead)."""
        now = self._clock()
        info = WorkerInfo(
            worker_id=worker_id,
            address=address,
            capabilities=dict(capabilities or {}),
            state=ALIVE,
            registered_at=now,
            last_seen=now,
        )
        previous = self.workers.get(worker_id)
        if previous is not None:
            info.heartbeats = previous.heartbeats
        self.workers[worker_id] = info
        self._note_transition(ALIVE)
        return info

    def heartbeat(self, worker_id: str) -> bool:
        """One beat; ``False`` when the worker is unknown (re-register).

        A beat revives SUSPECT workers but *not* DRAINING or DEAD ones:
        drain is a one-way door (the worker announced its own exit), and
        a dead worker must re-register so the router re-learns its
        address and capabilities.
        """
        info = self.workers.get(worker_id)
        if info is None:
            return False
        info.last_seen = self._clock()
        info.heartbeats += 1
        if info.state == SUSPECT:
            self._set_state(info, ALIVE)
        return info.state in (ALIVE, SUSPECT, DRAINING)

    def drain(self, worker_id: str) -> bool:
        """The worker says it is draining (SIGTERM): stop routing to it."""
        info = self.workers.get(worker_id)
        if info is None:
            return False
        if info.state != DEAD:
            self._set_state(info, DRAINING)
            info.last_seen = self._clock()
        return True

    def sweep(self) -> list[tuple[str, str]]:
        """Apply the missed-heartbeat ladder; returns the transitions.

        Call periodically (the router does, at half the heartbeat
        interval).  Returns ``(worker_id, new_state)`` pairs for logging.
        """
        now = self._clock()
        transitions = []
        for info in self.workers.values():
            misses = (now - info.last_seen) / self.heartbeat_interval_s
            if info.state in (ALIVE, SUSPECT, DRAINING):
                if misses >= self.evict_misses:
                    self._set_state(info, DEAD)
                    transitions.append((info.worker_id, DEAD))
                elif info.state == ALIVE and misses >= self.suspect_misses:
                    self._set_state(info, SUSPECT)
                    transitions.append((info.worker_id, SUSPECT))
        return transitions

    def mark_suspect(self, worker_id: str) -> None:
        """A data-plane failure (dead channel) is evidence, not proof."""
        info = self.workers.get(worker_id)
        if info is not None and info.state == ALIVE:
            self._set_state(info, SUSPECT)

    # ------------------------------------------------------------------
    # Routing views
    # ------------------------------------------------------------------

    def state_of(self, worker_id: str) -> str | None:
        info = self.workers.get(worker_id)
        return None if info is None else info.state

    def address_of(self, worker_id: str) -> str | None:
        info = self.workers.get(worker_id)
        return None if info is None else info.address

    def routable(self, candidates) -> list[str]:
        """The candidates new work may go to, in preference order.

        ALIVE workers first (in candidate order), then SUSPECT ones —
        a suspect owner is still *tried* (hedged), but never preferred
        over a healthy replica.  DRAINING and DEAD workers are excluded:
        that exclusion is the routing half of drain-aware failover.
        """
        alive = [w for w in candidates if self.state_of(w) == ALIVE]
        suspect = [w for w in candidates if self.state_of(w) == SUSPECT]
        return alive + suspect

    def counts(self) -> dict[str, int]:
        counts = {state: 0 for state in WORKER_STATES}
        for info in self.workers.values():
            counts[info.state] += 1
        return counts

    def snapshot(self) -> dict:
        return {
            "workers": {
                worker_id: info.as_dict()
                for worker_id, info in sorted(self.workers.items())
            },
            "counts": self.counts(),
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "suspect_misses": self.suspect_misses,
            "evict_misses": self.evict_misses,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _set_state(self, info: WorkerInfo, state: str) -> None:
        if info.state != state:
            info.state = state
            self._note_transition(state)

    def _note_transition(self, state: str) -> None:
        _TRANSITIONS.inc(state=state)
        for name, value in self.counts().items():
            _WORKERS.set(value, state=name)
