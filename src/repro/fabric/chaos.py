"""Fault injection for the fabric: spawn a fleet, then hurt it.

:class:`ChaosFleet` runs a router and N workers as real subprocesses —
the same ``python -m repro router|worker`` entry points operators use —
and exposes the fault injections the soak tests and benchmarks drive:

* :meth:`kill` — SIGKILL, the impolite death (no drain notice; the
  router finds out from dead channels and missed heartbeats);
* :meth:`stall` / :meth:`resume` — SIGSTOP/SIGCONT, the gray failure:
  the process is alive, its socket accepts, nothing answers.  This is
  what per-request timeouts exist for;
* :meth:`term` — SIGTERM, the polite death: drain notice, backlog
  answered, clean exit (drain-aware failover).

Every daemon's ready banner is parsed for its bound port, so fleets run
entirely on ``port 0`` and never collide.  ``stop_all`` is defensive
teardown: SIGCONT + SIGTERM everyone, then SIGKILL stragglers — a
crashed test must not leak processes (the CI fabric-smoke job asserts
exactly that).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

__all__ = ["ChaosFleet", "ManagedDaemon", "wait_until"]

#: Seconds a daemon gets to print its ready banner.
READY_TIMEOUT_S = 30.0


def wait_until(predicate, timeout_s: float, interval_s: float = 0.05) -> bool:
    """Poll ``predicate()`` until truthy or ``timeout_s`` elapses."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return bool(predicate())


class ManagedDaemon:
    """One spawned daemon: its process, parsed address, and fault knobs."""

    def __init__(self, name: str, process: subprocess.Popen, ready: str) -> None:
        self.name = name
        self.process = process
        self.ready_line = ready
        # Every banner ends "... on host:port" (possibly followed by a
        # parenthesised suffix); take the last host:port token.
        token = [
            piece for piece in ready.replace("(", " ").split()
            if ":" in piece and piece.rsplit(":", 1)[1].isdigit()
        ][-1]
        host, _, port_text = token.rpartition(":")
        self.host = host
        self.port = int(port_text)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    @property
    def pid(self) -> int:
        return self.process.pid

    # ------------------------- fault injection -------------------------

    def kill(self) -> None:
        """SIGKILL: instant, impolite, no drain."""
        self._signal(signal.SIGKILL)
        self.process.wait()

    def stall(self) -> None:
        """SIGSTOP: the gray failure — alive but answering nothing."""
        self._signal(signal.SIGSTOP)

    def resume(self) -> None:
        """SIGCONT: undo :meth:`stall`."""
        self._signal(signal.SIGCONT)

    def term(self) -> None:
        """SIGTERM: ask for a graceful drain (does not wait)."""
        self._signal(signal.SIGTERM)

    def _signal(self, signum: int) -> None:
        try:
            self.process.send_signal(signum)
        except ProcessLookupError:
            pass  # lost the race with the process's own exit

    def wait(self, timeout_s: float = 30.0) -> int:
        return self.process.wait(timeout=timeout_s)

    def output(self) -> str:
        """Remaining stdout (only safe once the process exited)."""
        if self.process.stdout is None:
            return ""
        return self.process.stdout.read()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else f"exit={self.process.returncode}"
        return f"ManagedDaemon({self.name!r}, {self.address}, {state})"


class ChaosFleet:
    """A router + worker fleet of real subprocesses, built to be hurt.

    Args:
        library_dir: the saved library every worker shards.
        ring: worker ids forming the ring (``["w0", "w1", "w2"]``).
        router_args / worker_args: extra CLI flags appended to every
            spawn (e.g. ``["--timeout-ms", "500"]``).
    """

    def __init__(
        self,
        library_dir: str,
        ring,
        router_args=(),
        worker_args=(),
    ) -> None:
        self.library_dir = str(library_dir)
        self.ring = tuple(ring)
        self.router_args = tuple(router_args)
        self.worker_args = tuple(worker_args)
        self.router: ManagedDaemon | None = None
        self.workers: dict[str, ManagedDaemon] = {}

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------

    def _spawn(self, name: str, argv, expect: str) -> ManagedDaemon:
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "..")
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = os.path.abspath(src) + (
            os.pathsep + existing if existing else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", *argv],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        assert process.stdout is not None
        deadline = time.monotonic() + READY_TIMEOUT_S
        while True:
            line = process.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"{name} exited before its ready banner "
                    f"(rc={process.poll()})"
                )
            if expect in line:
                return ManagedDaemon(name, process, line.strip())
            if time.monotonic() > deadline:
                process.kill()
                raise RuntimeError(f"{name} never printed {expect!r}")

    def start_router(self, **knobs) -> ManagedDaemon:
        argv = ["router", "--port", "0", *self.router_args]
        for flag, value in knobs.items():
            argv += [f"--{flag.replace('_', '-')}", str(value)]
        self.router = self._spawn("router", argv, "routing on")
        return self.router

    def start_worker(self, worker_id: str, **knobs) -> ManagedDaemon:
        if self.router is None:
            raise RuntimeError("start_router() first (workers need its address)")
        argv = [
            "worker",
            "--id", worker_id,
            "--ring", ",".join(self.ring),
            "--library", self.library_dir,
            "--router", self.router.address,
            "--port", "0",
            *self.worker_args,
        ]
        for flag, value in knobs.items():
            argv += [f"--{flag.replace('_', '-')}", str(value)]
        daemon = self._spawn(f"worker:{worker_id}", argv, "serving")
        self.workers[worker_id] = daemon
        return daemon

    def start(self, **router_knobs) -> "ChaosFleet":
        """Router plus the whole ring of workers."""
        self.start_router(**router_knobs)
        for worker_id in self.ring:
            self.start_worker(worker_id)
        return self

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def stop_all(self, timeout_s: float = 30.0) -> None:
        """Polite drain of the whole fleet, SIGKILL for stragglers."""
        daemons = list(self.workers.values())
        if self.router is not None:
            daemons.append(self.router)
        for daemon in daemons:
            if daemon.alive:
                # A stalled process cannot drain; wake it first.
                daemon.resume()
                daemon.term()
        deadline = time.monotonic() + timeout_s
        for daemon in daemons:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                daemon.wait(remaining)
            except subprocess.TimeoutExpired:
                daemon.kill()
        for daemon in daemons:
            if daemon.process.stdout is not None:
                daemon.process.stdout.close()
        self.workers.clear()
        self.router = None

    def __enter__(self) -> "ChaosFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop_all()
