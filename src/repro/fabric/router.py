"""The fabric router: one client-facing daemon fronting many workers.

:class:`RouterService` speaks the exact client protocol of a single
classification daemon — NDJSON lines and the HTTP/1.0 front, same ops,
same error taxonomy — so every existing client, the CLI, and the smoke
jobs work against it unchanged.  Behind that front it routes:

1. a table op's **shard key** is the signature digest of the query
   (``n{n}-{digest}`` — NPN-invariant, so a query hashes exactly where
   its class lives);
2. the consistent-hash ring names the key's owner and replica workers;
3. the request is dispatched over the owner's pipelined channel, where
   concurrent requests to the same shard coalesce into burst writes the
   worker's micro-batcher folds into packed engine passes;
4. the reply is re-associated by request id and written back under the
   client's own id.

Robustness is the point, and it is layered:

* **timeouts** — every dispatch attempt has a deadline
  (:class:`RetryPolicy.timeout_ms`); a stalled worker costs one
  deadline, never a hung client;
* **retries** — failed attempts (timeout, dead channel, retryable
  worker error) back off with capped-exponential + full-jitter delays
  and re-pick the best live candidate, which after a death is the
  replica that holds the same shard;
* **hedging** — a SUSPECT owner (missed heartbeats, dead channel) is
  raced against the ring successor; first good reply wins, and because
  the successor replicates the shard its answer is the same verified
  witness;
* **drain-aware failover** — a worker's SIGTERM drain notice stops new
  routing instantly while its in-flight backlog finishes on the still-
  open channel;
* **degraded mode** — a ring gap (all owners of a shard dead) fails
  fast with the typed ``shard_unavailable`` error instead of hanging.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from repro import obs
from repro.core.msv import DEFAULT_PARTS, normalize_parts
from repro.fabric.backoff import RetryPolicy
from repro.fabric.channel import ChannelClosed, DispatchTimeout, WorkerChannel
from repro.fabric.registry import (
    DEFAULT_EVICT_MISSES,
    DEFAULT_HEARTBEAT_INTERVAL_S,
    DEFAULT_SUSPECT_MISSES,
    SUSPECT,
    WorkerRegistry,
)
from repro.fabric.ring import HashRing, shard_key_of
from repro.service import protocol
from repro.service.base import LineProtocolServer, best_effort_id, query_int
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    ERROR_TYPES,
    FABRIC_OPS,
    REQUEST_OPS,
    ProtocolError,
    Request,
)

__all__ = ["RouterService", "DEFAULT_ROUTER_PORT", "RETRYABLE_WORKER_ERRORS"]

DEFAULT_ROUTER_PORT = 8455

#: Worker error replies worth re-dispatching (transient by nature);
#: everything else (bad_request, internal, ...) propagates unchanged.
RETRYABLE_WORKER_ERRORS = ("overloaded", "shutting_down")

#: Router-side ops: everything a daemon accepts, plus the control plane.
ROUTER_OPS = REQUEST_OPS + FABRIC_OPS

_REG = obs.registry()
_ROUTED = _REG.counter(
    "repro_fabric_requests_total",
    "Client requests entering the router, by op.",
    labels=("op",),
)
_DISPATCHES = _REG.counter(
    "repro_fabric_dispatches_total",
    "Dispatch attempts to workers, by outcome (ok, worker_error, "
    "timeout, channel_closed).",
    labels=("outcome",),
)
_RETRIES = _REG.counter(
    "repro_fabric_retries_total",
    "Re-dispatches after a failed attempt, by failure reason.",
    labels=("reason",),
)
_HEDGES = _REG.counter(
    "repro_fabric_hedges_total",
    "Hedged dispatches (suspect owner raced against its ring successor).",
)
_DEGRADED = _REG.counter(
    "repro_fabric_degraded_total",
    "Requests refused with shard_unavailable (ring gap, degraded mode).",
)
_DISPATCH_SECONDS = _REG.histogram(
    "repro_fabric_dispatch_seconds",
    "Per-attempt worker round-trip latency.",
    labels=("worker",),
)


class RouterService(LineProtocolServer):
    """Front-end router + worker registry + consistent-hash dispatch.

    Args:
        host/port: client-facing bind address.
        policy: dispatch :class:`RetryPolicy` (attempts, backoff,
            per-attempt timeout).
        heartbeat_interval_s / suspect_misses / evict_misses: the
            registry's trust ladder (see :class:`WorkerRegistry`).
        trace_sample / trace_capacity / slow_ms: request tracing knobs,
            mirroring the serving daemon's.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_ROUTER_PORT,
        policy: RetryPolicy | None = None,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        suspect_misses: int = DEFAULT_SUSPECT_MISSES,
        evict_misses: int = DEFAULT_EVICT_MISSES,
        trace_sample: int = 8,
        trace_capacity: int = 256,
        slow_ms: float = 250.0,
    ) -> None:
        super().__init__(host=host, port=port)
        self.policy = policy if policy is not None else RetryPolicy()
        self.registry = WorkerRegistry(
            heartbeat_interval_s=heartbeat_interval_s,
            suspect_misses=suspect_misses,
            evict_misses=evict_misses,
        )
        self.metrics = ServiceMetrics()
        self.tracer = obs.Tracer(
            capacity=trace_capacity, slow_ms=slow_ms, sample_every=trace_sample
        )
        self.ring: HashRing | None = None
        self.parts: tuple[str, ...] = DEFAULT_PARTS
        self.channels: dict[str, WorkerChannel] = {}
        self._sweeper: asyncio.Task | None = None
        self._retries = 0
        self._hedges = 0
        self._degraded = 0

    # ------------------------------------------------------------------
    # Lifecycle (LineProtocolServer hooks)
    # ------------------------------------------------------------------

    async def start(self) -> None:
        await super().start()
        self._sweeper = asyncio.ensure_future(self._sweep_loop())

    async def _drain(self) -> None:
        """Answer in-flight dispatches, then drop the worker channels."""
        if self._sweeper is not None:
            self._sweeper.cancel()
            await asyncio.gather(self._sweeper, return_exceptions=True)
            self._sweeper = None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.policy.worst_case_s() + 1.0
        while (
            any(ch.inflight for ch in self.channels.values())
            and loop.time() < deadline
        ):
            await asyncio.sleep(0.02)
        for channel in self.channels.values():
            await channel.close()

    def _record_error(self, error_type: str) -> None:
        self.metrics.record_error(error_type)

    def _ready_message(self) -> str:
        return f"routing on {self.address}"

    async def _sweep_loop(self) -> None:
        """Apply the missed-heartbeat ladder at twice the beat cadence."""
        interval = self.registry.heartbeat_interval_s / 2.0
        while True:
            await asyncio.sleep(interval)
            self.registry.sweep()

    # -------------------------- NDJSON path ---------------------------

    async def _answer_line(
        self, writer: asyncio.StreamWriter, line: bytes
    ) -> None:
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        trace = self.tracer.start("?", transport="ndjson")
        try:
            request = protocol.parse_request(line, allowed_ops=ROUTER_OPS)
        except ProtocolError as exc:
            if trace is not None:
                trace.op = "invalid"
                trace.annotate(error=exc.error_type)
                self.tracer.finish(trace)
            await self._reject_line(writer, best_effort_id(line), exc)
            return
        if trace is not None:
            trace.op = request.op
        self.metrics.record_request(request.op)
        _ROUTED.inc(op=request.op)
        try:
            result = await self._resolve(request, trace)
        except ProtocolError as exc:
            if trace is not None:
                trace.annotate(error=exc.error_type)
                self.tracer.finish(trace)
            await self._reject_line(writer, request.id, exc)
            return
        self.metrics.record_reply(loop.time() - t0)
        reply_start = time.perf_counter()
        await self._write(writer, protocol.encode_line(
            protocol.ok_reply(request.id, request.op, result)
        ))
        if trace is not None:
            trace.add_span("reply", reply_start, time.perf_counter())
            self.tracer.finish(trace)

    # --------------------------- HTTP path -----------------------------

    async def _route_http(
        self, method: str, path: str, body: bytes, t0: float, query: str = ""
    ) -> tuple[int, dict]:
        loop = asyncio.get_running_loop()
        if method == "GET" and path == "/healthz":
            counts = self.registry.counts()
            return 200, {
                "status": "ok" if counts["alive"] else "degraded",
                "role": "router",
                "address": self.address,
                "workers": counts,
                "ring": self.ring.spec() if self.ring else None,
            }
        if method == "GET" and path == "/v1/stats":
            self.metrics.record_request("stats")
            snapshot = self._stats_snapshot()
            self.metrics.record_reply(loop.time() - t0)
            return 200, snapshot
        if method == "GET" and path == "/v1/ring":
            return 200, {
                "ring": self.ring.spec() if self.ring else None,
                "registry": self.registry.snapshot(),
            }
        if method == "GET" and path == "/v1/trace/recent":
            limit = query_int(query, "limit", default=50)
            return 200, {
                "traces": self.tracer.recent(limit),
                "slow": self.tracer.slow_recent(limit),
                "tracer": self.tracer.snapshot(),
            }
        if method == "POST" and path in ("/v1/classify", "/v1/match"):
            op = path.rsplit("/", 1)[1]
            try:
                data = json.loads(body.decode() or "null")
            except (UnicodeDecodeError, ValueError):
                raise ProtocolError("bad_request", "body is not valid JSON")
            if not isinstance(data, dict):
                raise ProtocolError("bad_request", "body must be a JSON object")
            table = protocol.parse_table_payload(data)
            self.metrics.record_request(op)
            _ROUTED.inc(op=op)
            trace = self.tracer.start(op, transport="http")
            try:
                result = await self._resolve(
                    Request(op=op, id=data.get("id"), table=table), trace
                )
            except ProtocolError as exc:
                if trace is not None:
                    trace.annotate(error=exc.error_type)
                    self.tracer.finish(trace)
                raise
            self.metrics.record_reply(loop.time() - t0)
            self.tracer.finish(trace)
            return 200, {"ok": True, "op": op, "result": result}
        raise ProtocolError("bad_request", f"no route for {method} {path}")

    # ------------------------------------------------------------------
    # Request resolution
    # ------------------------------------------------------------------

    async def _resolve(self, request: Request, trace=None) -> dict:
        if request.op == "ping":
            return {
                "pong": True,
                "role": "router",
                "workers": self.registry.counts(),
            }
        if request.op == "stats":
            return self._stats_snapshot()
        if request.op in FABRIC_OPS:
            return self._control(request)
        return await self._route_table_op(request, trace)

    # ------------------------ control plane ----------------------------

    def _control(self, request: Request) -> dict:
        data = request.raw or {}
        if request.op == "register":
            return self._register(data)
        worker_id = data.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            raise ProtocolError(
                "bad_request", f"{request.op} needs a string 'worker_id'"
            )
        if request.op == "heartbeat":
            return {"known": self.registry.heartbeat(worker_id)}
        # drain
        known = self.registry.drain(worker_id)
        return {"draining": known, "known": known}

    def _register(self, data: dict) -> dict:
        worker = data.get("worker")
        if not isinstance(worker, dict):
            raise ProtocolError(
                "bad_request", "register needs a 'worker' object"
            )
        worker_id = worker.get("worker_id")
        address = worker.get("address")
        ring_spec = worker.get("ring")
        if not isinstance(worker_id, str) or not worker_id:
            raise ProtocolError("bad_request", "worker needs a 'worker_id'")
        if not isinstance(address, str) or ":" not in address:
            raise ProtocolError(
                "bad_request", "worker needs an 'address' of form host:port"
            )
        if not isinstance(ring_spec, dict):
            raise ProtocolError("bad_request", "worker needs a 'ring' spec")
        try:
            ring = HashRing.from_spec(ring_spec)
        except ValueError as exc:
            raise ProtocolError("bad_request", str(exc))
        if worker_id not in ring.nodes:
            raise ProtocolError(
                "bad_request",
                f"worker {worker_id!r} is not on its own ring {ring.nodes}",
            )
        parts = worker.get("parts")
        if parts is not None:
            try:
                parts = normalize_parts(parts)
            except ValueError as exc:
                raise ProtocolError("bad_request", f"bad parts: {exc}")
        if self.ring is None:
            # First registration pins the fabric's shape; everyone after
            # must agree, or shard ownership would diverge between the
            # router's routing and the workers' loaded shards.
            self.ring = ring
            if parts is not None:
                self.parts = parts
        else:
            if ring.spec() != self.ring.spec():
                raise ProtocolError(
                    "bad_request",
                    f"ring mismatch: router has {self.ring.spec()}, "
                    f"worker {worker_id!r} announced {ring.spec()}",
                )
            if parts is not None and parts != self.parts:
                raise ProtocolError(
                    "bad_request",
                    f"MSV parts mismatch: router has {self.parts}, "
                    f"worker {worker_id!r} announced {parts}",
                )
        capabilities = {
            key: worker.get(key)
            for key in (
                "arities", "id_scheme", "classes", "learning", "engine", "pid"
            )
            if key in worker
        }
        self.registry.register(worker_id, address, capabilities)
        stale = self.channels.get(worker_id)
        if stale is not None and stale.address != address:
            # The worker restarted elsewhere: drop the stale channel so
            # the next dispatch dials the new address.
            self.channels.pop(worker_id, None)
            asyncio.ensure_future(stale.close())
        return {
            "registered": True,
            "workers": self.registry.counts(),
            "heartbeat_interval_s": self.registry.heartbeat_interval_s,
        }

    # ------------------------- data plane ------------------------------

    async def _route_table_op(self, request: Request, trace=None) -> dict:
        route_start = time.perf_counter()
        key = shard_key_of(request.table, self.parts)
        if self.ring is None:
            self._degraded += 1
            _DEGRADED.inc()
            raise ProtocolError(
                "shard_unavailable",
                "no workers have registered with this router yet",
            )
        owners = self.ring.owners(key)
        if trace is not None:
            trace.add_span(
                "route",
                route_start,
                time.perf_counter(),
                {"shard": key, "owners": ",".join(owners)},
            )
        payload = {
            "op": request.op,
            "table": f"0x{request.table.to_hex()}",
            "n": request.table.n,
        }
        delays = self.policy.delays()
        dispatch_start = time.perf_counter()
        failure: str = ""
        failure_kind: str = "unavailable"
        hedged = False
        for attempt in range(self.policy.attempts):
            routable = self.registry.routable(owners)
            if not routable:
                self._degraded += 1
                _DEGRADED.inc()
                raise ProtocolError(
                    "shard_unavailable",
                    f"no live worker holds shard {key} "
                    f"(owners: {', '.join(owners)}); degraded until one "
                    f"re-registers",
                )
            primary = routable[0]
            hedge = None
            if len(routable) > 1 and any(
                self.registry.state_of(owner) == SUSPECT for owner in owners
            ):
                # Some owner of this shard is under suspicion (missed
                # heartbeats or a dead channel): race the two best
                # candidates instead of betting one deadline on either.
                # ``routable`` sorts alive before suspect, so this pairs
                # the healthy replica with the suspect owner; the first
                # good reply wins and the straggler is cancelled.
                hedge = routable[1]
                hedged = True
            try:
                reply = await self._attempt(primary, hedge, payload)
            except DispatchTimeout as exc:
                failure, failure_kind = str(exc), "timeout"
                _RETRIES.inc(reason="timeout")
            except ChannelClosed as exc:
                failure, failure_kind = str(exc), "unavailable"
                _RETRIES.inc(reason="channel_closed")
            else:
                if reply.get("ok"):
                    if trace is not None:
                        trace.add_span(
                            "dispatch",
                            dispatch_start,
                            time.perf_counter(),
                            {
                                "worker": primary,
                                "attempts": attempt + 1,
                                "hedged": hedged,
                            },
                        )
                    return reply.get("result", {})
                error = reply.get("error", {})
                error_type = error.get("type", "internal")
                message = error.get("message", "")
                if error_type not in RETRYABLE_WORKER_ERRORS:
                    raise ProtocolError(
                        error_type if error_type in ERROR_TYPES else "internal",
                        f"worker {primary}: {message}",
                    )
                failure = f"worker {primary}: [{error_type}] {message}"
                failure_kind = "unavailable"
                _RETRIES.inc(reason=error_type)
            if attempt + 1 < self.policy.attempts:
                self._retries += 1
                await asyncio.sleep(next(delays))
        raise ProtocolError(
            failure_kind,
            f"shard {key} gave no answer after {self.policy.attempts} "
            f"attempts; last failure: {failure}",
        )

    async def _attempt(
        self, primary: str, hedge: str | None, payload: dict
    ) -> dict:
        """One dispatch attempt, optionally hedged to the ring successor.

        Returns the first ``ok`` reply; an error reply is returned only
        when no racer did better; transport failures raise only when
        every racer failed.
        """
        timeout = self.policy.timeout_s
        primary_task = asyncio.ensure_future(
            self._dispatch_to(primary, payload, timeout)
        )
        if hedge is None:
            return await primary_task
        self._hedges += 1
        _HEDGES.inc()
        tasks = {
            primary_task,
            asyncio.ensure_future(self._dispatch_to(hedge, payload, timeout)),
        }
        first_reply: dict | None = None
        first_error: Exception | None = None
        while tasks:
            done, tasks = await asyncio.wait(
                tasks, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                exc = task.exception()
                if exc is not None:
                    first_error = first_error or exc
                    continue
                reply = task.result()
                if reply.get("ok"):
                    for straggler in tasks:
                        straggler.cancel()
                    if tasks:
                        await asyncio.gather(*tasks, return_exceptions=True)
                    return reply
                first_reply = first_reply or reply
        if first_reply is not None:
            return first_reply
        assert first_error is not None
        raise first_error

    async def _dispatch_to(
        self, worker_id: str, payload: dict, timeout: float | None
    ) -> dict:
        channel = self._channel(worker_id)
        t0 = time.perf_counter()
        try:
            reply = await channel.request(payload, timeout)
        except ChannelClosed:
            _DISPATCHES.inc(outcome="channel_closed")
            # A dead channel is evidence of a dead worker well before the
            # heartbeat ladder notices.
            self.registry.mark_suspect(worker_id)
            raise
        except DispatchTimeout:
            _DISPATCHES.inc(outcome="timeout")
            self.registry.mark_suspect(worker_id)
            raise
        finally:
            _DISPATCH_SECONDS.observe(
                time.perf_counter() - t0, worker=worker_id
            )
        _DISPATCHES.inc(
            outcome="ok" if reply.get("ok") else "worker_error"
        )
        return reply

    def _channel(self, worker_id: str) -> WorkerChannel:
        address = self.registry.address_of(worker_id)
        if address is None:
            raise ChannelClosed(f"worker {worker_id} is not registered")
        channel = self.channels.get(worker_id)
        if channel is None or channel.address != address or channel._closed:
            if channel is not None:
                asyncio.ensure_future(channel.close())
            channel = WorkerChannel(
                worker_id,
                address,
                connect_timeout=self.policy.timeout_s or 5.0,
            )
            self.channels[worker_id] = channel
        return channel

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _stats_snapshot(self) -> dict:
        snapshot = self.metrics.snapshot()
        snapshot["identity"] = self.identity()
        snapshot["fabric"] = {
            "retries": self._retries,
            "hedges": self._hedges,
            "degraded": self._degraded,
            "channels": {
                worker_id: {
                    "connected": channel.connected,
                    "inflight": channel.inflight,
                }
                for worker_id, channel in sorted(self.channels.items())
            },
        }
        snapshot["ring"] = self.ring.spec() if self.ring else None
        snapshot["registry"] = self.registry.snapshot()
        return snapshot

    def identity(self) -> dict:
        return {
            "pid": os.getpid(),
            "role": "router",
            "address": self.address,
            "transports": ["ndjson", "http/1.0"],
            "parts": list(self.parts),
            "policy": {
                "attempts": self.policy.attempts,
                "base_ms": self.policy.base_ms,
                "cap_ms": self.policy.cap_ms,
                "timeout_ms": self.policy.timeout_ms,
            },
            "workers": self.registry.counts(),
        }
