"""Fault-tolerant distributed serving fabric.

One router, many workers, one consistent-hash ring over signature
digests:

* :mod:`repro.fabric.ring` — who owns which classes (and why a query
  hashes to the same shard as its class);
* :mod:`repro.fabric.registry` — who is alive, suspect, draining, dead;
* :mod:`repro.fabric.backoff` — the one retry policy every layer draws
  its sleep schedule from;
* :mod:`repro.fabric.channel` — the pipelined router→worker connection;
* :mod:`repro.fabric.router` — the client-facing daemon tying them
  together: shard routing, timeouts, retries, hedging, drain-aware
  failover, degraded mode;
* :mod:`repro.fabric.worker` — a classification daemon serving its
  shard, registered and heartbeating;
* :mod:`repro.fabric.chaos` — the fault-injection harness the soak
  tests and benchmarks drive fleets with.
"""

from repro.fabric.backoff import RetryPolicy, retry_call
from repro.fabric.channel import ChannelClosed, DispatchTimeout, WorkerChannel
from repro.fabric.registry import (
    ALIVE,
    DEAD,
    DRAINING,
    SUSPECT,
    WorkerInfo,
    WorkerRegistry,
)
from repro.fabric.ring import (
    DEFAULT_REPLICAS,
    DEFAULT_VNODES,
    HashRing,
    parse_ring_spec,
    shard_key_of,
)

__all__ = [
    "RetryPolicy",
    "retry_call",
    "WorkerChannel",
    "ChannelClosed",
    "DispatchTimeout",
    "WorkerRegistry",
    "WorkerInfo",
    "ALIVE",
    "SUSPECT",
    "DRAINING",
    "DEAD",
    "HashRing",
    "shard_key_of",
    "parse_ring_spec",
    "DEFAULT_VNODES",
    "DEFAULT_REPLICAS",
]
