"""Pipelined NDJSON channel from the router to one worker daemon.

One :class:`WorkerChannel` per worker: a persistent connection carrying
many concurrent requests, re-associated by internal request id.  The
send side is a queue drained by a single writer task — whatever
accumulated while the previous write was in flight goes out as **one**
write syscall, so concurrent client requests to the same shard reach the
worker as a coalesced burst of lines.  That burst is exactly the traffic
shape the worker's micro-batching coalescer folds into a single packed
engine pass: the router's fan-out and the worker's batching compose
without either knowing the other's internals.

Failure semantics are strict so the router's retry loop stays simple:

* any transport error (reset, EOF, refused reconnect) fails **all**
  in-flight requests with :class:`ChannelClosed` and tears the channel
  down; the next :meth:`request` redials from scratch;
* a per-request timeout abandons only that request (the reply, if it
  ever arrives, is dropped by id);
* the channel never interprets replies — worker-side errors come back
  as normal reply dicts for the router to map onto its own taxonomy.
"""

from __future__ import annotations

import asyncio
import json

from repro.service.protocol import MAX_LINE_BYTES

__all__ = ["WorkerChannel", "ChannelClosed", "DispatchTimeout"]


class ChannelClosed(ConnectionError):
    """The worker connection died (or could not be established)."""


class DispatchTimeout(TimeoutError):
    """One dispatched request missed its per-attempt deadline."""


class WorkerChannel:
    """One persistent, pipelined connection to a worker daemon."""

    def __init__(
        self,
        worker_id: str,
        address: str,
        connect_timeout: float = 5.0,
    ) -> None:
        self.worker_id = worker_id
        self.address = address
        self.connect_timeout = connect_timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._writer_task: asyncio.Task | None = None
        self._reader_task: asyncio.Task | None = None
        self._sendq: asyncio.Queue[bytes] | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._connect_lock = asyncio.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._writer is not None

    @property
    def inflight(self) -> int:
        return len(self._pending)

    async def request(self, payload: dict, timeout: float | None) -> dict:
        """Send one request dict; await its reply dict.

        The payload's ``id`` is overwritten with a channel-internal id
        (the router keeps the client's id on its own side).  Raises
        :class:`ChannelClosed` on transport death and
        :class:`DispatchTimeout` on deadline.
        """
        if self._closed:
            raise ChannelClosed(f"channel to {self.worker_id} is closed")
        await self._ensure_connected()
        self._next_id += 1
        internal_id = self._next_id
        payload = dict(payload, id=internal_id)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[internal_id] = future
        assert self._sendq is not None
        self._sendq.put_nowait(
            json.dumps(payload, sort_keys=True).encode() + b"\n"
        )
        try:
            if timeout is None:
                return await future
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            raise DispatchTimeout(
                f"worker {self.worker_id} ({self.address}) took more than "
                f"{timeout:.3f}s"
            ) from None
        finally:
            self._pending.pop(internal_id, None)

    async def close(self) -> None:
        """Tear the channel down; in-flight requests fail ChannelClosed."""
        self._closed = True
        await self._teardown(ChannelClosed(f"channel to {self.worker_id} closed"))

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    async def _ensure_connected(self) -> None:
        if self._writer is not None:
            return
        async with self._connect_lock:
            if self._writer is not None or self._closed:
                return
            host, _, port_text = self.address.rpartition(":")
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(
                        host, int(port_text), limit=MAX_LINE_BYTES + 2
                    ),
                    self.connect_timeout,
                )
            except (OSError, ValueError, asyncio.TimeoutError) as exc:
                raise ChannelClosed(
                    f"cannot reach worker {self.worker_id} at "
                    f"{self.address}: {exc}"
                ) from None
            self._reader, self._writer = reader, writer
            self._sendq = asyncio.Queue()
            self._writer_task = asyncio.ensure_future(self._write_loop())
            self._reader_task = asyncio.ensure_future(self._read_loop())

    async def _write_loop(self) -> None:
        """Drain the send queue; gather queued lines into single writes."""
        assert self._sendq is not None and self._writer is not None
        sendq, writer = self._sendq, self._writer
        try:
            while True:
                chunk = [await sendq.get()]
                while True:
                    try:
                        chunk.append(sendq.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                writer.write(b"".join(chunk))
                await writer.drain()
        except asyncio.CancelledError:
            raise
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            await self._teardown(
                ChannelClosed(
                    f"write to worker {self.worker_id} failed: {exc}"
                )
            )

    async def _read_loop(self) -> None:
        assert self._reader is not None
        reader = self._reader
        try:
            while True:
                line = await reader.readline()
                if not line:
                    await self._teardown(
                        ChannelClosed(
                            f"worker {self.worker_id} closed the connection"
                        )
                    )
                    return
                try:
                    reply = json.loads(line)
                except json.JSONDecodeError:
                    continue  # junk line; the matching request will time out
                if not isinstance(reply, dict):
                    continue
                future = self._pending.pop(reply.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except asyncio.CancelledError:
            raise
        except (ConnectionResetError, BrokenPipeError, OSError, ValueError) as exc:
            await self._teardown(
                ChannelClosed(f"read from worker {self.worker_id} failed: {exc}")
            )

    async def _teardown(self, error: ChannelClosed) -> None:
        """Fail everything in flight and reset to the disconnected state."""
        writer = self._writer
        self._reader, self._writer, self._sendq = None, None, None
        writer_task, self._writer_task = self._writer_task, None
        reader_task, self._reader_task = self._reader_task, None
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)
        for task in (writer_task, reader_task):
            if task is not None and task is not asyncio.current_task():
                task.cancel()
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "connected" if self.connected else "idle"
        )
        return (
            f"WorkerChannel({self.worker_id!r}, {self.address!r}, {state}, "
            f"inflight={self.inflight})"
        )
