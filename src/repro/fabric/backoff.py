"""Capped-exponential backoff with jitter — one policy, every retry path.

The fabric retries in three places: the router re-dispatching a shard
request after a timeout or a dead channel, a worker re-registering with
a router that restarted, and the CLI's ``query ping --retries`` waiting
for a slow-starting daemon.  They all draw their sleep schedule from the
same :class:`RetryPolicy` so tuning (and reasoning about worst-case
latency) happens in exactly one place.

The schedule is *full jitter* over a capped exponential: attempt ``k``
sleeps ``uniform(0, min(cap, base * 2**k))``.  Full jitter decorrelates
a thundering herd of clients retrying against a recovering worker — the
classic result from the AWS architecture blog — and the cap bounds the
tail so a bounded ``attempts`` count gives a bounded worst-case drain.
"""

from __future__ import annotations

import random
import time
from collections.abc import Iterator
from dataclasses import dataclass

__all__ = ["RetryPolicy", "retry_call"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently an operation is retried.

    Args:
        attempts: total tries (first call included); ``1`` disables
            retrying entirely.
        base_ms: first retry's mean delay ceiling.
        cap_ms: upper bound every delay is clamped to.
        jitter: ``True`` draws each delay uniformly from ``[0, ceiling]``
            (full jitter); ``False`` sleeps the ceiling itself —
            deterministic, for tests.
        timeout_ms: per-attempt deadline; consumers that await replies
            (the router's shard dispatch) time out each try at this and
            then move to the next attempt.  ``None`` means no deadline.
    """

    attempts: int = 3
    base_ms: float = 25.0
    cap_ms: float = 500.0
    jitter: bool = True
    timeout_ms: float | None = 5000.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_ms < 0 or self.cap_ms < 0:
            raise ValueError("base_ms and cap_ms must be >= 0")
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be > 0, got {self.timeout_ms}")

    @property
    def timeout_s(self) -> float | None:
        return None if self.timeout_ms is None else self.timeout_ms / 1000.0

    def delay_ms(self, retry_index: int, rng: random.Random | None = None) -> float:
        """Delay before retry number ``retry_index`` (0-based), in ms."""
        ceiling = min(self.cap_ms, self.base_ms * (2.0 ** retry_index))
        if not self.jitter:
            return ceiling
        return (rng.random() if rng is not None else random.random()) * ceiling

    def delays(self, rng: random.Random | None = None) -> Iterator[float]:
        """The ``attempts - 1`` sleep durations between tries, in seconds."""
        for retry_index in range(self.attempts - 1):
            yield self.delay_ms(retry_index, rng) / 1000.0

    def worst_case_s(self) -> float:
        """Upper bound on time spent sleeping + waiting across all tries."""
        sleeping = sum(
            min(self.cap_ms, self.base_ms * (2.0 ** k))
            for k in range(self.attempts - 1)
        ) / 1000.0
        waiting = (self.timeout_s or 0.0) * self.attempts
        return sleeping + waiting


def retry_call(
    fn,
    policy: RetryPolicy,
    retry_on: tuple[type[BaseException], ...],
    sleep=time.sleep,
    rng: random.Random | None = None,
):
    """Call ``fn()`` under ``policy``, retrying the listed exception types.

    The blocking counterpart of the router's async retry loop — the CLI
    uses it for ``query ping --retries``.  The final failure is re-raised
    unchanged so callers keep their typed error handling.
    """
    delays = policy.delays(rng)
    for attempt in range(policy.attempts):
        try:
            return fn()
        except retry_on:
            if attempt == policy.attempts - 1:
                raise
            sleep(next(delays))
    raise AssertionError("unreachable")  # pragma: no cover
