"""Write-ahead segments: crash-safe persistence for learned classes.

The online service mints new classes while serving traffic (see
:mod:`repro.library.online`).  Rewriting the whole ``manifest.json`` +
``classes.npz`` image per minted class would turn every miss into a
full-library write, so minted classes first land in an **append-only
write-ahead segment** under ``<library>/wal/``:

* a segment starts with a 16-byte magic string (format + version), so a
  foreign or truncated-to-nothing file is rejected loudly;
* each record is ``[u32 payload length][u32 CRC32][payload]``
  (little-endian header, canonical-JSON payload), so replay needs no
  framing heuristics and detects corruption per record;
* appends go through a configurable fsync policy (:data:`FSYNC_POLICIES`):
  ``always`` fsyncs every record (maximum durability), ``close`` fsyncs
  once when the segment is sealed, ``never`` leaves flushing to the OS.

Replay (:func:`replay_segment`) tolerates a **torn final record** — the
expected artifact of a crash mid-append: a truncated header, a payload
shorter than its declared length, a CRC mismatch or an undecodable
payload all end the replay at the last intact record instead of raising.
Everything *before* the tear is returned, which is exactly the
at-least-once contract compaction needs.  A bad magic header, by
contrast, always raises: that is not a torn write but a wrong file.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.library.store import LibraryFormatError

__all__ = [
    "WAL_MAGIC",
    "WAL_DIR",
    "LOCK_FILE",
    "FSYNC_POLICIES",
    "MAX_RECORD_BYTES",
    "WalError",
    "LibraryLockedError",
    "SegmentWriter",
    "SegmentReplay",
    "encode_record",
    "decode_records",
    "replay_segment",
    "list_segments",
    "segment_path",
    "lock_path",
    "acquire_learner_lock",
    "release_learner_lock",
]

#: First bytes of every segment file: format name + format version.
WAL_MAGIC = b"repro-npn-wal/1\n"

#: Subdirectory of a library holding its write-ahead segments.
WAL_DIR = "wal"

#: Lock file (under :data:`WAL_DIR`) naming the active learner's pid.
LOCK_FILE = "LOCK"

#: ``(payload length, CRC32 of payload)``, little-endian.
_HEADER = struct.Struct("<II")

#: Hard cap on one record's payload: a declared length beyond this is
#: treated as corruption, not as an instruction to allocate gigabytes.
MAX_RECORD_BYTES = 1 << 20

#: When appended records reach the disk (see module docstring).
FSYNC_POLICIES = ("always", "close", "never")

_OBS = obs.registry()
_APPENDS = _OBS.counter(
    "repro_wal_appends_total", "Records appended to write-ahead segments."
)
_APPEND_BYTES = _OBS.counter(
    "repro_wal_append_bytes_total",
    "Bytes appended to write-ahead segments (headers included).",
)
_FSYNCS = _OBS.counter(
    "repro_wal_fsyncs_total",
    "fsync calls issued by segment writers, by trigger.",
    labels=("when",),
)
_APPEND_SECONDS = _OBS.histogram(
    "repro_wal_append_seconds",
    "Wall-clock time of one durable append (write + flush + policy fsync).",
)
_REPLAYED_RECORDS = _OBS.counter(
    "repro_wal_replayed_records_total",
    "Intact records recovered by segment replay.",
)
_REPLAYED_SEGMENTS = _OBS.counter(
    "repro_wal_replayed_segments_total",
    "Segments replayed, split by whether the tail was intact.",
    labels=("tail",),
)


class WalError(LibraryFormatError):
    """A write-ahead segment is malformed beyond torn-tail tolerance."""


class LibraryLockedError(WalError):
    """Another live process is already learning on this library."""


def lock_path(directory: str | Path) -> Path:
    """The learner lock file of a library directory."""
    return Path(directory) / WAL_DIR / LOCK_FILE


def acquire_learner_lock(directory: str | Path) -> Path:
    """Claim exclusive learner rights over a library directory.

    Two learners appending to one ``wal/`` race on segment creation —
    the second one's exclusive-create blows up mid-request with a raw
    ``FileExistsError``.  This lock moves the failure to open time with
    a clear error instead: ``wal/LOCK`` records the holder's pid, and a
    second :class:`~repro.library.online.LearningLibrary` open fails
    fast with :class:`LibraryLockedError` while the holder lives.

    A lock naming the *current* pid (a reopened learner in the same
    process) or a dead pid (holder crashed without releasing — the lock
    file has no other removal path after a SIGKILL) is taken over.
    Unparseable lock files count as stale.
    """
    path = lock_path(directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    my_pid = os.getpid()
    while True:
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            holder = _read_lock_pid(path)
            if holder is not None and holder != my_pid and _pid_alive(holder):
                raise LibraryLockedError(
                    f"{Path(directory)}: library already has an active "
                    f"learner (pid {holder}); stop that process first, or "
                    f"point this one at its own library directory"
                ) from None
            try:  # stale or our own: take it over and retry the create
                path.unlink()
            except FileNotFoundError:
                pass
            continue
        with os.fdopen(fd, "w") as handle:
            handle.write(f"{my_pid}\n")
        return path


def release_learner_lock(directory: str | Path) -> None:
    """Drop the learner lock if this process holds it (idempotent).

    A lock held by another pid is left alone — releasing is only valid
    for the acquirer, and a double release must not unlock a library a
    different daemon has since claimed.
    """
    path = lock_path(directory)
    if _read_lock_pid(path) == os.getpid():
        try:
            path.unlink()
        except FileNotFoundError:
            pass


def _read_lock_pid(path: Path) -> int | None:
    try:
        return int(path.read_text().strip())
    except (OSError, ValueError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other user
        return True
    return True


def segment_path(directory: str | Path, index: int) -> Path:
    """Canonical path of segment ``index`` under a library directory."""
    return Path(directory) / WAL_DIR / f"segment-{index:06d}.wal"


def list_segments(directory: str | Path) -> list[Path]:
    """All segment files under ``<directory>/wal/``, in replay order."""
    wal_dir = Path(directory) / WAL_DIR
    if not wal_dir.is_dir():
        return []
    return sorted(wal_dir.glob("segment-*.wal"))


def encode_record(record: dict) -> bytes:
    """One record as ``header + canonical JSON`` bytes.

    Canonical JSON (sorted keys, no whitespace) makes the encoding a
    pure function of the record — the byte-determinism of compaction
    starts here.
    """
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode()
    if len(payload) > MAX_RECORD_BYTES:
        raise WalError(
            f"record payload is {len(payload)} bytes "
            f"(limit {MAX_RECORD_BYTES})"
        )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_records(data: bytes) -> tuple[list[dict], bool, int]:
    """Parse a record stream: ``(records, clean, valid_bytes)``.

    ``clean`` is False when the stream ends in a torn record; in that
    case ``valid_bytes`` is the offset of the last intact record
    boundary (the safe truncation point).  ``data`` excludes the magic.
    """
    records: list[dict] = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < _HEADER.size:
            return records, False, offset
        length, checksum = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            return records, False, offset
        start = offset + _HEADER.size
        if total - start < length:
            return records, False, offset
        payload = data[start : start + length]
        if zlib.crc32(payload) != checksum:
            return records, False, offset
        try:
            record = json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return records, False, offset
        if not isinstance(record, dict):
            return records, False, offset
        records.append(record)
        offset = start + length
    return records, True, offset


@dataclass(frozen=True)
class SegmentReplay:
    """Outcome of replaying one segment file.

    Attributes:
        path: the segment file.
        records: every intact record, in append order.
        clean: False when the file ends in a torn record (crash artifact).
        valid_bytes: file offset of the last intact record boundary.
    """

    path: Path
    records: list[dict]
    clean: bool
    valid_bytes: int


def replay_segment(path: str | Path) -> SegmentReplay:
    """Read one segment, tolerating a torn final record.

    Raises :class:`WalError` when the file is missing or does not start
    with :data:`WAL_MAGIC` — those are wrong files, not crash artifacts.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise WalError(f"{path}: cannot read segment: {exc}") from exc
    if len(data) < len(WAL_MAGIC) or not data.startswith(WAL_MAGIC):
        raise WalError(
            f"{path}: not a {WAL_MAGIC[:-1].decode()} segment "
            f"(bad or truncated magic header)"
        )
    records, clean, valid = decode_records(data[len(WAL_MAGIC):])
    _REPLAYED_RECORDS.inc(len(records))
    _REPLAYED_SEGMENTS.inc(tail="clean" if clean else "torn")
    return SegmentReplay(
        path=path,
        records=records,
        clean=clean,
        valid_bytes=len(WAL_MAGIC) + valid,
    )


class SegmentWriter:
    """Appends length-prefixed, checksummed records to one new segment.

    Args:
        path: segment file to create.  Creation is exclusive — an
            existing file raises, because reusing a possibly-torn
            segment would bury the tear mid-file where replay cannot
            distinguish it from real corruption.  Crash recovery starts
            a *new* segment instead.
        fsync: one of :data:`FSYNC_POLICIES`.
    """

    def __init__(self, path: str | Path, fsync: str = "close") -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {', '.join(FSYNC_POLICIES)}, "
                f"got {fsync!r}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self.records_written = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "xb")
        self._handle.write(WAL_MAGIC)
        self._handle.flush()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    @property
    def bytes_written(self) -> int:
        """Current segment size in bytes (magic included)."""
        return self._handle.tell() if not self.closed else 0

    def append(self, record: dict) -> int:
        """Durably append one record; returns the segment size after it."""
        if self.closed:
            raise WalError(f"{self.path}: segment writer is closed")
        encoded = encode_record(record)
        with obs.timed(_APPEND_SECONDS):
            self._handle.write(encoded)
            self._handle.flush()
            if self.fsync == "always":
                os.fsync(self._handle.fileno())
                _FSYNCS.inc(when="append")
        self.records_written += 1
        _APPENDS.inc()
        _APPEND_BYTES.inc(len(encoded))
        return self._handle.tell()

    def close(self) -> None:
        """Seal the segment (fsyncs under the ``close`` policy)."""
        if self.closed:
            return
        self._handle.flush()
        if self.fsync in ("always", "close"):
            os.fsync(self._handle.fileno())
            _FSYNCS.inc(when="close")
        self._handle.close()

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SegmentWriter({str(self.path)!r}, fsync={self.fsync!r}, "
            f"records={self.records_written})"
        )
