"""Persistent NPN class library with witness-producing matching.

The missing layer between the classification engines and a reusable
Boolean-matching service: :class:`ClassLibrary` stores one canonical
representative per NPN signature class, persists to a versioned
``manifest.json`` + ``classes.npz`` artifact, and resolves queries to
``(class id, NPN transform witness)`` pairs via the signature-pruned
pairwise matcher.  See :mod:`repro.library.store` for the data model and
:mod:`repro.library.build` for representative election.
"""

from repro.library.build import (
    EXACT_REP_MAX_VARS,
    build_exhaustive_library,
    build_library,
    elect_representative,
    library_from_result,
)
from repro.library.online import (
    DEFAULT_SEGMENT_BYTES,
    CompactionResult,
    LearningLibrary,
)
from repro.library.store import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_FILE,
    TABLES_FILE,
    ClassLibrary,
    LibraryFormatError,
    LibraryMatch,
    NPNClassEntry,
    class_id_matches,
    overflow_successor,
)
from repro.library.wal import (
    FSYNC_POLICIES,
    LOCK_FILE,
    WAL_DIR,
    LibraryLockedError,
    SegmentReplay,
    SegmentWriter,
    WalError,
    list_segments,
    replay_segment,
)

__all__ = [
    "ClassLibrary",
    "NPNClassEntry",
    "LibraryMatch",
    "LibraryFormatError",
    "LearningLibrary",
    "CompactionResult",
    "SegmentWriter",
    "SegmentReplay",
    "WalError",
    "LibraryLockedError",
    "class_id_matches",
    "overflow_successor",
    "list_segments",
    "replay_segment",
    "build_library",
    "build_exhaustive_library",
    "library_from_result",
    "elect_representative",
    "EXACT_REP_MAX_VARS",
    "DEFAULT_SEGMENT_BYTES",
    "FSYNC_POLICIES",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_FILE",
    "TABLES_FILE",
    "WAL_DIR",
    "LOCK_FILE",
]
