"""Persistent NPN class library: canonical representatives + witness matching.

A :class:`ClassLibrary` stores one entry per NPN class: a canonical
representative truth table, the class size observed at build time, and
the face/point characteristics of the representative.  The library
closes the loop the bucketing engines leave open — a
:class:`~repro.core.classifier.ClassificationResult` groups functions
without ever saying *which* class a bucket is or *how* a member maps onto
it.  Here every class has a stable identity and :meth:`ClassLibrary.match`
recovers an explicit :class:`~repro.core.transforms.NPNTransform` witness
mapping the stored representative onto any queried function, via the
signature-pruned matcher of :mod:`repro.baselines.matcher`.

Two id schemes exist:

* ``"canonical"`` (the default, format version 2) — every representative
  is the *exact orbit minimum* (:mod:`repro.canonical.form`) and the id
  is ``n{n}-c{hex}`` where the hex **is** the representative.  Ids are a
  pure function of the orbit: injective (no collisions, ever), identical
  across machines and build orders, so libraries merge by id safely.
* ``"digest"`` (legacy, format version 1) — ids are ``n{n}-{MSV digest}``
  with ``-1``, ``-2`` … overflow slots for digest-colliding orbits.
  Still fully readable and writable (byte-identical to pre-canonical
  artifacts) so existing libraries keep loading; new libraries should
  not use it.

Persistence is a directory holding two files:

* ``manifest.json`` — format name, format version, id scheme (version
  2), MSV parts and the per-class metadata (id, arity, size,
  representative hex, satisfy count, influence vector);
* ``classes.npz`` — the representatives as packed little-endian
  ``uint64`` words plus the size/arity arrays, in manifest order.

Both files are written deterministically (sorted classes, fixed zip
timestamps), so rebuilding the same corpus yields byte-identical
artifacts — the property the regression suite pins.  :meth:`ClassLibrary.load`
cross-checks the two files against each other and re-verifies every
class id against its representative (signature recomputation for the
digest scheme, canonical-form recomputation for the canonical scheme),
so corruption or a format drift fails loudly instead of producing
garbage matches.
"""

from __future__ import annotations

import json
import zipfile
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro import obs
from repro.baselines.matcher import find_npn_transform, find_npn_transforms_grouped
from repro.canonical.form import (
    canonical_class_id,
    canonical_form,
    canonical_forms,
    parse_canonical_class_id,
)
from repro.core import bitops
from repro.core import characteristics as chars
from repro.core.msv import DEFAULT_PARTS, MixedSignature, compute_msv, normalize_parts
from repro.core.transforms import NPNTransform
from repro.core.truth_table import TruthTable
from repro.kernels.gather import MAX_KERNEL_VARS
from repro.kernels.ops import canonical_min

__all__ = [
    "ClassLibrary",
    "NPNClassEntry",
    "LibraryMatch",
    "LibraryFormatError",
    "class_id_matches",
    "overflow_successor",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "DIGEST_FORMAT_VERSION",
    "ID_SCHEMES",
    "MANIFEST_FILE",
    "TABLES_FILE",
]

FORMAT_NAME = "repro-npn-class-library"
#: Current format: canonical-scheme manifests carrying an ``id_scheme``.
FORMAT_VERSION = 2
#: Legacy format: digest-scheme manifests with no ``id_scheme`` field.
#: Digest-scheme saves still emit this version so pre-canonical builds
#: and readers keep working byte-for-byte.
DIGEST_FORMAT_VERSION = 1
#: Class-identity schemes a library can use (see module docstring).
ID_SCHEMES = ("canonical", "digest")
MANIFEST_FILE = "manifest.json"
TABLES_FILE = "classes.npz"

_REG = obs.registry()
_MATCH_PHASE_SECONDS = _REG.histogram(
    "repro_library_match_seconds",
    "match_many phase timings per batch: the vectorized signature pass "
    "vs. the grouped witness-search rounds.",
    labels=("phase",),
)
_MATCH_QUERIES = _REG.counter(
    "repro_library_match_queries_total",
    "Queries resolved by match_many, by outcome (hit or miss).",
    labels=("outcome",),
)
_MATCH_ROUNDS = _REG.counter(
    "repro_library_match_rounds_total",
    "Chain-walk witness rounds run by match_many (one grouped matcher "
    "pass each).",
)


class LibraryFormatError(ValueError):
    """A library artifact is missing, corrupted, or of the wrong format."""


def overflow_successor(class_id: str) -> str:
    """The next overflow slot after ``class_id`` (digest scheme only).

    Signature digests are sound but not injective: two NPN-inequivalent
    orbits can share an MSV digest.  The second orbit cannot live under
    the base id ``n{n}-{digest}``, so it is minted into the first free
    *overflow slot* ``n{n}-{digest}-1``, ``-2``, … — and matching probes
    the slots in this same order, so the chain is always contiguous.

    The canonical id scheme makes all of this unnecessary — ids embed
    the exact representative, so two orbits can never collide; overflow
    slots survive only for legacy digest-scheme libraries.

    >>> overflow_successor("n6-0123456789abcdef")
    'n6-0123456789abcdef-1'
    >>> overflow_successor("n6-0123456789abcdef-1")
    'n6-0123456789abcdef-2'
    """
    head, _, tail = class_id.rpartition("-")
    if "-" in head and tail.isdigit():
        return f"{head}-{int(tail) + 1}"
    return f"{class_id}-1"


def class_id_matches(stored: str, derived: str) -> bool:
    """Is ``stored`` the base id ``derived`` or an overflow slot of it?

    The integrity checks in :meth:`ClassLibrary.load` and the WAL replay
    recompute ``derived`` from each entry's representative; a stored id
    passes when it is exactly that, or that plus a ``-{k}`` overflow
    suffix (``k`` a positive integer with no leading zeros).
    """
    if stored == derived:
        return True
    if not stored.startswith(derived + "-"):
        return False
    suffix = stored[len(derived) + 1 :]
    return suffix.isdigit() and suffix[0] != "0"


def _digest_base(class_id: str) -> str:
    """Base digest id of a possibly-overflow digest-scheme id."""
    head, _, tail = class_id.rpartition("-")
    if "-" in head and tail.isdigit():
        return head
    return class_id


def _digest_slot(class_id: str) -> int:
    """Overflow slot number of a digest-scheme id (0 for the base)."""
    head, _, tail = class_id.rpartition("-")
    if "-" in head and tail.isdigit():
        return int(tail)
    return 0


@dataclass(frozen=True)
class NPNClassEntry:
    """One NPN class: identity, canonical representative, metadata.

    Attributes:
        class_id: stable identity.  Canonical scheme: ``n{n}-c{hex}``, a
            pure function of the orbit (the hex is the exact canonical
            representative).  Digest scheme: ``n{n}-{MSV digest}`` plus
            overflow slots, a pure function of the class signature.
        representative: the class's canonical truth table.  ``exact``
            entries store the minimum table over the whole NPN orbit
            (always, under the canonical scheme); elected entries store
            the minimum *observed* member.
        size: number of functions classified into this class at build
            time (summed by :meth:`ClassLibrary.merged_with`).
        exact: True when the representative is the exhaustive orbit
            minimum (the n<=4 build path), False for elected ones.
        count: satisfy count of the representative (0-ary face char.).
        influences: ordered influence vector of the representative (the
            point-face characteristic, an NPN invariant of the class).
    """

    class_id: str
    representative: TruthTable
    size: int
    exact: bool
    count: int
    influences: tuple[int, ...]

    @property
    def n(self) -> int:
        return self.representative.n

    @classmethod
    def from_representative(
        cls,
        class_id: str,
        representative: TruthTable,
        size: int,
        exact: bool,
    ) -> "NPNClassEntry":
        """Build an entry, deriving the metadata from the representative."""
        return cls(
            class_id=class_id,
            representative=representative,
            size=size,
            exact=exact,
            count=representative.count_ones(),
            influences=tuple(sorted(chars.influences(representative))),
        )


@dataclass(frozen=True)
class LibraryMatch:
    """A successful library lookup: the class plus a witness transform.

    ``transform`` maps the stored representative onto the queried
    function: ``entry.representative.apply(transform) == query``.  It is
    verified by the matcher before being returned, and :meth:`verify`
    re-checks it against any table.
    """

    entry: NPNClassEntry
    transform: NPNTransform

    @property
    def class_id(self) -> str:
        return self.entry.class_id

    @property
    def representative(self) -> TruthTable:
        return self.entry.representative

    def verify(self, query: TruthTable) -> bool:
        """Check the witness reproduces ``query`` from the representative."""
        return self.entry.representative.apply(self.transform) == query


class ClassLibrary:
    """Disk-backed collection of NPN classes with witness-producing lookup.

    Args:
        parts: MSV part selection the library's signature pre-filter is
            defined over.  Matching a query recomputes its MSV with the
            *same* parts, so a library only answers queries in the
            signature space it was built in.
        id_scheme: ``"canonical"`` (default — exact orbit-minimum ids)
            or ``"digest"`` (legacy MSV-digest ids with overflow slots).

    Example:
        >>> from repro.library import build_exhaustive_library
        >>> lib = build_exhaustive_library(3)
        >>> lib.num_classes
        14
        >>> from repro import TruthTable
        >>> hit = lib.match(TruthTable.majority(3))
        >>> hit.verify(TruthTable.majority(3))
        True
    """

    def __init__(self, parts=DEFAULT_PARTS, id_scheme: str = "canonical") -> None:
        if id_scheme not in ID_SCHEMES:
            raise ValueError(
                f"unknown id scheme {id_scheme!r}; known: {', '.join(ID_SCHEMES)}"
            )
        self.parts = normalize_parts(parts)
        self.id_scheme = id_scheme
        self.classes: dict[str, NPNClassEntry] = {}
        #: Directory the transform gather tables persist under (set by
        #: :meth:`save`/:meth:`load`); ``None`` keeps them memory-only.
        self.kernel_cache_dir: Path | None = None
        #: Lazy signature-digest index: base digest id -> ordered list of
        #: candidate class ids (the matching chain).  ``None`` until the
        #: first :meth:`match_many`; kept incrementally by
        #: :meth:`add_class`, dropped on wholesale mutation.
        self._chains: dict[str, list[str]] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def num_functions(self) -> int:
        """Total functions classified into the library at build time."""
        return sum(entry.size for entry in self.classes.values())

    def arities(self) -> tuple[int, ...]:
        """Distinct variable counts covered, ascending."""
        return tuple(sorted({entry.n for entry in self.classes.values()}))

    def entries(self) -> list[NPNClassEntry]:
        """All entries in the canonical (n, class_id) order."""
        return sorted(
            self.classes.values(), key=lambda e: (e.n, e.class_id)
        )

    def stats(self) -> list[dict]:
        """Per-arity summary rows (for the CLI and reports)."""
        rows = []
        for n in self.arities():
            entries = [e for e in self.classes.values() if e.n == n]
            rows.append(
                {
                    "n": n,
                    "classes": len(entries),
                    "functions": sum(e.size for e in entries),
                    "exact_reps": sum(1 for e in entries if e.exact),
                    "largest_class": max(e.size for e in entries),
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def base_id_of(self, signature: MixedSignature) -> str:
        """The signature's digest bucket id ``n{n}-{digest}``.

        Both schemes index their matching chains under this key: it is
        the digest scheme's base class id, and the canonical scheme's
        pre-filter bucket (several canonical classes may share it when
        their orbits' signatures collide).
        """
        if signature.parts != self.parts:
            raise ValueError(
                f"signature parts {signature.parts} != library parts {self.parts}"
            )
        return f"n{signature.n}-{signature.digest()}"

    def class_id_of(self, signature: MixedSignature) -> str:
        """The stable class identity for a signature (digest scheme only).

        Canonical-scheme ids derive from exact representatives, not
        signatures — a signature maps to a *chain* of candidate classes
        there, so this raises to stop silent misuse.
        """
        if self.id_scheme != "digest":
            raise ValueError(
                "canonical-scheme class ids derive from representatives, "
                "not signatures; canonicalize the query instead "
                "(repro.canonical.form.canonical_class_id)"
            )
        return self.base_id_of(signature)

    def class_id_for(self, representative: TruthTable) -> str:
        """The id the given *canonical* representative lives under."""
        if self.id_scheme == "canonical":
            return canonical_class_id(representative)
        return self.base_id_of(compute_msv(representative, self.parts))

    def add_class(
        self,
        representative: TruthTable,
        size: int,
        exact: bool,
        class_id: str | None = None,
        canonical_rep: bool = False,
    ) -> NPNClassEntry:
        """Insert (or grow) the class of ``representative``.

        Canonical scheme: the representative is canonicalized (exact
        orbit minimum) unless ``canonical_rep`` asserts it already is —
        the batched build and learn paths canonicalize up front and skip
        the recompute — and the id *is* that form, so an explicit
        ``class_id`` must equal it.  Entries are always ``exact``.

        Digest scheme: the identity derives from the representative's
        own MSV (legal because the MSV is an NPN invariant, so any
        member yields the same id); an explicit ``class_id`` may place
        the entry in an overflow slot of its derived id (the online
        learner minting a digest-colliding orbit).  Anything else
        raises.  An existing entry absorbs the new size and keeps the
        smaller representative.
        """
        if self.id_scheme == "canonical":
            rep = (
                representative
                if canonical_rep
                else canonical_form(
                    representative, cache_dir=self.kernel_cache_dir
                )
            )
            derived = canonical_class_id(rep)
            if class_id is None:
                class_id = derived
            elif class_id != derived:
                raise ValueError(
                    f"class id {class_id!r} does not name the canonical "
                    f"representative (expected {derived!r})"
                )
            entry = NPNClassEntry.from_representative(
                class_id, rep, size, exact=True
            )
        else:
            derived = self.class_id_of(compute_msv(representative, self.parts))
            if class_id is None:
                class_id = derived
            elif not class_id_matches(class_id, derived):
                raise ValueError(
                    f"class id {class_id!r} is neither {derived!r} nor an "
                    f"overflow slot of it"
                )
            entry = NPNClassEntry.from_representative(
                class_id, representative, size, exact
            )
        existing = self.classes.get(class_id)
        if existing is not None:
            entry = _merge_entries(existing, entry)
        self.classes[class_id] = entry
        if existing is None and self._chains is not None:
            self._chain_insert(entry)
        return entry

    def merged_with(self, other: "ClassLibrary") -> "ClassLibrary":
        """Union of two libraries over the same MSV parts and id scheme.

        Shared classes sum their sizes and keep the lexicographically
        smaller representative (for exact entries both sides store the
        identical orbit minimum, so this is a no-op).

        Digest-scheme reconciliation: two libraries that independently
        minted overflow slots for *different* orbits can hold
        NPN-inequivalent classes under the same id.  Colliding entries
        with different representatives are therefore re-verified with
        the matcher — equivalent ones merge, inequivalent ones are
        re-slotted along the digest's overflow chain instead of being
        silently fused.  Canonical-scheme ids embed the representative,
        so equal ids always mean the same orbit and no matcher runs.
        """
        if other.parts != self.parts:
            raise ValueError(
                f"cannot merge libraries with different MSV parts: "
                f"{self.parts} vs {other.parts}"
            )
        if other.id_scheme != self.id_scheme:
            raise ValueError(
                f"cannot merge libraries with different id schemes: "
                f"{self.id_scheme} vs {other.id_scheme} (resave one of "
                f"them under the other's scheme first)"
            )
        merged = ClassLibrary(self.parts, self.id_scheme)
        merged.classes = dict(self.classes)
        for class_id, entry in other.classes.items():
            existing = merged.classes.get(class_id)
            if existing is None:
                merged.classes[class_id] = entry
            elif existing.representative == entry.representative:
                merged.classes[class_id] = _merge_entries(existing, entry)
            elif self.id_scheme == "canonical":
                # Canonical ids embed the representative, so one id with
                # two different tables means a corrupted side.
                raise LibraryFormatError(
                    f"class {class_id!r} carries two different canonical "
                    f"representatives — one input library is corrupted"
                )
            elif (
                find_npn_transform(
                    existing.representative, entry.representative
                )
                is not None
            ):
                merged.classes[class_id] = _merge_entries(existing, entry)
            else:
                merged._reslot(entry)
        return merged

    def subset(self, keep) -> "ClassLibrary":
        """A new library holding only the entries ``keep(entry)`` accepts.

        The distributed fabric's shard loader: a worker keeps the
        classes whose signature-digest shard key it owns on the
        consistent-hash ring (see
        :meth:`repro.fabric.ring.HashRing.shard_filter`) and drops the
        rest, so N workers hold ~1/N of the library each (times the
        replication factor).  Entries are shared by reference — they are
        frozen dataclasses — and *not* re-verified: the source library
        already verified them at load time.  ``kernel_cache_dir`` is
        inherited so the shard keeps using the on-disk gather tables.
        """
        shard = ClassLibrary(self.parts, self.id_scheme)
        shard.classes = {
            class_id: entry
            for class_id, entry in self.classes.items()
            if keep(entry)
        }
        shard.kernel_cache_dir = self.kernel_cache_dir
        return shard

    def _reslot(self, entry: NPNClassEntry) -> None:
        """Place a digest-scheme entry in the first compatible chain slot.

        Walks the overflow chain of the entry's *derived* base id: an
        occupant proven NPN-equivalent absorbs it, the first free slot
        receives it.  Used by :meth:`merged_with` when two libraries
        minted the same overflow id for different orbits.
        """
        slot = self.class_id_of(
            compute_msv(entry.representative, self.parts)
        )
        while True:
            occupant = self.classes.get(slot)
            if occupant is None:
                self.classes[slot] = replace(entry, class_id=slot)
                return
            if (
                occupant.representative == entry.representative
                or find_npn_transform(
                    occupant.representative, entry.representative
                )
                is not None
            ):
                self.classes[slot] = _merge_entries(
                    occupant, replace(entry, class_id=slot)
                )
                return
            slot = overflow_successor(slot)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def lookup(self, tt: TruthTable) -> NPNClassEntry | None:
        """The entry of ``tt``'s class (no witness transform).

        Canonical scheme: exact — ``tt`` is canonicalized and its orbit's
        id looked up directly, so a hit is a guaranteed class membership
        and a miss is a guaranteed absence.  Digest scheme: the entry
        stored under ``tt``'s signature digest, which is necessary but
        not sufficient for membership (use :meth:`match` for certainty).
        """
        if self.id_scheme == "canonical":
            rep = canonical_form(tt, cache_dir=self.kernel_cache_dir)
            return self.classes.get(canonical_class_id(rep))
        return self.classes.get(self.class_id_of(compute_msv(tt, self.parts)))

    def match(self, tt: TruthTable) -> LibraryMatch | None:
        """Resolve ``tt`` to its class and a verified witness transform.

        Returns ``None`` when no stored class shares ``tt``'s signature,
        or when the signature bucket is hit but the matcher proves the
        representative NPN-inequivalent (a signature collision between
        two exact orbits — possible because the MSV is sound but not
        exact; the miss is reported instead of a wrong class id).
        """
        return self.match_many([tt])[0]

    def match_many(
        self,
        tts: Iterable[TruthTable],
        signatures: Sequence[MixedSignature] | None = None,
    ) -> list[LibraryMatch | None]:
        """Resolve many queries in one signature pass, preserving order.

        All query signatures are computed in a single vectorized batch
        through the packed engine (arities may be mixed); the witness
        searches then run through the gather kernels with candidate
        checks batched **across queries sharing a class** — one variable
        -key pass per arity, one gather per class group — instead of a
        scalar search per query.  Representative keys are cached on the
        library, so repeated calls never recompute them.  The online
        service's coalescer calls this with ``signatures`` it already
        computed on its shared engine; leave it ``None`` to let the
        library compute them on a lazily created batched classifier
        whose signature cache persists across calls.
        """
        tts = list(tts)
        if signatures is not None:
            signatures = list(signatures)
            if len(signatures) != len(tts):
                raise ValueError(
                    f"{len(signatures)} signatures for {len(tts)} queries"
                )
        if not self.classes or not tts:
            # A library with no classes yet (empty, or all knowledge
            # still in un-replayed WAL segments) answers every query
            # with a clean miss — no signature pass, no matcher call.
            _MATCH_QUERIES.inc(len(tts), outcome="miss")
            return [None] * len(tts)
        if signatures is None:
            with obs.timed(_MATCH_PHASE_SECONDS, phase="signatures"):
                signatures = self._signature_engine().signatures(tts)
        out: list[LibraryMatch | None] = [None] * len(tts)
        # Walk each query's candidate chain — the classes indexed under
        # its signature digest — round by round: queries whose candidate
        # proves NPN-inequivalent advance to the next chain position.
        # Chains are overflow slots in slot order (digest scheme) or the
        # canonical classes sharing the digest in id order (canonical
        # scheme); either way, single-entry chains — the overwhelmingly
        # common case — finish in one grouped matcher round.
        chains = self._chain_index()
        active: dict[int, tuple[list[str], int]] = {}
        for index, signature in enumerate(signatures):
            chain = chains.get(self.base_id_of(signature))
            if chain:
                active[index] = (chain, 0)
        with obs.timed(_MATCH_PHASE_SECONDS, phase="witness"):
            while active:
                _MATCH_ROUNDS.inc()
                groups: dict[str, list[int]] = {}
                for index, (chain, position) in active.items():
                    groups.setdefault(chain[position], []).append(index)
                group_entries = [self.classes[class_id] for class_id in groups]
                witness_rows = find_npn_transforms_grouped(
                    [
                        (entry.representative, [tts[i] for i in indices])
                        for entry, indices in zip(
                            group_entries, groups.values()
                        )
                    ],
                    cache_dir=self.kernel_cache_dir,
                )
                advanced: dict[int, tuple[list[str], int]] = {}
                for entry, indices, witnesses in zip(
                    group_entries, groups.values(), witness_rows
                ):
                    for i, witness in zip(indices, witnesses):
                        if witness is not None:
                            out[i] = LibraryMatch(entry, witness)
                        else:
                            chain, position = active[i]
                            if position + 1 < len(chain):
                                advanced[i] = (chain, position + 1)
                active = advanced
        hits = sum(1 for o in out if o is not None)
        _MATCH_QUERIES.inc(hits, outcome="hit")
        _MATCH_QUERIES.inc(len(out) - hits, outcome="miss")
        return out

    # ------------------------------------------------------------------
    # Candidate-chain index
    # ------------------------------------------------------------------

    def _chain_index(self) -> dict[str, list[str]]:
        """Base digest id -> ordered candidate class ids, built lazily.

        Digest scheme: chains are read straight off the stored ids (base
        first, then overflow slots in slot order).  Canonical scheme:
        every representative's signature is recomputed — one vectorized
        batch — to group the canonical classes under their digest
        buckets, ordered by id (deterministic: the fixed-width hex sorts
        numerically).
        """
        if self._chains is None:
            chains: dict[str, list[str]] = {}
            if self.id_scheme == "digest":
                for class_id in self.classes:
                    chains.setdefault(_digest_base(class_id), []).append(
                        class_id
                    )
                for chain in chains.values():
                    chain.sort(key=_digest_slot)
            else:
                entries = self.entries()
                signatures = self._signature_engine().signatures(
                    [e.representative for e in entries]
                )
                for entry, signature in zip(entries, signatures):
                    chains.setdefault(self.base_id_of(signature), []).append(
                        entry.class_id
                    )
            self._chains = chains
        return self._chains

    def _chain_insert(self, entry: NPNClassEntry) -> None:
        """Incrementally index one new class (the learner's mint path)."""
        if self._chains is None:
            return
        if self.id_scheme == "digest":
            base = _digest_base(entry.class_id)
            key = _digest_slot
        else:
            base = self.base_id_of(
                compute_msv(entry.representative, self.parts)
            )
            key = None
        chain = self._chains.setdefault(base, [])
        chain.append(entry.class_id)
        chain.sort(key=key)

    def _signature_engine(self):
        """Shared batched classifier for bulk signature computation."""
        engine = getattr(self, "_bulk_engine", None)
        if engine is None:
            # Imported lazily: repro.engine depends on repro.core only,
            # but keeping the library importable without the engine
            # package keeps layering honest for light-weight consumers.
            from repro.engine import BatchedClassifier

            engine = BatchedClassifier(self.parts)
            self._bulk_engine = engine
        return engine

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write ``manifest.json`` + ``classes.npz`` under directory ``path``.

        Deterministic: the same library content produces byte-identical
        files on every run and platform (classes sorted by
        ``(n, class_id)``, canonical JSON, fixed zip timestamps).
        """
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        entries = self.entries()
        manifest = {
            "format": FORMAT_NAME,
            # Digest-scheme libraries keep writing the legacy version-1
            # manifest (no id_scheme field) so their artifacts stay
            # byte-identical to pre-canonical builds.
            "version": (
                FORMAT_VERSION
                if self.id_scheme == "canonical"
                else DIGEST_FORMAT_VERSION
            ),
            "parts": list(self.parts),
            "num_classes": len(entries),
            "num_functions": self.num_functions,
            "classes": [
                {
                    "id": e.class_id,
                    "n": e.n,
                    "size": e.size,
                    "exact": e.exact,
                    "representative": e.representative.to_hex(),
                    "count": e.count,
                    "influences": list(e.influences),
                }
                for e in entries
            ],
        }
        if self.id_scheme == "canonical":
            manifest["id_scheme"] = self.id_scheme
        (directory / MANIFEST_FILE).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        words = max(
            (bitops.words_per_table(e.n) for e in entries), default=1
        )
        reps = np.zeros((len(entries), words), dtype=np.uint64)
        for row, e in enumerate(entries):
            bits = e.representative.bits
            for w in range(bitops.words_per_table(e.n)):
                reps[row, w] = (bits >> (64 * w)) & 0xFFFFFFFFFFFFFFFF
        _write_npz_deterministic(
            directory / TABLES_FILE,
            {
                "ns": np.array([e.n for e in entries], dtype=np.int64),
                "sizes": np.array([e.size for e in entries], dtype=np.int64),
                "exact": np.array([e.exact for e in entries], dtype=np.uint8),
                "reps": reps,
            },
        )
        # Transform gather tables persist lazily next to the artifact:
        # nothing is written until a match actually builds one.
        self.kernel_cache_dir = directory / "kernels"
        return directory

    @classmethod
    def load(
        cls,
        path: str | Path,
        verify: bool = True,
        mmap_mode: str | None = None,
    ) -> "ClassLibrary":
        """Read a saved library, validating format, version and integrity.

        Both manifest versions load: version 2 carries its ``id_scheme``
        explicitly, version 1 (the pre-canonical format) is a digest
        -scheme library — the migration path that keeps old artifacts
        readable.  With ``verify`` (the default) every class id is
        re-derived from its representative and cross-checked against
        both files, so a corrupted or hand-edited artifact raises
        :class:`LibraryFormatError` instead of mis-matching queries:
        digest ids recompute the representative's signature (overflow
        ids ``n{n}-{digest}-{k}`` pass when their base id matches),
        canonical ids recompute the representative's exact canonical
        form — batched per arity — and require the stored table to *be*
        that form.

        ``mmap_mode="r"`` (or ``"c"``) memory-maps the ``classes.npz``
        table arrays instead of reading them into anonymous memory —
        the members are STORED (uncompressed) in a deterministic layout,
        so every array is a page-aligned :class:`numpy.memmap` straight
        into the artifact.  N serving replicas on one box then share one
        page-cache copy of the library image instead of N heap copies,
        and pages load on demand.  Falls back to an eager read for
        archives whose members turn out compressed or foreign.
        """
        if mmap_mode not in (None, "r", "c"):
            raise ValueError(
                f"mmap_mode must be None, 'r' or 'c', got {mmap_mode!r}"
            )
        directory = Path(path)
        manifest = _read_manifest(directory / MANIFEST_FILE)
        arrays = _read_tables(directory / TABLES_FILE, mmap_mode)
        records = manifest["classes"]
        if not (
            len(records)
            == manifest["num_classes"]
            == len(arrays["ns"])
            == len(arrays["sizes"])
            == len(arrays["reps"])
            == len(arrays["exact"])
        ):
            raise LibraryFormatError(
                f"{directory}: manifest and {TABLES_FILE} disagree on the "
                f"number of classes"
            )
        if int(manifest["version"]) == DIGEST_FORMAT_VERSION:
            id_scheme = "digest"
        else:
            id_scheme = manifest.get("id_scheme")
            if id_scheme not in ID_SCHEMES:
                raise LibraryFormatError(
                    f"{directory}: version-{FORMAT_VERSION} manifest carries "
                    f"unknown id scheme {id_scheme!r}"
                )
        try:
            library = cls(manifest["parts"], id_scheme)
        except (ValueError, TypeError) as exc:
            raise LibraryFormatError(
                f"{directory}: manifest parts are invalid: {exc}"
            ) from exc
        for row, record in enumerate(records):
            n = int(arrays["ns"][row])
            bits = 0
            for w in range(bitops.words_per_table(n)):
                bits |= int(arrays["reps"][row][w]) << (64 * w)
            rep = TruthTable(n, bits)
            entry = NPNClassEntry.from_representative(
                record["id"], rep, int(arrays["sizes"][row]),
                bool(arrays["exact"][row]),
            )
            _check_record(directory, record, entry)
            if verify:
                if id_scheme == "canonical":
                    if parse_canonical_class_id(entry.class_id) != rep:
                        raise LibraryFormatError(
                            f"{directory}: class {entry.class_id!r} does not "
                            f"name its stored representative "
                            f"{rep.to_hex()!r} — the artifact is corrupted"
                        )
                else:
                    derived = library.class_id_of(
                        compute_msv(rep, library.parts)
                    )
                    if not class_id_matches(entry.class_id, derived):
                        raise LibraryFormatError(
                            f"{directory}: class {entry.class_id!r} fails its "
                            f"signature check (recomputed {derived!r}) — the "
                            f"artifact is corrupted or was produced by an "
                            f"incompatible signature implementation"
                        )
            if entry.class_id in library.classes:
                raise LibraryFormatError(
                    f"{directory}: duplicate class id {entry.class_id!r}"
                )
            library.classes[entry.class_id] = entry
        if verify and id_scheme == "canonical":
            _verify_canonical_reps(directory, library)
        library.kernel_cache_dir = directory / "kernels"
        return library


def _merge_entries(a: NPNClassEntry, b: NPNClassEntry) -> NPNClassEntry:
    """Combine two entries of the same class id: sum sizes, min rep."""
    base = a if (a.representative, not a.exact) <= (b.representative, not b.exact) else b
    return replace(base, size=a.size + b.size)


def _verify_canonical_reps(directory: Path, library: ClassLibrary) -> None:
    """Check every stored representative is its own canonical form.

    The per-record check already ties each id to its table; this ties
    the table to the *orbit* — a tampered representative cannot smuggle
    a wrong table in under a self-consistent id.  Arities the kernels
    serve verify as one batched ``canonical_min`` per arity; larger ones
    go through the scalar canonicalizer.
    """
    by_arity: dict[int, list[NPNClassEntry]] = {}
    for entry in library.classes.values():
        by_arity.setdefault(entry.n, []).append(entry)
    for n, entries in sorted(by_arity.items()):
        if n <= MAX_KERNEL_VARS:
            minima = canonical_min(
                [e.representative.bits for e in entries], n
            )
            bad = [
                e
                for e, low in zip(entries, minima)
                if e.representative.bits != int(low)
            ]
        else:
            bad = [
                e
                for e in entries
                if canonical_form(e.representative) != e.representative
            ]
        if bad:
            raise LibraryFormatError(
                f"{directory}: class {bad[0].class_id!r} stores a "
                f"non-canonical representative (not its orbit minimum) — "
                f"the artifact is corrupted or was produced by an "
                f"incompatible canonicalizer"
            )


def _read_manifest(path: Path) -> dict:
    if not path.exists():
        raise LibraryFormatError(f"{path}: library manifest not found")
    try:
        manifest = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise LibraryFormatError(f"{path}: manifest is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
        raise LibraryFormatError(
            f"{path}: not a {FORMAT_NAME} manifest "
            f"(format={manifest.get('format') if isinstance(manifest, dict) else None!r})"
        )
    version = manifest.get("version")
    if version not in (DIGEST_FORMAT_VERSION, FORMAT_VERSION):
        raise LibraryFormatError(
            f"{path}: unsupported library format version {version!r} "
            f"(this build reads versions {DIGEST_FORMAT_VERSION} "
            f"and {FORMAT_VERSION})"
        )
    for field in ("parts", "num_classes", "classes"):
        if field not in manifest:
            raise LibraryFormatError(f"{path}: manifest is missing {field!r}")
    return manifest


def _read_tables(
    path: Path, mmap_mode: str | None = None
) -> dict[str, np.ndarray]:
    if not path.exists():
        raise LibraryFormatError(f"{path}: library table file not found")
    if mmap_mode is not None:
        arrays = _mmap_tables(path, mmap_mode)
        if arrays is not None:
            return arrays
        # Structural surprise (compressed member, foreign npy version):
        # the eager path below still reads it — or raises the proper
        # LibraryFormatError if the archive is actually corrupt.
    try:
        with np.load(path) as data:
            arrays = {name: data[name] for name in ("ns", "sizes", "exact", "reps")}
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        raise LibraryFormatError(f"{path}: cannot read table arrays: {exc}") from exc
    return arrays


def _mmap_tables(path: Path, mmap_mode: str) -> dict[str, np.ndarray] | None:
    """Memory-map every table array of a STORED ``.npz``, or ``None``.

    ``np.load(..., mmap_mode=...)`` refuses zip archives, but this
    archive is written by :func:`_write_npz_deterministic` with STORED
    (uncompressed) members, so each member's npy payload sits at a fixed
    file offset: local zip header (30 bytes + name + extra), then the
    npy magic/header, then raw array bytes ``np.memmap`` can map
    directly.  Returns ``None`` — never raises — on any layout this
    parser does not recognise, letting the caller fall back to
    ``np.load``.
    """
    arrays: dict[str, np.ndarray] = {}
    try:
        with zipfile.ZipFile(path) as archive, open(path, "rb") as handle:
            for name in ("ns", "sizes", "exact", "reps"):
                info = archive.getinfo(f"{name}.npy")
                if info.compress_type != zipfile.ZIP_STORED:
                    return None
                handle.seek(info.header_offset)
                local = handle.read(30)
                if len(local) != 30 or local[:4] != b"PK\x03\x04":
                    return None
                name_len = int.from_bytes(local[26:28], "little")
                extra_len = int.from_bytes(local[28:30], "little")
                handle.seek(info.header_offset + 30 + name_len + extra_len)
                version = np.lib.format.read_magic(handle)
                if version == (1, 0):
                    header = np.lib.format.read_array_header_1_0(handle)
                elif version == (2, 0):
                    header = np.lib.format.read_array_header_2_0(handle)
                else:
                    return None
                shape, fortran_order, dtype = header
                if fortran_order or dtype.hasobject:
                    return None
                arrays[name] = np.memmap(
                    path,
                    dtype=dtype,
                    mode=mmap_mode,
                    offset=handle.tell(),
                    shape=shape,
                )
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        return None
    return arrays


def _check_record(directory: Path, record: dict, entry: NPNClassEntry) -> None:
    """Cross-check one manifest record against the npz-derived entry."""
    stored = (
        record.get("id"),
        record.get("n"),
        record.get("size"),
        bool(record.get("exact")),
        record.get("representative"),
    )
    derived = (
        entry.class_id,
        entry.n,
        entry.size,
        entry.exact,
        entry.representative.to_hex(),
    )
    if stored != derived:
        raise LibraryFormatError(
            f"{directory}: manifest record {record.get('id')!r} disagrees "
            f"with {TABLES_FILE} ({stored} != {derived})"
        )


def _write_npz_deterministic(path: Path, arrays: dict[str, np.ndarray]) -> None:
    """``np.savez`` with reproducible bytes (fixed entry order and dates).

    ``np.savez`` stamps zip entries with the current time, which would
    make otherwise-identical libraries differ byte-for-byte between
    runs; the regression suite pins byte stability, so the archive is
    assembled by hand with the epoch timestamp.  ``np.load`` reads it
    like any other ``.npz``.
    """
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        for name in sorted(arrays):
            info = zipfile.ZipInfo(f"{name}.npy", date_time=(1980, 1, 1, 0, 0, 0))
            with archive.open(info, "w") as handle:
                np.lib.format.write_array(
                    handle, np.ascontiguousarray(arrays[name])
                )
