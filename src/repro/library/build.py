"""Building class libraries from classification results and corpora.

Representative election — the rule that fixes each class's canonical
table — depends on the arity:

* ``n <= EXACT_REP_MAX_VARS`` (4): the representative is the *exhaustive
  orbit minimum* (:func:`repro.baselines.exact_enum.exact_npn_canonical`
  on any bucket member).  At n=4 the orbit has at most 768 images, so
  this costs microseconds per class and makes the representative a pure
  function of the class — independent of which members were observed.
* ``n >= 5``: enumerating ``2^(n+1) n!`` images per class is the exact
  cost the paper's signature approach avoids, so the representative is
  *elected*: the lexicographically smallest observed member of the
  signature bucket.  Deterministic for a fixed corpus (the golden
  regression corpus pins it), and stable under merges because
  :meth:`ClassLibrary.merged_with` keeps the smaller representative.

Builders accept a ready :class:`~repro.core.classifier.ClassificationResult`
from *any* engine — per-function, batched or sharded all produce
byte-identical buckets, so the resulting library is engine-independent.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.baselines.exact_enum import exact_npn_canonical
from repro.core.classifier import ClassificationResult
from repro.core.msv import DEFAULT_PARTS
from repro.core.truth_table import TruthTable
from repro.library.store import ClassLibrary
from repro.workloads.library_corpus import exhaustive_tables

__all__ = [
    "EXACT_REP_MAX_VARS",
    "build_library",
    "library_from_result",
    "build_exhaustive_library",
    "elect_representative",
]

#: Largest arity whose representatives are exhaustive orbit minima.
EXACT_REP_MAX_VARS = 4


def elect_representative(members: list[TruthTable]) -> tuple[TruthTable, bool]:
    """Canonical representative of one signature bucket (see module doc).

    Returns ``(representative, exact)`` where ``exact`` records whether
    the representative is the orbit minimum or an elected member.
    """
    if not members:
        raise ValueError("cannot elect a representative from an empty bucket")
    n = members[0].n
    if n <= EXACT_REP_MAX_VARS:
        return exact_npn_canonical(members[0]).representative, True
    return min(members), False


def library_from_result(result: ClassificationResult) -> ClassLibrary:
    """Build a library from any engine's classification result.

    Every signature bucket becomes one class; bucket membership only
    influences elected (n >= 5) representatives, never exact ones.
    """
    library = ClassLibrary(result.parts)
    for members in result.groups.values():
        representative, exact = elect_representative(members)
        library.add_class(representative, size=len(members), exact=exact)
    return library


def build_library(
    tables: Iterable[TruthTable],
    parts=DEFAULT_PARTS,
    engine: str = "batched",
    workers: int | None = None,
) -> ClassLibrary:
    """Classify ``tables`` with the chosen engine and build a library."""
    from repro.engine import make_classifier

    classifier = make_classifier(engine, parts=parts, workers=workers)
    return library_from_result(classifier.classify(list(tables)))


def build_exhaustive_library(
    n: int,
    parts=DEFAULT_PARTS,
    engine: str = "batched",
    workers: int | None = None,
) -> ClassLibrary:
    """Library over *all* ``2^(2^n)`` functions of ``n`` variables (n <= 4).

    The complete signature-class inventory of the arity; at n = 4 this is
    the classical 222 NPN classes.
    """
    return build_library(
        exhaustive_tables(n), parts=parts, engine=engine, workers=workers
    )
