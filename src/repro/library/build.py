"""Building class libraries from classification results and corpora.

Representative election — the rule that fixes each class's canonical
table — depends on the arity:

* ``n <= EXACT_REP_MAX_VARS`` (4): the representative is the *exhaustive
  orbit minimum* — computed through the batched
  :func:`repro.kernels.canonical_min` gather kernel (byte-identical to
  :func:`repro.baselines.exact_enum.exact_npn_canonical`, which remains
  the oracle the tests compare against).  At n=4 the orbit has at most
  768 images, so this costs microseconds per class and makes the
  representative a pure function of the class — independent of which
  members were observed; :func:`library_from_result` additionally
  batches the minima of *all* buckets of an arity into single kernel
  calls.
* ``n >= 5``: enumerating ``2^(n+1) n!`` images per class is the exact
  cost the paper's signature approach avoids, so the representative is
  *elected*: the lexicographically smallest observed member of the
  signature bucket.  Deterministic for a fixed corpus (the golden
  regression corpus pins it), and stable under merges because
  :meth:`ClassLibrary.merged_with` keeps the smaller representative.

Builders accept a ready :class:`~repro.core.classifier.ClassificationResult`
from *any* engine — per-function, batched or sharded all produce
byte-identical buckets, so the resulting library is engine-independent.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.classifier import ClassificationResult
from repro.core.msv import DEFAULT_PARTS
from repro.core.truth_table import TruthTable
from repro.kernels import canonical_min, canonical_min_table
from repro.library.store import ClassLibrary
from repro.workloads.library_corpus import exhaustive_tables

__all__ = [
    "EXACT_REP_MAX_VARS",
    "build_library",
    "library_from_result",
    "build_exhaustive_library",
    "elect_representative",
]

#: Largest arity whose representatives are exhaustive orbit minima.
EXACT_REP_MAX_VARS = 4


def elect_representative(members: list[TruthTable]) -> tuple[TruthTable, bool]:
    """Canonical representative of one signature bucket (see module doc).

    Returns ``(representative, exact)`` where ``exact`` records whether
    the representative is the orbit minimum or an elected member.
    """
    if not members:
        raise ValueError("cannot elect a representative from an empty bucket")
    n = members[0].n
    if n <= EXACT_REP_MAX_VARS:
        return canonical_min_table(members[0]), True
    return min(members), False


def library_from_result(result: ClassificationResult) -> ClassLibrary:
    """Build a library from any engine's classification result.

    Every signature bucket becomes one class; bucket membership only
    influences elected (n >= 5) representatives, never exact ones.
    Exact (n <= 4) representatives are computed as *batched* canonical
    minima — one :func:`repro.kernels.canonical_min` call per arity over
    the first member of every bucket.
    """
    library = ClassLibrary(result.parts)
    buckets = list(result.groups.values())
    exact_by_n: dict[int, list[int]] = {}
    for index, members in enumerate(buckets):
        if members and members[0].n <= EXACT_REP_MAX_VARS:
            exact_by_n.setdefault(members[0].n, []).append(index)
    exact_reps: dict[int, TruthTable] = {}
    for n, bucket_indices in exact_by_n.items():
        minima = canonical_min([buckets[i][0] for i in bucket_indices])
        for i, bits in zip(bucket_indices, minima):
            exact_reps[i] = TruthTable(n, int(bits))
    for index, members in enumerate(buckets):
        if index in exact_reps:
            library.add_class(
                exact_reps[index], size=len(members), exact=True
            )
        else:
            representative, exact = elect_representative(members)
            library.add_class(representative, size=len(members), exact=exact)
    return library


def build_library(
    tables: Iterable[TruthTable],
    parts=DEFAULT_PARTS,
    engine: str = "batched",
    workers: int | None = None,
    transport: str | None = None,
) -> ClassLibrary:
    """Classify ``tables`` with the chosen engine and build a library."""
    from repro.engine import make_classifier

    classifier = make_classifier(
        engine, parts=parts, workers=workers, transport=transport
    )
    return library_from_result(classifier.classify(list(tables)))


def build_exhaustive_library(
    n: int,
    parts=DEFAULT_PARTS,
    engine: str = "batched",
    workers: int | None = None,
) -> ClassLibrary:
    """Library over *all* ``2^(2^n)`` functions of ``n`` variables (n <= 4).

    The complete signature-class inventory of the arity; at n = 4 this is
    the classical 222 NPN classes.
    """
    return build_library(
        exhaustive_tables(n), parts=parts, engine=engine, workers=workers
    )
