"""Building class libraries from classification results and corpora.

Under the default **canonical** id scheme every class representative is
the *exact orbit minimum* at every arity — computed through the batched
:func:`repro.canonical.form.canonical_forms` path (``canonical_min``
gather kernels for ``n <= 6``, the influence-guided scalar search
above), one call per arity over the first member of every bucket.  The
class id is a pure function of the orbit (``n{n}-c{hex}``), so two
independently built libraries mint identical ids for the same orbit.
Results from the :class:`~repro.canonical.engine.CanonicalClassifier`
already carry canonical representatives as their group keys; those are
reused without recomputation.

The legacy **digest** scheme keeps its original election rule:

* ``n <= EXACT_REP_MAX_VARS`` (4): exhaustive orbit minima;
* ``n >= 5``: the lexicographically smallest observed member of the
  signature bucket — deterministic for a fixed corpus, stable under
  merges because :meth:`ClassLibrary.merged_with` keeps the smaller
  representative.

Builders accept a ready :class:`~repro.core.classifier.ClassificationResult`
from *any* engine — per-function, batched, sharded and canonical all
produce consistent buckets, so the resulting library is
engine-independent.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.canonical.form import canonical_forms
from repro.core.classifier import ClassificationResult
from repro.core.msv import DEFAULT_PARTS
from repro.core.truth_table import TruthTable
from repro.kernels import canonical_min, canonical_min_table
from repro.library.store import ClassLibrary
from repro.workloads.library_corpus import exhaustive_tables

__all__ = [
    "EXACT_REP_MAX_VARS",
    "build_library",
    "library_from_result",
    "build_exhaustive_library",
    "elect_representative",
]

#: Largest arity whose digest-scheme representatives are exhaustive
#: orbit minima (canonical-scheme representatives are exact at *every*
#: arity).
EXACT_REP_MAX_VARS = 4


def elect_representative(members: list[TruthTable]) -> tuple[TruthTable, bool]:
    """Digest-scheme representative of one signature bucket (see module doc).

    Returns ``(representative, exact)`` where ``exact`` records whether
    the representative is the orbit minimum or an elected member.
    """
    if not members:
        raise ValueError("cannot elect a representative from an empty bucket")
    n = members[0].n
    if n <= EXACT_REP_MAX_VARS:
        return canonical_min_table(members[0]), True
    return min(members), False


def library_from_result(
    result: ClassificationResult, id_scheme: str = "canonical"
) -> ClassLibrary:
    """Build a library from any engine's classification result.

    Every bucket becomes one class.  Canonical scheme: each bucket's
    first member is canonicalized — batched per arity — unless the
    result already carries canonical keys (the canonical engine), which
    are trusted as-is.  Digest scheme: the legacy election rule.
    """
    library = ClassLibrary(result.parts, id_scheme)
    buckets = list(result.groups.values())
    if id_scheme == "canonical":
        keys = list(result.groups.keys())
        reps: dict[int, TruthTable] = {}
        pending_by_n: dict[int, list[int]] = {}
        for index, key in enumerate(keys):
            table = getattr(key, "table", None)
            if isinstance(table, TruthTable):
                # CanonicalClass keys *are* the exact representatives.
                reps[index] = table
            else:
                first = buckets[index][0]
                pending_by_n.setdefault(first.n, []).append(index)
        for n, bucket_indices in pending_by_n.items():
            forms = canonical_forms(
                [buckets[i][0] for i in bucket_indices],
                n,
                cache_dir=library.kernel_cache_dir,
            )
            for i, rep in zip(bucket_indices, forms):
                reps[i] = rep
        for index, members in enumerate(buckets):
            library.add_class(
                reps[index],
                size=len(members),
                exact=True,
                canonical_rep=True,
            )
        return library
    exact_by_n: dict[int, list[int]] = {}
    for index, members in enumerate(buckets):
        if members and members[0].n <= EXACT_REP_MAX_VARS:
            exact_by_n.setdefault(members[0].n, []).append(index)
    exact_reps: dict[int, TruthTable] = {}
    for n, bucket_indices in exact_by_n.items():
        minima = canonical_min([buckets[i][0] for i in bucket_indices])
        for i, bits in zip(bucket_indices, minima):
            exact_reps[i] = TruthTable(n, int(bits))
    for index, members in enumerate(buckets):
        if index in exact_reps:
            library.add_class(
                exact_reps[index], size=len(members), exact=True
            )
        else:
            representative, exact = elect_representative(members)
            library.add_class(representative, size=len(members), exact=exact)
    return library


def build_library(
    tables: Iterable[TruthTable],
    parts=DEFAULT_PARTS,
    engine: str = "batched",
    workers: int | None = None,
    transport: str | None = None,
    id_scheme: str = "canonical",
) -> ClassLibrary:
    """Classify ``tables`` with the chosen engine and build a library."""
    from repro.engine import make_classifier

    classifier = make_classifier(
        engine, parts=parts, workers=workers, transport=transport
    )
    return library_from_result(
        classifier.classify(list(tables)), id_scheme=id_scheme
    )


def build_exhaustive_library(
    n: int,
    parts=DEFAULT_PARTS,
    engine: str = "batched",
    workers: int | None = None,
    id_scheme: str = "canonical",
) -> ClassLibrary:
    """Library over *all* ``2^(2^n)`` functions of ``n`` variables (n <= 4).

    The complete class inventory of the arity; at n = 4 this is the
    classical 222 NPN classes.
    """
    return build_library(
        exhaustive_tables(n),
        parts=parts,
        engine=engine,
        workers=workers,
        id_scheme=id_scheme,
    )
