"""Learn-on-miss: grow a class library from served traffic.

A one-shot library answers the queries its build corpus anticipated and
throws everything else away as a miss.  :class:`LearningLibrary` turns
the library into a living artifact: a query matching no stored class is
classified, minted as a new class (id derived exactly like built
classes — the canonical form under the canonical scheme, the signature
digest under the legacy digest scheme), and appended to a write-ahead
segment (:mod:`repro.library.wal`) so the knowledge survives a crash
without rewriting the manifest+npz image per miss.

Lifecycle::

    open()     claim the learner lock (wal/LOCK), load manifest+npz (if
               present), replay WAL segments — tolerating a torn final
               record — into memory
    learn()    miss -> probe overflow chain -> elect representative ->
               add_class -> WAL append
    compact()  rewrite manifest+npz from the in-memory state, delete
               the segments it absorbed (lock stays held)
    close()    seal the active segment and release the learner lock

Compaction runs in three situations: the serving drain hook
(:meth:`repro.service.coalescer.Coalescer.stop`), the explicit
``repro-npn library compact`` command, and automatically when the
active segment crosses ``segment_bytes``.  It is **byte-deterministic
for a fixed record set**: records merge by class id with summed sizes
and minimum representatives — an order-independent fold — and
:meth:`ClassLibrary.save` already writes canonical bytes, so any
arrival order, segmentation, or crash/replay history of the same
records compacts to the identical image.

Minting keeps the library's representative contract.  Canonical scheme:
the minted representative is the exact orbit minimum at every arity and
the id is ``n{n}-c{hex}`` — a pure function of the orbit, so the
overflow machinery below is structurally unreachable (ids cannot
collide).  Digest scheme (legacy): at ``n <= EXACT_REP_MAX_VARS`` the
representative is the exhaustive orbit minimum, above it the query
itself is elected, and digest-colliding orbits land in overflow slots.
Either way the returned :class:`LibraryMatch` carries a verified
witness, so a learned answer is exactly as trustworthy as a built one.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.baselines.matcher import find_npn_transform
from repro.canonical.form import canonical_class_id, canonical_form
from repro.core.msv import DEFAULT_PARTS, MixedSignature, compute_msv
from repro.core.truth_table import TruthTable
from repro.library.build import elect_representative
from repro.library.store import (
    ClassLibrary,
    LibraryMatch,
    MANIFEST_FILE,
    overflow_successor,
)
from repro.library.wal import (
    SegmentWriter,
    WalError,
    acquire_learner_lock,
    list_segments,
    release_learner_lock,
    replay_segment,
    segment_path,
)

__all__ = [
    "LearningLibrary",
    "CompactionResult",
    "DEFAULT_SEGMENT_BYTES",
]

#: Active-segment size that trips an automatic compaction.
DEFAULT_SEGMENT_BYTES = 1 << 20

#: Record fields every WAL entry must carry.
_RECORD_FIELDS = ("class_id", "n", "representative", "size", "exact")

_REG = obs.registry()
_MINTED = _REG.counter(
    "repro_library_classes_minted_total",
    "Classes minted by learn-on-miss, split base vs. overflow slot.",
    labels=("slot",),
)
_COMPACTIONS = _REG.counter(
    "repro_library_compactions_total",
    "WAL-into-image compactions (no-op calls excluded).",
)
_COMPACTION_SECONDS = _REG.histogram(
    "repro_library_compaction_seconds",
    "Wall-clock time of one WAL compaction (image save + segment unlink).",
)


@dataclass(frozen=True)
class CompactionResult:
    """What one :meth:`LearningLibrary.compact` call did.

    Attributes:
        merged_records: WAL records absorbed into the image.
        removed_segments: segment files deleted after the merge.
        num_classes: classes in the compacted image.
        path: directory of the rewritten image (``None`` for a no-op).
    """

    merged_records: int
    removed_segments: int
    num_classes: int
    path: Path | None


class LearningLibrary:
    """A :class:`ClassLibrary` plus the write-ahead state that grows it.

    Args:
        library: the in-memory library (already containing any replayed
            classes — use :meth:`open` unless you are testing).
        directory: the library directory; segments live in its ``wal/``
            subdirectory and compaction rewrites its image in place.
        segment_bytes: active-segment size tripping auto-compaction.
        fsync: WAL durability policy (:data:`repro.library.wal.FSYNC_POLICIES`).
    """

    def __init__(
        self,
        library: ClassLibrary,
        directory: str | Path,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: str = "close",
    ) -> None:
        if segment_bytes < 1:
            raise ValueError(f"segment_bytes must be >= 1, got {segment_bytes}")
        self.library = library
        self.directory = Path(directory)
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        #: Classes minted by :meth:`learn` over this instance's lifetime.
        self.minted = 0
        #: Misses whose signature digest collided with one or more
        #: stored, NPN-inequivalent classes; each is minted into an
        #: overflow slot (counted in :attr:`overflow_minted` too).
        #: Digest scheme only — canonical ids cannot collide.
        self.collisions = 0
        #: Subset of :attr:`minted` that landed in overflow slots.
        self.overflow_minted = 0
        #: WAL records not yet absorbed by a compaction (replayed + new).
        self.pending_records = 0
        #: Compactions performed (drain, explicit, or threshold-tripped).
        self.compactions = 0
        self._writer: SegmentWriter | None = None

    # ------------------------------------------------------------------
    # Opening and replay
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str | Path,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: str = "close",
        create: bool = False,
        parts=DEFAULT_PARTS,
        id_scheme: str = "canonical",
    ) -> "LearningLibrary":
        """Load the image (if any) and replay every WAL segment.

        With ``create``, a directory holding no image yet starts from an
        empty library over ``parts`` and ``id_scheme`` — the segment-only
        crash case and the grow-from-nothing case (an existing image
        keeps its own persisted scheme).  Without it, a missing image
        raises like :meth:`ClassLibrary.load`.  Torn final records are
        truncated away by the replay, never re-served.

        Opening claims the directory's learner lock (``wal/LOCK``): a
        second live process opening the same library raises
        :class:`~repro.library.wal.LibraryLockedError` instead of racing
        the first on segment creation mid-request.  The lock is released
        by :meth:`close` (or taken over after a crash — see
        :func:`~repro.library.wal.acquire_learner_lock`).
        """
        directory = Path(directory)
        acquire_learner_lock(directory)
        try:
            if (directory / MANIFEST_FILE).exists() or not create:
                library = ClassLibrary.load(directory)
            else:
                library = ClassLibrary(parts, id_scheme=id_scheme)
                library.kernel_cache_dir = directory / "kernels"
            learner = cls(
                library, directory, segment_bytes=segment_bytes, fsync=fsync
            )
            learner._replay()
        except BaseException:
            release_learner_lock(directory)
            raise
        return learner

    def _replay(self) -> None:
        """Apply every segment's intact records to the in-memory library."""
        for path in list_segments(self.directory):
            replay = replay_segment(path)
            for record in replay.records:
                self._apply_record(record, path)
            self.pending_records += len(replay.records)

    def _apply_record(self, record: dict, path: Path) -> None:
        """Validate one WAL record and fold it into the library."""
        if any(field not in record for field in _RECORD_FIELDS):
            missing = [f for f in _RECORD_FIELDS if f not in record]
            raise WalError(f"{path}: record is missing fields {missing}")
        try:
            representative = TruthTable.from_hex(
                int(record["n"]), record["representative"]
            )
            size = int(record["size"])
        except (ValueError, TypeError) as exc:
            raise WalError(f"{path}: bad record {record!r}: {exc}") from exc
        if size < 1:
            raise WalError(f"{path}: record size must be >= 1, got {size}")
        try:
            # The record's explicit id is honoured (overflow slots must
            # replay into their slot); add_class validates it against
            # the representative's derived id.
            self.library.add_class(
                representative,
                size=size,
                exact=bool(record["exact"]),
                class_id=str(record["class_id"]),
            )
        except ValueError as exc:
            raise WalError(
                f"{path}: record class id {record['class_id']!r} fails its "
                f"identity check ({exc}) — the segment is corrupted or was "
                f"produced by an incompatible implementation"
            ) from exc

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------

    def learn(
        self, tt: TruthTable, signature: MixedSignature | None = None
    ) -> LibraryMatch | None:
        """Mint (or resolve) the class of a query that missed the library.

        Call this only after :meth:`ClassLibrary.match` returned ``None``.

        Canonical scheme: the query is canonicalized — its orbit's id is
        then an exact key.  A stored entry under that id (a duplicate
        miss inside one coalescer batch, racing the mint) resolves to
        the existing class; otherwise the class is minted under its
        canonical id and WAL-logged.  Digest collisions cannot happen:
        two colliding misses in one batch mint two *different* ids, so
        no verification-by-digest ever decides an answer.

        Digest scheme (legacy): the digest's overflow chain is probed
        slot by slot, each occupant re-verified with the matcher — never
        trusted on digest equality alone — so a batch carrying two
        digest-colliding misses records the second under a fresh
        overflow slot (``n{n}-{digest}-1``, ``-2``, …) instead of fusing
        it into the first.  :attr:`collisions` and
        :attr:`overflow_minted` count such mints.

        Either way the reply carries a matcher-verified witness.
        """
        if self.library.id_scheme == "canonical":
            representative = canonical_form(
                tt, cache_dir=self.library.kernel_cache_dir
            )
            class_id = canonical_class_id(representative)
            existing = self.library.classes.get(class_id)
            if existing is not None:
                witness = find_npn_transform(existing.representative, tt)
                if witness is None:  # pragma: no cover - canonical id broken
                    raise WalError(
                        f"stored class {class_id!r} has no transform onto "
                        f"its own orbit member {tt!r}"
                    )
                return LibraryMatch(existing, witness)
            exact = True
            entry = self.library.add_class(
                representative,
                size=1,
                exact=True,
                class_id=class_id,
                canonical_rep=True,
            )
            overflow = False
        else:
            if signature is None:
                signature = compute_msv(tt, self.library.parts)
            base = self.library.class_id_of(signature)
            slot = base
            while True:
                existing = self.library.classes.get(slot)
                if existing is None:
                    break
                witness = find_npn_transform(existing.representative, tt)
                if witness is not None:
                    return LibraryMatch(existing, witness)
                slot = overflow_successor(slot)
            overflow = slot != base
            representative, exact = elect_representative([tt])
            entry = self.library.add_class(
                representative, size=1, exact=exact, class_id=slot
            )
        witness = find_npn_transform(entry.representative, tt)
        if witness is None:  # pragma: no cover - election produced non-member
            raise WalError(
                f"minted representative {entry.representative!r} has no "
                f"transform onto its own class member {tt!r}"
            )
        self._append(
            {
                "class_id": entry.class_id,
                "n": entry.n,
                "representative": entry.representative.to_hex(),
                "size": 1,
                "exact": exact,
            }
        )
        self.minted += 1
        _MINTED.inc(slot="overflow" if overflow else "base")
        if overflow:
            self.collisions += 1
            self.overflow_minted += 1
        return LibraryMatch(entry, witness)

    def _append(self, record: dict) -> None:
        """Write one record, compacting when the segment threshold trips."""
        if self._writer is None or self._writer.closed:
            self._writer = SegmentWriter(
                self._next_segment_path(), fsync=self.fsync
            )
        size = self._writer.append(record)
        self.pending_records += 1
        if size >= self.segment_bytes:
            self.compact()

    def _next_segment_path(self) -> Path:
        existing = list_segments(self.directory)
        if not existing:
            return segment_path(self.directory, 0)
        last = max(int(p.stem.rsplit("-", 1)[1]) for p in existing)
        return segment_path(self.directory, last + 1)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self) -> CompactionResult:
        """Merge WAL segments into the manifest+npz image, then delete them.

        A no-op (nothing rewritten, nothing deleted) when no records are
        pending and no segment files exist.  Otherwise the in-memory
        library — base image plus every replayed and live-minted record,
        an order-independent fold — is saved, which is why the resulting
        bytes depend only on the record set.
        """
        self.close_segment()
        segments = list_segments(self.directory)
        if not segments and self.pending_records == 0:
            return CompactionResult(0, 0, self.library.num_classes, None)
        with obs.timed(_COMPACTION_SECONDS):
            path = self.library.save(self.directory)
            for segment in segments:
                segment.unlink()
        merged = self.pending_records
        self.pending_records = 0
        self.compactions += 1
        _COMPACTIONS.inc()
        return CompactionResult(
            merged_records=merged,
            removed_segments=len(segments),
            num_classes=self.library.num_classes,
            path=path,
        )

    def close_segment(self) -> None:
        """Seal the active segment (fsync per policy) without compacting."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def close(self) -> None:
        """Seal the active segment and release the learner lock.

        Compaction deliberately does *not* release the lock — threshold
        -tripped compactions happen mid-serve, and dropping the lock
        there would let a second daemon claim a library this one is
        still minting into.  Call ``close`` when this learner is done
        with the directory; idempotent.
        """
        self.close_segment()
        release_learner_lock(self.directory)

    def __enter__(self) -> "LearningLibrary":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def segments(self) -> list[Path]:
        """Segment files currently on disk, in replay order."""
        return list_segments(self.directory)

    def stats(self) -> dict:
        """JSON-ready learning counters (for ``/v1/stats`` and the CLI)."""
        return {
            "id_scheme": self.library.id_scheme,
            "classes_minted": self.minted,
            "signature_collisions": self.collisions,
            "overflow_minted": self.overflow_minted,
            "wal_pending_records": self.pending_records,
            "wal_segments": len(self.segments),
            "compactions": self.compactions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LearningLibrary({str(self.directory)!r}, "
            f"classes={self.library.num_classes}, minted={self.minted}, "
            f"pending={self.pending_records})"
        )
