"""Hypercube view of Boolean functions (paper Figs. 1-4).

A Boolean function is the induced subgraph of the hypercube ``Q_n`` on its
1-minterms; NPN equivalence corresponds to hypercube automorphisms mapping
one 1-set onto the other 1-set (or, with output negation, onto the 0-set).
This package provides that graph view as an independent cross-validation
substrate and as the geometric language (faces, points, neighbourhoods)
the paper's characteristics are defined in.
"""

from repro.hypercube.graph import (
    hypercube_graph,
    induced_subgraph,
    npn_equivalent_by_automorphism,
)
from repro.hypercube.faces import face_minterms, face_count, subcube_faces

__all__ = [
    "hypercube_graph",
    "induced_subgraph",
    "npn_equivalent_by_automorphism",
    "face_minterms",
    "face_count",
    "subcube_faces",
]
