"""Faces (subcubes) of the hypercube — the geometry behind cofactors.

A face of ``Q_n`` fixes a subset of coordinates; the cofactor
``f|_{x_S = v}`` lives on exactly one face, and its satisfy count is the
number of 1-minterms on that face (paper Section II-B).  These helpers
make that correspondence executable; the signature tests use them to
validate the cofactor machinery geometrically.
"""

from __future__ import annotations

import itertools

from repro.core.truth_table import TruthTable

__all__ = ["face_minterms", "face_count", "subcube_faces", "opposite_face"]


def face_minterms(n: int, fixed: dict[int, int]) -> list[int]:
    """Minterm indices of the face fixing variable ``i`` to ``fixed[i]``."""
    for i, v in fixed.items():
        if not 0 <= i < n:
            raise ValueError(f"variable {i} out of range for n={n}")
        if v not in (0, 1):
            raise ValueError(f"fixed value for x{i} must be 0 or 1")
    free = [i for i in range(n) if i not in fixed]
    base = sum(v << i for i, v in fixed.items())
    minterms = []
    for bits in itertools.product((0, 1), repeat=len(free)):
        m = base
        for i, bit in zip(free, bits):
            m |= bit << i
        minterms.append(m)
    return sorted(minterms)


def face_count(tt: TruthTable, fixed: dict[int, int]) -> int:
    """Number of 1-minterms on a face == the matching cofactor count."""
    return sum(tt.evaluate(m) for m in face_minterms(tt.n, fixed))


def subcube_faces(n: int, codim: int):
    """Yield every codimension-``codim`` face as a ``fixed`` dict."""
    for subset in itertools.combinations(range(n), codim):
        for values in itertools.product((0, 1), repeat=codim):
            yield dict(zip(subset, values))


def opposite_face(fixed: dict[int, int], variable: int) -> dict[int, int]:
    """The face with ``variable``'s fixed value complemented.

    Influence measures the disagreement between a face and its opposite
    (paper Section II-D / Fig. 2d).
    """
    if variable not in fixed:
        raise ValueError(f"variable {variable} is not fixed by this face")
    flipped = dict(fixed)
    flipped[variable] ^= 1
    return flipped
