"""Hypercube graphs, induced subgraphs, and automorphism-based NPN checks.

The automorphism group of ``Q_n`` is exactly the group of NP transforms on
minterm indices (bit permutations composed with bit flips), of order
``2^n * n!``.  Hence:

* ``f`` and ``g`` are **PN equivalent** iff some hypercube automorphism
  maps the 1-set of ``f`` onto the 1-set of ``g``;
* ``f`` and ``g`` are **NPN equivalent** iff additionally the 1-set of
  ``f`` may map onto the *0-set* of ``g`` (output negation).

This gives an NPN-equivalence decision procedure completely independent of
the truth-table machinery — O(2^n * n! * 2^n), usable for n <= 4 — which
the test suite uses to cross-validate the matcher and the enumeration
canonicaliser.
"""

from __future__ import annotations

import itertools

import networkx as nx

from repro.core.truth_table import TruthTable

__all__ = [
    "hypercube_graph",
    "induced_subgraph",
    "npn_equivalent_by_automorphism",
    "subgraph_degree_histogram",
]


def hypercube_graph(n: int) -> nx.Graph:
    """``Q_n``: nodes are minterm indices, edges join indices at distance 1."""
    graph = nx.Graph()
    graph.add_nodes_from(range(1 << n))
    for node in range(1 << n):
        for i in range(n):
            neighbour = node ^ (1 << i)
            if neighbour > node:
                graph.add_edge(node, neighbour)
    return graph


def induced_subgraph(tt: TruthTable) -> nx.Graph:
    """The induced subgraph of ``Q_n`` on the function's 1-minterms.

    This is the bold part of the paper's Fig. 1 drawings.
    """
    return hypercube_graph(tt.n).subgraph(list(tt.minterms())).copy()


def _automorphism_images(minterms: frozenset[int], n: int):
    """All images of a minterm set under the ``2^n * n!`` automorphisms."""
    for perm in itertools.permutations(range(n)):
        for phase in range(1 << n):
            image = frozenset(
                _apply_index(m, perm, phase, n) for m in minterms
            )
            yield image


def _apply_index(m: int, perm: tuple[int, ...], phase: int, n: int) -> int:
    out = 0
    for i in range(n):
        bit = ((m >> i) & 1) ^ ((phase >> i) & 1)
        out |= bit << perm[i]
    return out


def npn_equivalent_by_automorphism(a: TruthTable, b: TruthTable) -> bool:
    """Decide NPN equivalence purely through hypercube automorphisms.

    Exponential-time oracle for cross-validation (n <= 4 in practice).
    """
    if a.n != b.n:
        return False
    n = a.n
    ones_b = frozenset(b.minterms())
    zeros_b = frozenset(range(1 << n)) - ones_b
    ones_a = frozenset(a.minterms())
    if len(ones_a) not in (len(ones_b), len(zeros_b)):
        return False
    for image in _automorphism_images(ones_a, n):
        if image == ones_b or image == zeros_b:
            return True
    return False


def subgraph_degree_histogram(tt: TruthTable) -> tuple[int, ...]:
    """Degree histogram of the induced subgraph — an NPN invariant.

    The degree of a 1-minterm in the induced subgraph is ``n`` minus its
    local sensitivity, so this histogram is a reshaping of the paper's
    ``OSV1`` (the tests assert the correspondence).
    """
    graph = induced_subgraph(tt)
    counts = [0] * (tt.n + 1)
    for __, degree in graph.degree():
        counts[degree] += 1
    return tuple(counts)
