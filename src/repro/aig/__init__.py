"""And-Inverter Graph substrate: networks, I/O, simulation, cuts, builders.

The paper extracts its benchmark truth tables from the EPFL combinational
suite "using cut enumeration".  This package provides everything needed to
replicate that front-end in Python:

* :mod:`repro.aig.network` — AIG data structure with structural hashing;
* :mod:`repro.aig.aiger` — ASCII AIGER reader/writer;
* :mod:`repro.aig.simulate` — bit-parallel simulation and cone functions;
* :mod:`repro.aig.cuts` — k-feasible priority-cut enumeration;
* :mod:`repro.aig.builders` — EPFL-like arithmetic/control generators.
"""

from repro.aig.network import AIG, Literal
from repro.aig.cuts import Cut, enumerate_cuts
from repro.aig.simulate import cut_function, simulate, simulate_words

__all__ = [
    "AIG",
    "Literal",
    "Cut",
    "enumerate_cuts",
    "simulate",
    "simulate_words",
    "cut_function",
]
