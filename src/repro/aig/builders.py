"""Programmatic EPFL-like benchmark circuits.

The EPFL combinational suite has two families — arithmetic (adder, barrel
shifter, divisor, max, multiplier, sin, sqrt, square) and random/control
(arbiter, cavlc, ctrl, dec, i2c, int2float, mem_ctrl, priority, router,
voter).  The paper only consumes the *cut functions* of these circuits, so
what matters for reproduction is covering the same structural variety:
carry chains, shift networks, comparator trees, products, one-hot control,
priority logic, and unstructured random control.  Every builder below
returns a self-contained :class:`~repro.aig.network.AIG` whose outputs are
verified bit-for-bit against integer arithmetic in the tests.
"""

from __future__ import annotations

import random

from repro.aig.network import AIG, Literal

__all__ = [
    "ripple_adder",
    "carry_lookahead_adder",
    "subtractor",
    "multiplier",
    "square",
    "divider",
    "int_sqrt",
    "barrel_shifter",
    "max_unit",
    "comparator",
    "priority_encoder",
    "decoder",
    "round_robin_arbiter",
    "majority_voter",
    "parity",
    "random_control",
]


def _full_adder(aig: AIG, a: Literal, b: Literal, cin: Literal):
    total = aig.add_xor(aig.add_xor(a, b), cin)
    carry = aig.add_maj(a, b, cin)
    return total, carry


def ripple_adder(width: int) -> AIG:
    """``width``-bit ripple-carry adder: sum = a + b, plus carry out."""
    aig = AIG(name=f"adder{width}")
    a = aig.add_inputs(width, "a")
    b = aig.add_inputs(width, "b")
    carry = 0  # FALSE
    for k in range(width):
        total, carry = _full_adder(aig, a[k], b[k], carry)
        aig.add_output(total, f"s{k}")
    aig.add_output(carry, "cout")
    return aig


def carry_lookahead_adder(width: int) -> AIG:
    """Adder with explicit generate/propagate carry network."""
    aig = AIG(name=f"cla{width}")
    a = aig.add_inputs(width, "a")
    b = aig.add_inputs(width, "b")
    generate = [aig.add_and(a[k], b[k]) for k in range(width)]
    propagate = [aig.add_xor(a[k], b[k]) for k in range(width)]
    carries = [0]
    for k in range(width):
        carries.append(
            aig.add_or(generate[k], aig.add_and(propagate[k], carries[k]))
        )
    for k in range(width):
        aig.add_output(aig.add_xor(propagate[k], carries[k]), f"s{k}")
    aig.add_output(carries[width], "cout")
    return aig


def multiplier(width: int) -> AIG:
    """Array multiplier: ``2*width``-bit product of two ``width``-bit words."""
    aig = AIG(name=f"mult{width}")
    a = aig.add_inputs(width, "a")
    b = aig.add_inputs(width, "b")
    columns: list[list[Literal]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(aig.add_and(a[i], b[j]))
    for k in range(2 * width):
        while len(columns[k]) > 1:
            if len(columns[k]) >= 3:
                x, y, z = columns[k][:3]
                del columns[k][:3]
                total, carry = _full_adder(aig, x, y, z)
            else:
                x, y = columns[k][:2]
                del columns[k][:2]
                total = aig.add_xor(x, y)
                carry = aig.add_and(x, y)
            columns[k].append(total)
            if k + 1 < 2 * width:
                columns[k + 1].append(carry)
        aig.add_output(columns[k][0] if columns[k] else 0, f"p{k}")
    return aig


def square(width: int) -> AIG:
    """Squarer: the multiplier with both operands tied to one input word."""
    aig = AIG(name=f"square{width}")
    a = aig.add_inputs(width, "a")
    columns: list[list[Literal]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(aig.add_and(a[i], a[j]))
    for k in range(2 * width):
        while len(columns[k]) > 1:
            if len(columns[k]) >= 3:
                x, y, z = columns[k][:3]
                del columns[k][:3]
                total, carry = _full_adder(aig, x, y, z)
            else:
                x, y = columns[k][:2]
                del columns[k][:2]
                total = aig.add_xor(x, y)
                carry = aig.add_and(x, y)
            columns[k].append(total)
            if k + 1 < 2 * width:
                columns[k + 1].append(carry)
        aig.add_output(columns[k][0] if columns[k] else 0, f"q{k}")
    return aig


def _vec_sub(aig: AIG, a: list[Literal], b: list[Literal]):
    """Bit-vector subtraction ``a - b``: returns (difference, borrow_out).

    Vectors must have equal length; ``borrow_out`` is 1 iff ``a < b``.
    """
    if len(a) != len(b):
        raise ValueError("vector widths must match")
    borrow: Literal = 0
    diff = []
    for x, y in zip(a, b):
        diff.append(aig.add_xor(aig.add_xor(x, y), borrow))
        borrow = aig.add_maj(x ^ 1, y, borrow)
    return diff, borrow


def _vec_mux(aig: AIG, select: Literal, if_true: list[Literal], if_false: list[Literal]):
    return [aig.add_mux(select, t, f) for t, f in zip(if_true, if_false)]


def subtractor(width: int) -> AIG:
    """``width``-bit subtractor: diff = (a - b) mod 2^width, plus borrow."""
    aig = AIG(name=f"sub{width}")
    a = aig.add_inputs(width, "a")
    b = aig.add_inputs(width, "b")
    diff, borrow = _vec_sub(aig, a, b)
    for k, bit in enumerate(diff):
        aig.add_output(bit, f"d{k}")
    aig.add_output(borrow, "borrow")
    return aig


def divider(width: int) -> AIG:
    """Restoring unsigned divider: quotient and remainder of ``a / b``.

    Division by zero follows the restoring-hardware convention:
    quotient = all ones, remainder = a (the subtract-of-zero always
    "succeeds").  EPFL's ``div`` is the scaled-up version of this unit.
    """
    aig = AIG(name=f"div{width}")
    a = aig.add_inputs(width, "a")
    b = aig.add_inputs(width, "b")
    extended_b = list(b) + [0]
    remainder: list[Literal] = [0] * (width + 1)
    quotient: list[Literal] = [0] * width
    for k in range(width - 1, -1, -1):
        # remainder = (remainder << 1) | a_k; the dropped top bit is
        # always 0 by the restoring invariant remainder <= max(b-1, a).
        remainder = [a[k]] + remainder[:-1]
        difference, borrow = _vec_sub(aig, remainder, extended_b)
        fits = borrow ^ 1  # remainder >= b
        quotient[k] = fits
        remainder = _vec_mux(aig, fits, difference, remainder)
    for k in range(width):
        aig.add_output(quotient[k], f"q{k}")
    for k in range(width):
        aig.add_output(remainder[k], f"r{k}")
    return aig


def int_sqrt(width: int) -> AIG:
    """Digit-recurrence integer square root (EPFL ``sqrt`` style).

    Outputs ``root = floor(sqrt(a))`` (``ceil(width/2)`` bits) and the
    remainder ``a - root^2``.
    """
    aig = AIG(name=f"sqrt{width}")
    a = aig.add_inputs(width, "a")
    pairs = (width + 1) // 2
    length = 2 * pairs + 2
    remainder: list[Literal] = [0] * length
    root: list[Literal] = [0] * pairs

    def input_bit(index: int) -> Literal:
        return a[index] if index < width else 0

    for k in range(pairs - 1, -1, -1):
        # remainder = (remainder << 2) | next bit pair (MSB first).
        remainder = [input_bit(2 * k), input_bit(2 * k + 1)] + remainder[:-2]
        # trial = (root << 2) | 1.
        trial = [1, 0] + root
        trial = trial[:length] + [0] * (length - len(trial))
        difference, borrow = _vec_sub(aig, remainder, trial)
        fits = borrow ^ 1
        remainder = _vec_mux(aig, fits, difference, remainder)
        root = [fits] + root[:-1]
    for k in range(pairs):
        aig.add_output(root[k], f"s{k}")
    for k in range(pairs + 1):
        aig.add_output(remainder[k], f"r{k}")
    return aig


def barrel_shifter(width: int) -> AIG:
    """Logarithmic left-rotate of a ``width``-bit word (width power of two)."""
    if width & (width - 1):
        raise ValueError("barrel shifter width must be a power of two")
    aig = AIG(name=f"barrel{width}")
    data = aig.add_inputs(width, "d")
    select_bits = aig.add_inputs(width.bit_length() - 1, "s")
    current = data
    for stage, select in enumerate(select_bits):
        shift = 1 << stage
        current = [
            aig.add_mux(select, current[(k - shift) % width], current[k])
            for k in range(width)
        ]
    for k, lit in enumerate(current):
        aig.add_output(lit, f"y{k}")
    return aig


def comparator(width: int) -> AIG:
    """Unsigned comparison: outputs ``a > b`` and ``a == b``."""
    aig = AIG(name=f"cmp{width}")
    a = aig.add_inputs(width, "a")
    b = aig.add_inputs(width, "b")
    greater = 0
    equal = 1
    for k in range(width - 1, -1, -1):  # MSB first
        bit_gt = aig.add_and(a[k], b[k] ^ 1)
        bit_eq = aig.add_xnor(a[k], b[k])
        greater = aig.add_or(greater, aig.add_and(equal, bit_gt))
        equal = aig.add_and(equal, bit_eq)
    aig.add_output(greater, "gt")
    aig.add_output(equal, "eq")
    return aig


def max_unit(width: int) -> AIG:
    """EPFL-style ``max``: the larger of two unsigned words."""
    aig = AIG(name=f"max{width}")
    a = aig.add_inputs(width, "a")
    b = aig.add_inputs(width, "b")
    greater = 0
    equal = 1
    for k in range(width - 1, -1, -1):
        bit_gt = aig.add_and(a[k], b[k] ^ 1)
        greater = aig.add_or(greater, aig.add_and(equal, bit_gt))
        equal = aig.add_and(equal, aig.add_xnor(a[k], b[k]))
    for k in range(width):
        aig.add_output(aig.add_mux(greater, a[k], b[k]), f"m{k}")
    return aig


def priority_encoder(width: int) -> AIG:
    """One-hot priority grant: request k wins iff no lower request is set."""
    aig = AIG(name=f"priority{width}")
    requests = aig.add_inputs(width, "r")
    blocked = 0
    for k in range(width):
        aig.add_output(aig.add_and(requests[k], blocked ^ 1), f"g{k}")
        blocked = aig.add_or(blocked, requests[k])
    aig.add_output(blocked, "any")
    return aig


def decoder(bits: int) -> AIG:
    """``bits``-to-``2^bits`` one-hot decoder (EPFL ``dec`` style)."""
    aig = AIG(name=f"dec{bits}")
    select = aig.add_inputs(bits, "s")
    for value in range(1 << bits):
        literals = [
            select[k] if (value >> k) & 1 else select[k] ^ 1 for k in range(bits)
        ]
        aig.add_output(aig.add_and_tree(literals), f"d{value}")
    return aig


def round_robin_arbiter(width: int) -> AIG:
    """Combinational round-robin arbiter core.

    Inputs: ``width`` requests plus a one-hot(-ish) priority pointer; the
    grant goes to the first request at or after the pointer position
    (wrapping).  This is the combinational heart of the EPFL ``arbiter``.
    """
    aig = AIG(name=f"arbiter{width}")
    requests = aig.add_inputs(width, "r")
    pointer = aig.add_inputs(width, "p")
    grants: list[Literal] = []
    for k in range(width):
        # Request k is granted iff the pointer is at slot s and no request
        # in s..k-1 (cyclic) is active, for some s.
        terms = []
        for s in range(width):
            blocked = 0
            position = s
            while position != k:
                blocked = aig.add_or(blocked, requests[position])
                position = (position + 1) % width
            terms.append(aig.add_and(pointer[s], blocked ^ 1))
        grants.append(aig.add_and(requests[k], aig.add_or_tree(terms)))
    for k, grant in enumerate(grants):
        aig.add_output(grant, f"g{k}")
    return aig


def majority_voter(inputs: int) -> AIG:
    """N-way majority (EPFL ``voter`` style, N odd) via a population count."""
    if inputs % 2 == 0:
        raise ValueError("voter needs an odd number of inputs")
    aig = AIG(name=f"voter{inputs}")
    votes = aig.add_inputs(inputs, "v")
    # Count set votes with a ripple counter of full adders.
    width = inputs.bit_length()
    total = [0] * width
    for vote in votes:
        carry = vote
        for k in range(width):
            total[k], carry = _full_adder(aig, total[k], carry, 0)
    # Majority iff count > inputs // 2: compare against the constant.
    threshold = inputs // 2
    greater = 0
    equal = 1
    for k in range(width - 1, -1, -1):
        threshold_bit = (threshold >> k) & 1
        if threshold_bit:
            equal = aig.add_and(equal, total[k])
        else:
            greater = aig.add_or(greater, aig.add_and(equal, total[k]))
            equal = aig.add_and(equal, total[k] ^ 1)
    aig.add_output(greater, "maj")
    return aig


def parity(inputs: int) -> AIG:
    """XOR tree over ``inputs`` bits."""
    aig = AIG(name=f"parity{inputs}")
    bits = aig.add_inputs(inputs, "x")
    aig.add_output(aig.add_xor_tree(bits), "p")
    return aig


def random_control(
    inputs: int, gates: int, seed: int, outputs: int | None = None
) -> AIG:
    """Unstructured random control logic (EPFL random/control stand-in).

    Each gate ANDs two randomly chosen, randomly complemented existing
    signals; a random subset of signals becomes outputs.  Deterministic in
    ``seed``.
    """
    rng = random.Random(seed)
    aig = AIG(name=f"rand{inputs}x{gates}s{seed}")
    signals = list(aig.add_inputs(inputs, "x"))
    for _ in range(gates):
        a = rng.choice(signals) ^ rng.getrandbits(1)
        b = rng.choice(signals) ^ rng.getrandbits(1)
        lit = aig.add_and(a, b)
        if lit > 1:
            signals.append(lit)
    count = outputs if outputs is not None else max(1, inputs // 2)
    pool = [s for s in signals if s // 2 > inputs] or signals
    for position, lit in enumerate(rng.sample(pool, min(count, len(pool)))):
        aig.add_output(lit, f"y{position}")
    return aig
