"""Bit-parallel AIG simulation and cone/cut truth-table computation.

Simulation words are Python ints used as bit vectors: pattern ``p`` of a
signal is bit ``p`` of its word.  Simulating all ``2^k`` assignments of
``k`` chosen variables therefore means seeding those variables with the
truth-table projection masks of :func:`repro.core.bitops.var_mask` and
sweeping the network once — the standard trick behind truth-table
computation in cut-based technology mapping.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.aig.network import AIG, Literal
from repro.core import bitops
from repro.core.truth_table import TruthTable

__all__ = ["simulate", "simulate_words", "cone_function", "cut_function"]


def simulate(aig: AIG, inputs: Sequence[int]) -> list[int]:
    """Evaluate all outputs for one input assignment (0/1 values)."""
    if len(inputs) != aig.num_inputs:
        raise ValueError(f"expected {aig.num_inputs} input values")
    words = simulate_words(aig, [bit & 1 for bit in inputs], width=1)
    return [words[lit] & 1 for lit, __ in aig.outputs()]


def simulate_words(
    aig: AIG, input_words: Sequence[int], width: int
) -> dict[Literal, int]:
    """Sweep the network once over bit-parallel input words.

    Returns a map from every *literal* to its simulation word (masked to
    ``width`` bits), so callers can look up complemented signals directly.
    """
    if len(input_words) != aig.num_inputs:
        raise ValueError(f"expected {aig.num_inputs} input words")
    mask = (1 << width) - 1
    values: dict[int, int] = {0: 0}
    for variable, word in zip(aig.input_variables(), input_words):
        values[variable] = word & mask
    for variable in aig.and_variables():
        f0, f1 = aig.fanins(variable)
        values[variable] = _literal_word(values, f0, mask) & _literal_word(
            values, f1, mask
        )
    return {
        2 * v: word for v, word in values.items()
    } | {2 * v + 1: word ^ mask for v, word in values.items()}


def cone_function(
    aig: AIG, root: Literal, leaves: Sequence[int]
) -> TruthTable:
    """Truth table of ``root`` as a function of the ``leaves`` variables.

    The cone of ``root`` must be covered by ``leaves``: every path from
    ``root`` towards the inputs must hit a leaf (or the constant).  Raises
    ``ValueError`` otherwise.  Leaf order defines variable order: leaf
    ``k`` becomes truth-table variable ``k``.
    """
    k = len(leaves)
    if k > bitops.MAX_VARS:
        raise ValueError(f"cone function over {k} leaves is unsupported")
    mask = bitops.table_mask(k)
    values: dict[int, int] = {0: 0}
    for position, leaf in enumerate(leaves):
        values[leaf] = bitops.var_mask(k, position)
    root_var = root // 2

    order = _cone_variables(aig, root_var, set(values))
    for variable in order:
        f0, f1 = aig.fanins(variable)
        values[variable] = _literal_word(values, f0, mask) & _literal_word(
            values, f1, mask
        )
    word = _literal_word(values, root, mask)
    return TruthTable(k, word)


def cut_function(aig: AIG, root: int, cut: Iterable[int]) -> TruthTable:
    """Truth table of AND variable ``root`` over a cut's leaves (sorted)."""
    return cone_function(aig, 2 * root, sorted(cut))


def _cone_variables(aig: AIG, root_var: int, known: set[int]) -> list[int]:
    """Cone variables between the leaves and ``root_var``, topologically."""
    if root_var in known or root_var == 0:
        return []
    order: list[int] = []
    seen = set(known)
    stack = [(root_var, False)]
    while stack:
        variable, expanded = stack.pop()
        if variable in seen:
            continue
        if expanded:
            seen.add(variable)
            order.append(variable)
            continue
        if aig.is_input(variable):
            raise ValueError(
                f"cone of variable {root_var} escapes the leaves at input "
                f"{variable}"
            )
        stack.append((variable, True))
        f0, f1 = aig.fanins(variable)
        for fanin in (f0 // 2, f1 // 2):
            if fanin not in seen and fanin != 0:
                stack.append((fanin, False))
    return order


def _literal_word(values: dict[int, int], literal: Literal, mask: int) -> int:
    word = values[literal // 2]
    return word ^ mask if literal & 1 else word
