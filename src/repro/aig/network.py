"""And-Inverter Graph (AIG) network with structural hashing.

Follows the AIGER literal convention: variable ``v`` has the positive
literal ``2v`` and the complemented literal ``2v + 1``.  Variable 0 is the
constant FALSE, so literal 0 is FALSE and literal 1 is TRUE.  Variables
``1..num_inputs`` are primary inputs; AND nodes take the following
indices.  Construction order is topological by design (fanins must exist
before the AND is created), which every traversal in this package relies
on.

``add_and`` performs the usual one-level rewrites (constant propagation,
idempotence, complementary fanins) and structural hashing, so builders can
compose gates freely without blowing the node count up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AIG", "Literal"]

#: A literal: 2 * variable + complement bit (AIGER convention).
Literal = int

FALSE: Literal = 0
TRUE: Literal = 1


@dataclass
class _AndNode:
    fanin0: Literal
    fanin1: Literal


@dataclass
class AIG:
    """A combinational And-Inverter Graph."""

    name: str = "aig"
    _inputs: list[str] = field(default_factory=list)
    _ands: list[_AndNode] = field(default_factory=list)
    _outputs: list[tuple[Literal, str]] = field(default_factory=list)
    _strash: dict[tuple[Literal, Literal], Literal] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_input(self, name: str | None = None) -> Literal:
        """Create a primary input; returns its positive literal."""
        index = len(self._inputs) + 1
        self._inputs.append(name if name is not None else f"i{index - 1}")
        return 2 * index

    def add_inputs(self, count: int, prefix: str = "i") -> list[Literal]:
        """Create ``count`` named inputs at once."""
        return [self.add_input(f"{prefix}{k}") for k in range(count)]

    def add_and(self, a: Literal, b: Literal) -> Literal:
        """AND of two literals with rewriting and structural hashing."""
        self._check_literal(a)
        self._check_literal(b)
        if a > b:
            a, b = b, a
        if a == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if a == b:
            return a
        if a ^ 1 == b:
            return FALSE
        key = (a, b)
        cached = self._strash.get(key)
        if cached is not None:
            return cached
        self._ands.append(_AndNode(a, b))
        literal = 2 * (len(self._inputs) + len(self._ands))
        self._strash[key] = literal
        return literal

    def add_output(self, literal: Literal, name: str | None = None) -> None:
        self._check_literal(literal)
        self._outputs.append(
            (literal, name if name is not None else f"o{len(self._outputs)}")
        )

    # ------------------------------------------------------------------
    # Derived gates (all build on add_and)
    # ------------------------------------------------------------------

    @staticmethod
    def negate(literal: Literal) -> Literal:
        return literal ^ 1

    def add_or(self, a: Literal, b: Literal) -> Literal:
        return self.add_and(a ^ 1, b ^ 1) ^ 1

    def add_nand(self, a: Literal, b: Literal) -> Literal:
        return self.add_and(a, b) ^ 1

    def add_xor(self, a: Literal, b: Literal) -> Literal:
        return self.add_or(self.add_and(a, b ^ 1), self.add_and(a ^ 1, b))

    def add_xnor(self, a: Literal, b: Literal) -> Literal:
        return self.add_xor(a, b) ^ 1

    def add_mux(self, select: Literal, if_true: Literal, if_false: Literal) -> Literal:
        """``select ? if_true : if_false``."""
        return self.add_or(
            self.add_and(select, if_true), self.add_and(select ^ 1, if_false)
        )

    def add_maj(self, a: Literal, b: Literal, c: Literal) -> Literal:
        return self.add_or(
            self.add_and(a, b), self.add_or(self.add_and(a, c), self.add_and(b, c))
        )

    def add_and_tree(self, literals: list[Literal]) -> Literal:
        """Balanced AND over any number of literals (empty -> TRUE)."""
        items = list(literals)
        if not items:
            return TRUE
        while len(items) > 1:
            items = [
                self.add_and(items[k], items[k + 1])
                if k + 1 < len(items)
                else items[k]
                for k in range(0, len(items), 2)
            ]
        return items[0]

    def add_or_tree(self, literals: list[Literal]) -> Literal:
        return self.add_and_tree([lit ^ 1 for lit in literals]) ^ 1

    def add_xor_tree(self, literals: list[Literal]) -> Literal:
        items = list(literals)
        if not items:
            return FALSE
        while len(items) > 1:
            items = [
                self.add_xor(items[k], items[k + 1])
                if k + 1 < len(items)
                else items[k]
                for k in range(0, len(items), 2)
            ]
        return items[0]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def num_inputs(self) -> int:
        return len(self._inputs)

    @property
    def num_ands(self) -> int:
        return len(self._ands)

    @property
    def num_outputs(self) -> int:
        return len(self._outputs)

    @property
    def num_vars(self) -> int:
        """Total variables including the constant (index 0)."""
        return 1 + len(self._inputs) + len(self._ands)

    def input_names(self) -> tuple[str, ...]:
        return tuple(self._inputs)

    def outputs(self) -> tuple[tuple[Literal, str], ...]:
        return tuple(self._outputs)

    def input_variables(self) -> range:
        """Variable indices of the primary inputs."""
        return range(1, 1 + len(self._inputs))

    def and_variables(self) -> range:
        """Variable indices of the AND nodes, in topological order."""
        first = 1 + len(self._inputs)
        return range(first, first + len(self._ands))

    def fanins(self, variable: int) -> tuple[Literal, Literal]:
        """Fanin literals of an AND variable."""
        first = 1 + len(self._inputs)
        if not first <= variable < self.num_vars:
            raise ValueError(f"variable {variable} is not an AND node")
        node = self._ands[variable - first]
        return node.fanin0, node.fanin1

    def is_input(self, variable: int) -> bool:
        return 1 <= variable <= len(self._inputs)

    def is_and(self, variable: int) -> bool:
        return 1 + len(self._inputs) <= variable < self.num_vars

    def levels(self) -> dict[int, int]:
        """Logic depth of every variable (inputs and constant at level 0)."""
        level = {0: 0}
        for v in self.input_variables():
            level[v] = 0
        for v in self.and_variables():
            f0, f1 = self.fanins(v)
            level[v] = 1 + max(level[f0 // 2], level[f1 // 2])
        return level

    def depth(self) -> int:
        """Maximum output level."""
        if not self._outputs:
            return 0
        level = self.levels()
        return max(level[lit // 2] for lit, __ in self._outputs)

    def fanout_counts(self) -> dict[int, int]:
        """Number of AND/output references to each variable."""
        counts = {v: 0 for v in range(self.num_vars)}
        for v in self.and_variables():
            f0, f1 = self.fanins(v)
            counts[f0 // 2] += 1
            counts[f1 // 2] += 1
        for lit, __ in self._outputs:
            counts[lit // 2] += 1
        return counts

    def _check_literal(self, literal: Literal) -> None:
        if not 0 <= literal < 2 * self.num_vars:
            raise ValueError(f"literal {literal} references an unknown variable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AIG(name={self.name!r}, inputs={self.num_inputs}, "
            f"ands={self.num_ands}, outputs={self.num_outputs})"
        )
