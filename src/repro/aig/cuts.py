"""k-feasible priority-cut enumeration — the paper's truth-table front end.

A *cut* of node ``v`` is a set of variables (leaves) such that every path
from ``v`` to the primary inputs passes through a leaf; it is k-feasible
when it has at most ``k`` leaves.  Bottom-up enumeration merges the cut
sets of the two fanins, filters oversized and dominated cuts, and keeps at
most ``max_cuts`` per node (priority cuts) so the enumeration stays
polynomial on large networks — the standard scheme from cut-based FPGA
mapping, which is also how the paper extracts Boolean functions from the
EPFL benchmarks.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from dataclasses import dataclass

from repro.aig.network import AIG

__all__ = ["Cut", "enumerate_cuts", "cut_statistics", "iter_cut_functions"]


@dataclass(frozen=True)
class Cut:
    """An immutable cut: sorted leaf variables plus a 64-bit Bloom signature."""

    leaves: tuple[int, ...]
    signature: int

    @classmethod
    def of(cls, leaves: tuple[int, ...]) -> "Cut":
        signature = 0
        for leaf in leaves:
            signature |= 1 << (leaf & 63)
        return cls(leaves, signature)

    @property
    def size(self) -> int:
        return len(self.leaves)

    def dominates(self, other: "Cut") -> bool:
        """True if this cut's leaves are a subset of the other's.

        A dominated cut is redundant: any function computable over the
        superset cut is computable over the subset cut.  The Bloom
        signature rejects most non-subset pairs in O(1).
        """
        if self.signature & ~other.signature:
            return False
        return set(self.leaves) <= set(other.leaves)


def merge_cuts(a: Cut, b: Cut, k: int) -> Cut | None:
    """Union of two fanin cuts if it stays k-feasible."""
    # Bloom popcount is a lower bound on the union size: sound cheap reject.
    if (a.signature | b.signature).bit_count() > k:
        return None
    union = tuple(sorted(set(a.leaves) | set(b.leaves)))
    if len(union) > k:
        return None
    return Cut.of(union)


def enumerate_cuts(
    aig: AIG, k: int, max_cuts: int = 16, include_trivial: bool = True
) -> dict[int, list[Cut]]:
    """All (priority) k-feasible cuts of every variable.

    Args:
        aig: the network.
        k: maximum cut size (the paper sweeps the equivalent of 4..10).
        max_cuts: per-node cap; the kept cuts are the smallest ones
            (classical priority-cut pruning).
        include_trivial: keep the singleton ``{v}`` cut on AND nodes.

    Returns:
        Map from variable index to its cut list.  Inputs own just their
        trivial cut.
    """
    if k < 1:
        raise ValueError("cut size must be at least 1")
    cuts: dict[int, list[Cut]] = {}
    for variable in aig.input_variables():
        cuts[variable] = [Cut.of((variable,))]
    for variable in aig.and_variables():
        f0, f1 = aig.fanins(variable)
        v0, v1 = f0 // 2, f1 // 2
        candidates: list[Cut] = []
        for cut_a in cuts.get(v0, [_constant_cut()]):
            for cut_b in cuts.get(v1, [_constant_cut()]):
                merged = merge_cuts(cut_a, cut_b, k)
                if merged is not None:
                    candidates.append(merged)
        kept = _filter_cuts(candidates, max_cuts)
        if include_trivial:
            kept.append(Cut.of((variable,)))
        cuts[variable] = kept
    return cuts


def iter_cut_functions(
    aig: AIG, sizes: Iterable[int], max_cuts: int = 16
) -> Iterator[tuple[int, Cut, "TruthTable"]]:
    """Stream ``(root, cut, truth table)`` for every cut of a wanted size.

    Every enumerated cut occurrence is yielded — including duplicate
    functions from different nodes — so downstream consumers can count
    honest per-cut hit rates (the library cut-matching experiment) or
    deduplicate themselves (the extraction pipeline's behaviour).
    Deterministic: AND variables in topological order, each node's cut
    list in priority order.  Invalid ``sizes`` raise here, at call time,
    not at first iteration.
    """
    wanted = sorted(set(sizes))
    if not wanted or wanted[0] < 1:
        raise ValueError("cut sizes must be positive")
    return _iter_cut_functions(aig, wanted, max_cuts)


def _iter_cut_functions(aig: AIG, wanted: list[int], max_cuts: int):
    from repro.aig.simulate import cut_function

    cuts = enumerate_cuts(aig, k=max(wanted), max_cuts=max_cuts)
    wanted_set = set(wanted)
    for variable in aig.and_variables():
        for cut in cuts[variable]:
            if cut.size in wanted_set:
                yield variable, cut, cut_function(aig, variable, cut.leaves)


def cut_statistics(cuts: dict[int, list[Cut]]) -> dict[int, int]:
    """Histogram of cut sizes over all nodes (bench instrumentation)."""
    histogram: dict[int, int] = {}
    for cut_list in cuts.values():
        for cut in cut_list:
            histogram[cut.size] = histogram.get(cut.size, 0) + 1
    return dict(sorted(histogram.items()))


def _constant_cut() -> Cut:
    """The empty cut owned by the constant node."""
    return Cut.of(())


def _filter_cuts(candidates: list[Cut], max_cuts: int) -> list[Cut]:
    """Remove duplicates and dominated cuts; keep ``max_cuts`` diverse cuts.

    Domination is checked ascending by size (only smaller cuts can
    dominate).  Selection round-robins across size groups instead of
    keeping only the smallest cuts: the downstream consumer is function
    *extraction*, which needs large cuts as much as small ones.
    """
    unique: dict[tuple[int, ...], Cut] = {}
    for cut in candidates:
        unique.setdefault(cut.leaves, cut)
    ordered = sorted(unique.values(), key=lambda c: (c.size, c.leaves))
    survivors: list[Cut] = []
    for cut in ordered:
        if any(existing.dominates(cut) for existing in survivors):
            continue
        survivors.append(cut)
    by_size: dict[int, list[Cut]] = {}
    for cut in survivors:
        by_size.setdefault(cut.size, []).append(cut)
    kept: list[Cut] = []
    groups = [by_size[size] for size in sorted(by_size)]
    position = 0
    while len(kept) < max_cuts and any(groups):
        group = groups[position % len(groups)]
        if group:
            kept.append(group.pop(0))
        position += 1
        if all(not g for g in groups):
            break
    return kept
