"""Immutable truth-table representation of Boolean functions.

``TruthTable`` wraps the integer encoding of :mod:`repro.core.bitops` in a
value type with constructors, Boolean algebra, cofactor access and NPN
transformation support.  It plays the role Kitty's ``static_truth_table``
plays for the paper's C++ implementation.

Bit convention (paper Section II-A): bit ``m`` of the table is
``f((m)_2)`` where the little-endian code of ``m`` assigns variable
``x_0`` to the least significant index bit.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.core import bitops
from repro.core.transforms import NPNTransform

__all__ = ["TruthTable"]


@dataclass(frozen=True, order=True)
class TruthTable:
    """An ``n``-variable Boolean function stored as a ``2**n``-bit integer.

    Instances are immutable, hashable, and totally ordered by
    ``(n, bits)`` — the ordering used for canonical representatives.
    """

    n: int
    bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.n <= bitops.MAX_VARS:
            raise ValueError(f"unsupported variable count {self.n}")
        if not 0 <= self.bits <= bitops.table_mask(self.n):
            raise ValueError(f"table value does not fit in 2^{self.n} bits")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_binary(cls, text: str) -> "TruthTable":
        """Parse an MSB-first binary string, e.g. ``"11101000"`` (3-majority).

        The leftmost character is ``f(1, 1, ..., 1)`` — the printing
        convention of Kitty and of the paper's figures.
        """
        clean = text.strip().replace("_", "")
        length = len(clean)
        if length == 0 or length & (length - 1):
            raise ValueError(f"binary string length {length} is not a power of two")
        if set(clean) - {"0", "1"}:
            raise ValueError(f"invalid binary string {text!r}")
        return cls(length.bit_length() - 1, int(clean, 2))

    @classmethod
    def from_hex(cls, n: int, text: str) -> "TruthTable":
        """Parse an MSB-first hex string of ``max(1, 2**n/4)`` digits."""
        clean = text.strip().removeprefix("0x").replace("_", "")
        expected = max(1, (1 << n) // 4)
        if len(clean) != expected:
            raise ValueError(
                f"expected {expected} hex digits for n={n}, got {len(clean)}"
            )
        return cls(n, int(clean, 16) & bitops.table_mask(n))

    @classmethod
    def from_function(cls, n: int, func: Callable[..., int]) -> "TruthTable":
        """Tabulate ``func(x_0, ..., x_{n-1})`` over all assignments."""
        bits = 0
        for m in range(1 << n):
            args = tuple((m >> i) & 1 for i in range(n))
            if func(*args):
                bits |= 1 << m
        return cls(n, bits)

    @classmethod
    def from_minterms(cls, n: int, minterms: Iterable[int]) -> "TruthTable":
        """Build from the set of satisfying minterm indices."""
        bits = 0
        for m in minterms:
            if not 0 <= m < (1 << n):
                raise ValueError(f"minterm {m} out of range for n={n}")
            bits |= 1 << m
        return cls(n, bits)

    @classmethod
    def constant(cls, n: int, value: int) -> "TruthTable":
        """The constant-0 or constant-1 function."""
        return cls(n, bitops.table_mask(n) if value else 0)

    @classmethod
    def projection(cls, n: int, i: int, complemented: bool = False) -> "TruthTable":
        """The function ``x_i`` (or ``~x_i``)."""
        mask = bitops.var_mask(n, i)
        if complemented:
            mask ^= bitops.table_mask(n)
        return cls(n, mask)

    @classmethod
    def random(cls, n: int, rng: random.Random) -> "TruthTable":
        """Uniformly random ``n``-variable function."""
        return cls(n, rng.getrandbits(1 << n) if n else rng.getrandbits(1))

    @classmethod
    def majority(cls, n: int) -> "TruthTable":
        """The n-input majority function (n odd), e.g. the paper's ``f1``."""
        if n % 2 == 0:
            raise ValueError("majority needs an odd number of inputs")
        return cls.from_function(n, lambda *xs: int(sum(xs) > n // 2))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def evaluate(self, assignment: Iterable[int] | int) -> int:
        """Value of ``f`` at a word, given as bit tuple or minterm index."""
        if isinstance(assignment, int):
            index = assignment
            if not 0 <= index < (1 << self.n):
                raise ValueError(f"minterm {index} out of range")
        else:
            bits = tuple(assignment)
            if len(bits) != self.n:
                raise ValueError(f"expected {self.n} inputs, got {len(bits)}")
            index = sum((b & 1) << i for i, b in enumerate(bits))
        return (self.bits >> index) & 1

    def count_ones(self) -> int:
        """Satisfy count ``|f|`` — the 0-ary cofactor signature."""
        return bitops.popcount(self.bits)

    def count_zeros(self) -> int:
        return (1 << self.n) - self.count_ones()

    @property
    def is_balanced(self) -> bool:
        """True iff ``|f| == |~f| == 2^(n-1)`` (paper Section II-A)."""
        return self.count_ones() * 2 == 1 << self.n

    @property
    def is_constant(self) -> bool:
        return self.bits in (0, bitops.table_mask(self.n))

    def minterms(self) -> Iterator[int]:
        """Indices of the satisfying assignments, ascending."""
        bits = self.bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def support(self) -> tuple[int, ...]:
        """Variables the function actually depends on."""
        return tuple(
            i
            for i in range(self.n)
            if bitops.sensitivity_word(self.bits, self.n, i) != 0
        )

    @property
    def is_degenerate(self) -> bool:
        """True iff some variable is non-essential."""
        return len(self.support()) < self.n

    def has_symmetric_pair(self, i: int, j: int) -> bool:
        """True iff ``f`` is invariant under swapping ``x_i`` and ``x_j``."""
        return bitops.swap_inputs(self.bits, self.n, i, j) == self.bits

    def has_skew_symmetric_pair(self, i: int, j: int) -> bool:
        """True iff ``f`` is invariant under swapping ``x_i`` with ``~x_j``."""
        flipped = bitops.flip_input(self.bits, self.n, i)
        flipped = bitops.flip_input(flipped, self.n, j)
        return bitops.swap_inputs(flipped, self.n, i, j) == self.bits

    # ------------------------------------------------------------------
    # Boolean algebra
    # ------------------------------------------------------------------

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.n, bitops.flip_output(self.bits, self.n))

    def __and__(self, other: "TruthTable") -> "TruthTable":
        return TruthTable(self.n, self.bits & self._same_arity(other).bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        return TruthTable(self.n, self.bits | self._same_arity(other).bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        return TruthTable(self.n, self.bits ^ self._same_arity(other).bits)

    def implies(self, other: "TruthTable") -> bool:
        """True iff ``f <= g`` pointwise."""
        return self.bits & ~self._same_arity(other).bits == 0

    # ------------------------------------------------------------------
    # Cofactors and transformations
    # ------------------------------------------------------------------

    def cofactor(self, i: int, value: int) -> "TruthTable":
        """Shannon cofactor ``f|x_i=value`` as an ``(n-1)``-variable table."""
        if self.n == 0:
            raise ValueError("cannot take a cofactor of a 0-variable function")
        return TruthTable(
            self.n - 1, bitops.project_cofactor(self.bits, self.n, i, value)
        )

    def cofactor_count(self, i: int, value: int) -> int:
        """Satisfy count of the cofactor without materialising it."""
        mask = bitops.var_mask(self.n, i)
        if not value:
            mask ^= bitops.table_mask(self.n)
        return bitops.popcount(self.bits & mask)

    def flip_input(self, i: int) -> "TruthTable":
        return TruthTable(self.n, bitops.flip_input(self.bits, self.n, i))

    def flip_inputs(self, phase: int) -> "TruthTable":
        return TruthTable(self.n, bitops.flip_inputs(self.bits, self.n, phase))

    def swap_inputs(self, i: int, j: int) -> "TruthTable":
        return TruthTable(self.n, bitops.swap_inputs(self.bits, self.n, i, j))

    def permute(self, perm: tuple[int, ...]) -> "TruthTable":
        return TruthTable(self.n, bitops.permute_inputs(self.bits, self.n, perm))

    def apply(self, transform: NPNTransform) -> "TruthTable":
        """Apply an NPN transformation."""
        return TruthTable(self.n, transform.apply_table(self.bits, self.n))

    def extend(self, n: int) -> "TruthTable":
        """Re-express over ``n >= self.n`` variables (new ones don't-care)."""
        if n < self.n:
            raise ValueError("extend cannot shrink a function")
        bits = self.bits
        for k in range(self.n, n):
            bits = bitops.insert_variable(bits, k, k)
        return TruthTable(n, bits)

    def extend_insert(self, i: int) -> "TruthTable":
        """Insert a don't-care variable at index ``i`` (arity ``n+1``)."""
        return TruthTable(self.n + 1, bitops.insert_variable(self.bits, self.n, i))

    def shrink_to_support(self) -> "TruthTable":
        """Project out all non-essential variables."""
        table, n = self.bits, self.n
        for i in range(n - 1, -1, -1):
            if bitops.sensitivity_word(table, n, i) == 0:
                table = bitops.project_cofactor(table, n, i, 0)
                n -= 1
        return TruthTable(n, table)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_binary(self) -> str:
        """MSB-first binary string (inverse of :meth:`from_binary`)."""
        return format(self.bits, f"0{1 << self.n}b")

    def to_hex(self) -> str:
        """MSB-first hex string (inverse of :meth:`from_hex`)."""
        return format(self.bits, f"0{max(1, (1 << self.n) // 4)}x")

    def bit_array(self) -> np.ndarray:
        """Numpy ``uint8`` view of the table, bit ``m`` at position ``m``."""
        return bitops.to_bit_array(self.bits, self.n)

    def __str__(self) -> str:
        return f"0x{self.to_hex()}" if self.n >= 2 else self.to_binary()

    def __repr__(self) -> str:
        return f"TruthTable(n={self.n}, bits=0x{self.to_hex()})"

    def _same_arity(self, other: "TruthTable") -> "TruthTable":
        if not isinstance(other, TruthTable):
            raise TypeError(f"expected TruthTable, got {type(other).__name__}")
        if other.n != self.n:
            raise ValueError(f"arity mismatch: {self.n} vs {other.n}")
        return other
