"""Ordered signature vectors (paper Section III, Definitions 6-10).

Each vector is a *sorted multiset* of raw characteristics, making it
invariant under input permutation and (where proved in the paper's
Theorems 1-4) input/output negation:

* ``OCV_l`` — ordered l-ary cofactor vector (face characteristics),
* ``OIV``   — ordered influence vector (point-face characteristics),
* ``OSV``, ``OSV0``, ``OSV1`` — ordered (0-/1-)sensitivity vectors,
* ``OSDV``, ``OSDV0``, ``OSDV1`` — ordered sensitivity *distance* vectors:
  for each local-sensitivity level, the histogram over Hamming distances
  of word pairs sharing that level.

Sorted multisets over the bounded domain ``0..n`` are stored two ways: the
verbatim sorted tuple (``osv`` — matches the paper's tables) and the
equivalent fixed-length histogram (``osv_histogram`` — what the classifier
hashes).  Both carry identical information; tests assert the equivalence.

OSDV pair counting delegates to the Walsh-Hadamard XOR auto-correlation in
:mod:`repro.spectral.walsh`, turning the naive ``O(4^n)`` pair scan into
``O(2^n * n)`` per sensitivity level.
"""

from __future__ import annotations

import numpy as np

from repro.core import characteristics as chars
from repro.core.truth_table import TruthTable
from repro.spectral.walsh import pair_distance_histogram

__all__ = [
    "ocv",
    "ocv1",
    "ocv2",
    "oiv",
    "osv",
    "osv0",
    "osv1",
    "osv_histogram",
    "osv01_histograms",
    "osdv",
    "osdv0",
    "osdv1",
    "sensitivity_buckets",
]


# ----------------------------------------------------------------------
# Ordered cofactor vectors (Definition 6)
# ----------------------------------------------------------------------


def ocv(tt: TruthTable, ell: int) -> tuple[int, ...]:
    """The l-ary ordered cofactor vector ``OCV_l`` (sorted, length C(n,l)*2^l)."""
    return tuple(sorted(chars.cofactor_counts(tt, ell)))


def ocv1(tt: TruthTable) -> tuple[int, ...]:
    """``OCV_1`` — sorted 1-ary cofactor counts (length 2n)."""
    return tuple(sorted(chars.cofactor_counts_1ary(tt)))


def ocv2(tt: TruthTable) -> tuple[int, ...]:
    """``OCV_2`` — sorted 2-ary cofactor counts (length 2n(n-1))."""
    return ocv(tt, 2)


# ----------------------------------------------------------------------
# Ordered influence vector (Definition 7)
# ----------------------------------------------------------------------


def oiv(tt: TruthTable) -> tuple[int, ...]:
    """``OIV`` — sorted integer influences (length n, Theorem 1 invariant)."""
    return tuple(sorted(chars.influences(tt)))


# ----------------------------------------------------------------------
# Ordered sensitivity vectors (Definition 8)
# ----------------------------------------------------------------------


def osv(tt: TruthTable) -> tuple[int, ...]:
    """``OSV`` — sorted local sensitivities of all ``2^n`` words."""
    return tuple(sorted(int(s) for s in chars.sensitivity_profile(tt)))


def osv1(tt: TruthTable) -> tuple[int, ...]:
    """``OSV1`` — sorted local sensitivities of the 1-words (length ``|f|``)."""
    profile = chars.sensitivity_profile(tt)
    ones = tt.bit_array().astype(bool)
    return tuple(sorted(int(s) for s in profile[ones]))


def osv0(tt: TruthTable) -> tuple[int, ...]:
    """``OSV0`` — sorted local sensitivities of the 0-words."""
    profile = chars.sensitivity_profile(tt)
    ones = tt.bit_array().astype(bool)
    return tuple(sorted(int(s) for s in profile[~ones]))


def osv_histogram(tt: TruthTable) -> tuple[int, ...]:
    """Histogram form of ``OSV``: entry ``s`` counts words with ``sen = s``."""
    profile = chars.sensitivity_profile(tt)
    return tuple(np.bincount(profile, minlength=tt.n + 1).tolist())


def osv01_histograms(tt: TruthTable) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """``(OSV0, OSV1)`` as histograms over sensitivity levels ``0..n``."""
    profile = chars.sensitivity_profile(tt)
    ones = tt.bit_array().astype(bool)
    hist0 = np.bincount(profile[~ones], minlength=tt.n + 1)
    hist1 = np.bincount(profile[ones], minlength=tt.n + 1)
    return tuple(hist0.tolist()), tuple(hist1.tolist())


# ----------------------------------------------------------------------
# Ordered sensitivity distance vectors (Definitions 9-10)
# ----------------------------------------------------------------------


def sensitivity_buckets(
    tt: TruthTable, value: int | None = None
) -> list[np.ndarray]:
    """Indicator vectors of words grouped by local sensitivity level.

    Entry ``s`` marks the words with ``sen(f, X) = s`` — restricted to
    words with ``f(X) = value`` when ``value`` is 0 or 1.
    """
    profile = chars.sensitivity_profile(tt)
    buckets = []
    if value is None:
        keep = np.ones(1 << tt.n, dtype=bool)
    else:
        keep = tt.bit_array().astype(bool)
        if value == 0:
            keep = ~keep
    for level in range(tt.n + 1):
        buckets.append(((profile == level) & keep).astype(np.int64))
    return buckets


def _osdv_from_buckets(buckets: list[np.ndarray], n: int) -> tuple[int, ...]:
    """Flatten Definition 10: ``(sigma_0, ..., sigma_n)`` row-major.

    ``sigma_s = (delta_s1, ..., delta_sn)`` where ``delta_sj`` counts the
    unordered word pairs with common sensitivity ``s`` at Hamming distance
    ``j``.  Empty or singleton buckets contribute all-zero rows.
    """
    rows = []
    for indicator in buckets:
        if int(indicator.sum()) < 2:
            rows.extend([0] * n)
            continue
        histogram = pair_distance_histogram(indicator, n)
        rows.extend(int(c) for c in histogram[1:])
    return tuple(rows)


def osdv(tt: TruthTable) -> tuple[int, ...]:
    """``OSDV`` over all words — flattened, length ``n * (n + 1)``."""
    return _osdv_from_buckets(sensitivity_buckets(tt, None), tt.n)


def osdv1(tt: TruthTable) -> tuple[int, ...]:
    """``OSDV1`` — restricted to 1-words."""
    return _osdv_from_buckets(sensitivity_buckets(tt, 1), tt.n)


def osdv0(tt: TruthTable) -> tuple[int, ...]:
    """``OSDV0`` — restricted to 0-words."""
    return _osdv_from_buckets(sensitivity_buckets(tt, 0), tt.n)
