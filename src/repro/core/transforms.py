"""The NPN transformation group acting on truth tables.

An NPN transformation is a triple ``(perm, input_phase, output_phase)``
describing input permutation, selective input negation and output negation
(Section II-A of the paper).  Acting on an ``n``-variable function ``f`` it
produces ``g`` with::

    g(x_0, ..., x_{n-1}) = output_phase XOR f(w_0, ..., w_{n-1})
    w_i = x_{perm[i]} XOR input_phase_i

i.e. input ``i`` of ``f`` is driven by variable ``perm[i]`` of ``g``,
optionally complemented, and the output is optionally complemented.  Two
functions are **NPN equivalent** iff some transformation maps one to the
other; dropping output negation gives **PN equivalence** and dropping both
negations gives **P equivalence**.

Transformations form a group of order ``2^(n+1) * n!``; :meth:`compose`
and :meth:`inverse` implement the group operations and
:func:`all_transforms` enumerates the group.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from math import factorial

from repro.core import bitops

__all__ = ["NPNTransform", "all_transforms", "group_order", "random_transform"]


@dataclass(frozen=True)
class NPNTransform:
    """One element of the NPN transformation group.

    Attributes:
        perm: tuple where input ``i`` of the original function reads
            variable ``perm[i]`` of the transformed function.
        input_phase: n-bit word; bit ``i`` complements input ``i`` of the
            original function (the paper's selective negation ``(¬)``).
        output_phase: 1 to complement the output, 0 otherwise.
    """

    perm: tuple[int, ...]
    input_phase: int = 0
    output_phase: int = 0

    def __post_init__(self) -> None:
        n = len(self.perm)
        if sorted(self.perm) != list(range(n)):
            raise ValueError(f"{self.perm!r} is not a permutation")
        if not 0 <= self.input_phase < (1 << n):
            raise ValueError(f"input phase {self.input_phase:#x} needs {n} bits")
        if self.output_phase not in (0, 1):
            raise ValueError("output phase must be 0 or 1")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def identity(cls, n: int) -> "NPNTransform":
        """The neutral element for ``n`` variables."""
        return cls(tuple(range(n)), 0, 0)

    @classmethod
    def from_parts(
        cls,
        perm: tuple[int, ...] | list[int],
        input_phase: int = 0,
        output_phase: int = 0,
    ) -> "NPNTransform":
        """Build a transform, accepting any sequence for ``perm``."""
        return cls(tuple(perm), input_phase, output_phase)

    # ------------------------------------------------------------------
    # Group structure
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of variables the transform acts on."""
        return len(self.perm)

    @property
    def is_identity(self) -> bool:
        return (
            self.perm == tuple(range(self.n))
            and self.input_phase == 0
            and self.output_phase == 0
        )

    def compose(self, other: "NPNTransform") -> "NPNTransform":
        """Transform equivalent to applying ``other`` first, then ``self``.

        ``self.compose(other).apply_table(t, n) ==
        self.apply_table(other.apply_table(t, n), n)`` for every table.
        """
        if self.n != other.n:
            raise ValueError("cannot compose transforms of different arity")
        n = self.n
        perm = tuple(self.perm[other.perm[i]] for i in range(n))
        phase = 0
        for i in range(n):
            bit = (self.input_phase >> other.perm[i]) & 1
            bit ^= (other.input_phase >> i) & 1
            phase |= bit << i
        return NPNTransform(perm, phase, self.output_phase ^ other.output_phase)

    def inverse(self) -> "NPNTransform":
        """The transform undoing ``self``."""
        n = self.n
        inv_perm = [0] * n
        phase = 0
        for i in range(n):
            inv_perm[self.perm[i]] = i
            phase |= ((self.input_phase >> i) & 1) << self.perm[i]
        return NPNTransform(tuple(inv_perm), phase, self.output_phase)

    # ------------------------------------------------------------------
    # Action on truth tables
    # ------------------------------------------------------------------

    def apply_table(self, table: int, n: int) -> int:
        """Apply to a raw integer truth table (see module docstring).

        Cost: O(n) big-int operations — input flips, then the permutation
        as delta swaps, then an optional output complement.
        """
        if n != self.n:
            raise ValueError(f"transform arity {self.n} != table arity {n}")
        out = bitops.flip_inputs(table, n, self.input_phase)
        out = bitops.permute_inputs(out, n, self.perm)
        if self.output_phase:
            out = bitops.flip_output(out, n)
        return out

    def apply_index(self, index: int) -> int:
        """Map a minterm index of the transformed function to the original's.

        If ``g = self(f)`` then ``g(x) = output_phase ^ f(self.apply_index(x))``
        for the word encoded by ``index``.
        """
        src = 0
        for i in range(self.n):
            bit = (index >> self.perm[i]) & 1
            bit ^= (self.input_phase >> i) & 1
            src |= bit << i
        return src

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready form (witness transport for the CLI and library)."""
        return {
            "perm": list(self.perm),
            "input_phase": self.input_phase,
            "output_phase": self.output_phase,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NPNTransform":
        """Inverse of :meth:`as_dict`; validates like the constructor."""
        return cls(
            tuple(data["perm"]),
            int(data.get("input_phase", 0)),
            int(data.get("output_phase", 0)),
        )

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        neg = "".join(
            f"~x{p}" if (self.input_phase >> i) & 1 else f"x{p}"
            for i, p in enumerate(self.perm)
        )
        prefix = "~" if self.output_phase else ""
        return f"{prefix}f({neg})"


def group_order(n: int) -> int:
    """Order of the NPN group on ``n`` variables: ``2^(n+1) * n!``."""
    return (1 << (n + 1)) * factorial(n)


def all_transforms(n: int, include_output: bool = True):
    """Yield every NPN (or NP, if ``include_output`` is false) transform.

    The full group has ``2^(n+1) * n!`` elements; enumeration order is
    deterministic (output phase slowest, then permutation, then phase).
    """
    outputs = (0, 1) if include_output else (0,)
    for output_phase in outputs:
        for perm in itertools.permutations(range(n)):
            for phase in range(1 << n):
                yield NPNTransform(perm, phase, output_phase)


def random_transform(n: int, rng: random.Random) -> NPNTransform:
    """Uniformly random element of the NPN group."""
    perm = tuple(rng.sample(range(n), n))
    return NPNTransform(perm, rng.getrandbits(n) if n else 0, rng.getrandbits(1))
