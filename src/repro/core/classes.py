"""NPN class libraries: orbits, representatives, class enumeration.

Downstream users of an NPN classifier usually want the *library* view:
the set of canonical representatives, the orbit of a function, and how a
function population distributes over classes — e.g. to build the NPN
pattern libraries used by technology mappers and rewriting engines.
Everything here rides on the exact guided canonical form, so the
resulting libraries are exact.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.baselines.guided import guided_exact_canonical
from repro.core.transforms import all_transforms, group_order
from repro.core.truth_table import TruthTable

__all__ = [
    "orbit",
    "orbit_size",
    "stabilizer_order",
    "npn_class_representatives",
    "class_distribution",
    "KNOWN_CLASS_COUNTS",
]

#: Number of NPN classes over ALL n-variable functions (OEIS A000370).
KNOWN_CLASS_COUNTS = {0: 1, 1: 2, 2: 4, 3: 14, 4: 222}


def orbit(tt: TruthTable) -> set[TruthTable]:
    """The full NPN orbit of a function (enumerates the group; n <= 5)."""
    if tt.n > 5:
        raise ValueError("orbit enumeration is exponential; supported for n <= 5")
    return {tt.apply(t) for t in all_transforms(tt.n)}


def orbit_size(tt: TruthTable) -> int:
    """Number of distinct functions NPN-equivalent to ``tt``."""
    return len(orbit(tt))


def stabilizer_order(tt: TruthTable) -> int:
    """Order of the symmetry group of ``tt`` inside the NPN group.

    By orbit-stabilizer: ``|orbit| * |stabilizer| = 2^(n+1) * n!``.
    A large stabiliser means a highly symmetric function.
    """
    size = orbit_size(tt)
    total = group_order(tt.n)
    if total % size:
        raise AssertionError("orbit size must divide the group order")
    return total // size


def npn_class_representatives(n: int) -> list[TruthTable]:
    """Canonical representative of every NPN class of ``n``-variable functions.

    Sweeps the whole ``2^(2^n)`` function space — exact and exhaustive,
    practical for ``n <= 4`` (222 classes, a few tens of seconds in pure
    Python at n = 4).
    """
    if n > 4:
        raise ValueError("representative sweep is doubly exponential; n <= 4 only")
    representatives: set[TruthTable] = set()
    for bits in range(1 << (1 << n)):
        representatives.add(guided_exact_canonical(TruthTable(n, bits)))
    return sorted(representatives)


def class_distribution(tables: Iterable[TruthTable]) -> Counter:
    """How a function population distributes over exact NPN classes.

    Returns a Counter keyed by canonical representative.  The head of the
    distribution is what pattern-library designers care about: which few
    classes dominate real netlists.
    """
    counts: Counter = Counter()
    for tt in tables:
        counts[guided_exact_canonical(tt)] += 1
    return counts
