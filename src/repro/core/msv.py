"""Mixed Signature Vector (MSV) — Algorithm 1, line 6 of the paper.

The MSV concatenates selected signature vectors into one hashable key.
Part names:

========== ==========================================================
``c0``      satisfy count of the phase-normalised function (0-ary OCV)
``ocv1``    ordered 1-ary cofactor vector
``ocv2``    ordered 2-ary cofactor vector
``oiv``     ordered influence vector
``osv``     the split pair ``(OSV1, OSV0)`` as histograms — the paper's
            runtime-saving replacement for the full ``OSV``
``osv_full``  unsplit ``OSV`` histogram (output-negation invariant)
``osdv``    the split pair ``(OSDV1, OSDV0)``
``osdv_full`` unsplit ``OSDV``
``spectral``  sorted absolute Walsh spectrum (extension, not in paper)
========== ==========================================================

Output-negation canonicalisation (Theorems 3-4): for unbalanced functions
the phase with the *smaller* satisfy count is selected and every part is
computed for that polarity; for balanced functions the full key is
evaluated for both polarities and the lexicographically smaller key wins.
This generalises the paper's rule of always storing the smaller of
``OSV1``/``OSV0`` first, and makes the whole key an NPN invariant (the
never-split property the tests enforce).

The complement-polarity key is *derived*, not recomputed: cofactor counts
complement within their face size, influence and the sensitivity profile
are unchanged, and the 0/1-split vectors simply swap.

Key assembly is split from per-function computation so other producers of
the raw characteristics — in particular the batched engine in
:mod:`repro.engine`, which computes them vectorized over a whole packed
batch — build *byte-identical* keys: they fill a :class:`SignaturePieces`
and call :func:`msv_from_pieces`, the exact code path
:func:`compute_msv` uses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core import bitops
from repro.core import characteristics as chars
from repro.core.signatures import _osdv_from_buckets
from repro.core.truth_table import TruthTable

__all__ = [
    "MixedSignature",
    "SignaturePieces",
    "compute_msv",
    "compute_pieces",
    "msv_from_pieces",
    "canonical_key",
    "normalize_parts",
    "PART_NAMES",
    "DEFAULT_PARTS",
]

PART_NAMES = (
    "c0",
    "ocv1",
    "ocv2",
    "ocv3",
    "oiv",
    "osv",
    "osv_full",
    "osdv",
    "osdv_full",
    "spectral",
)

DEFAULT_PARTS = ("c0", "ocv1", "ocv2", "oiv", "osv", "osdv")


@dataclass(frozen=True)
class MixedSignature:
    """Canonical NPN-invariant signature of one Boolean function."""

    n: int
    parts: tuple[str, ...]
    key: tuple

    def digest(self) -> str:
        """Stable 16-hex-digit digest of the key (for logs and storage).

        Memoized on the instance: the ``repr`` of a large nested key
        tuple costs more than the whole gather-kernel witness search, and
        the library match path derives a class id from every query's
        signature.
        """
        cached = getattr(self, "_digest", None)
        if cached is None:
            payload = repr((self.n, self.parts, self.key)).encode()
            cached = hashlib.blake2b(payload, digest_size=8).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached


def normalize_parts(parts) -> tuple[str, ...]:
    """Validate and order a part selection canonically."""
    requested = set(parts)
    unknown = requested - set(PART_NAMES)
    if unknown:
        raise ValueError(f"unknown MSV parts: {sorted(unknown)}")
    if not requested:
        raise ValueError("MSV needs at least one part")
    return tuple(name for name in PART_NAMES if name in requested)


@dataclass
class SignaturePieces:
    """Raw phase-0 characteristics of one function, before key assembly.

    Only the fields needed by the selected parts are filled; the rest stay
    ``None``.  Cofactor tuples are *unsorted* raw counts — sorting happens
    during key assembly, once the output polarity is known.
    """

    n: int
    count: int
    cof1: tuple | None = None
    cof2: tuple | None = None
    cof3: tuple | None = None
    oiv: tuple | None = None
    hist1: tuple | None = None
    hist0: tuple | None = None
    hist_full: tuple | None = None
    osdv1: tuple | None = None
    osdv0: tuple | None = None
    osdv_full: tuple | None = None
    spectral: tuple | None = None

    def key_for_phase(self, selected: tuple[str, ...], phase: int) -> tuple:
        """The concatenated key for output polarity ``phase``.

        ``phase = 1`` describes the complemented function; every part is
        derived from the phase-0 raw pieces (see module docstring).
        """
        n = self.n
        out = []
        for name in selected:
            if name == "c0":
                value = self.count if phase == 0 else (1 << n) - self.count
            elif name == "ocv1":
                value = _sorted_cofactors(self.cof1, 1 << max(n - 1, 0), phase)
            elif name == "ocv2":
                value = _sorted_cofactors(self.cof2, 1 << max(n - 2, 0), phase)
            elif name == "ocv3":
                value = _sorted_cofactors(self.cof3, 1 << max(n - 3, 0), phase)
            elif name == "oiv":
                value = self.oiv
            elif name == "osv":
                value = (
                    (self.hist1, self.hist0)
                    if phase == 0
                    else (self.hist0, self.hist1)
                )
            elif name == "osv_full":
                value = self.hist_full
            elif name == "osdv":
                value = (
                    (self.osdv1, self.osdv0)
                    if phase == 0
                    else (self.osdv0, self.osdv1)
                )
            elif name == "osdv_full":
                value = self.osdv_full
            else:  # spectral
                value = self.spectral
            out.append(value)
        return tuple(out)


def canonical_key(pieces: SignaturePieces, selected: tuple[str, ...]) -> tuple:
    """Phase-canonical key: the output-negation rule of Theorems 3-4."""
    total = 1 << pieces.n
    if 2 * pieces.count > total:
        phases = (1,)
    elif 2 * pieces.count == total:
        phases = (0, 1)
    else:
        phases = (0,)
    return min(pieces.key_for_phase(selected, q) for q in phases)


def msv_from_pieces(
    pieces: SignaturePieces, selected: tuple[str, ...]
) -> MixedSignature:
    """Assemble the canonical :class:`MixedSignature` from raw pieces."""
    return MixedSignature(pieces.n, selected, canonical_key(pieces, selected))


def compute_msv(tt: TruthTable, parts=DEFAULT_PARTS) -> MixedSignature:
    """Compute the MSV of a function for the selected signature parts."""
    selected = normalize_parts(parts)
    return msv_from_pieces(compute_pieces(tt, selected), selected)


def compute_pieces(tt: TruthTable, selected: tuple[str, ...]) -> SignaturePieces:
    """Per-function (big-int kernel) computation of the raw pieces.

    The batched counterpart is ``repro.engine.signatures.batched_pieces``,
    which fills the same container from packed ``uint64`` arrays.
    """
    n = tt.n
    pieces = SignaturePieces(n=n, count=tt.count_ones())
    need = set(selected)
    if "ocv1" in need:
        pieces.cof1 = chars.cofactor_counts_1ary(tt)
    if "ocv2" in need:
        pieces.cof2 = chars.cofactor_counts(tt, 2)
    if "ocv3" in need:
        pieces.cof3 = chars.cofactor_counts(tt, 3)
    if "oiv" in need:
        pieces.oiv = tuple(sorted(chars.influences(tt)))
    profile = ones = None
    if need & {"osv", "osv_full", "osdv", "osdv_full"}:
        profile = chars.sensitivity_profile(tt)
        ones = tt.bit_array().astype(bool)
    if "osv" in need:
        pieces.hist1 = _hist(profile[ones], n)
        pieces.hist0 = _hist(profile[~ones], n)
    if "osv_full" in need:
        pieces.hist_full = _hist(profile, n)
    if "osdv" in need:
        pieces.osdv1 = _osdv_for(profile, ones, n)
        pieces.osdv0 = _osdv_for(profile, ~ones, n)
    if "osdv_full" in need:
        pieces.osdv_full = _osdv_for(profile, np.ones(1 << n, dtype=bool), n)
    if "spectral" in need:
        from repro.spectral.signatures import spectral_signature

        pieces.spectral = spectral_signature(tt)
    return pieces


def _osdv_for(profile: np.ndarray, keep: np.ndarray, n: int) -> tuple[int, ...]:
    buckets = [
        ((profile == level) & keep).astype(np.int64) for level in range(n + 1)
    ]
    return _osdv_from_buckets(buckets, n)


def _hist(values: np.ndarray, n: int) -> tuple[int, ...]:
    return tuple(np.bincount(values, minlength=n + 1).tolist())


def _sorted_cofactors(
    raw: tuple[int, ...], face_size: int, phase: int
) -> tuple[int, ...]:
    if phase == 0:
        return tuple(sorted(raw))
    return tuple(sorted(face_size - c for c in raw))
