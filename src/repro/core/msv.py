"""Mixed Signature Vector (MSV) — Algorithm 1, line 6 of the paper.

The MSV concatenates selected signature vectors into one hashable key.
Part names:

========== ==========================================================
``c0``      satisfy count of the phase-normalised function (0-ary OCV)
``ocv1``    ordered 1-ary cofactor vector
``ocv2``    ordered 2-ary cofactor vector
``oiv``     ordered influence vector
``osv``     the split pair ``(OSV1, OSV0)`` as histograms — the paper's
            runtime-saving replacement for the full ``OSV``
``osv_full``  unsplit ``OSV`` histogram (output-negation invariant)
``osdv``    the split pair ``(OSDV1, OSDV0)``
``osdv_full`` unsplit ``OSDV``
``spectral``  sorted absolute Walsh spectrum (extension, not in paper)
========== ==========================================================

Output-negation canonicalisation (Theorems 3-4): for unbalanced functions
the phase with the *smaller* satisfy count is selected and every part is
computed for that polarity; for balanced functions the full key is
evaluated for both polarities and the lexicographically smaller key wins.
This generalises the paper's rule of always storing the smaller of
``OSV1``/``OSV0`` first, and makes the whole key an NPN invariant (the
never-split property the tests enforce).

The complement-polarity key is *derived*, not recomputed: cofactor counts
complement within their face size, influence and the sensitivity profile
are unchanged, and the 0/1-split vectors simply swap.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core import bitops
from repro.core import characteristics as chars
from repro.core.signatures import _osdv_from_buckets
from repro.core.truth_table import TruthTable

__all__ = ["MixedSignature", "compute_msv", "PART_NAMES", "DEFAULT_PARTS"]

PART_NAMES = (
    "c0",
    "ocv1",
    "ocv2",
    "ocv3",
    "oiv",
    "osv",
    "osv_full",
    "osdv",
    "osdv_full",
    "spectral",
)

DEFAULT_PARTS = ("c0", "ocv1", "ocv2", "oiv", "osv", "osdv")


@dataclass(frozen=True)
class MixedSignature:
    """Canonical NPN-invariant signature of one Boolean function."""

    n: int
    parts: tuple[str, ...]
    key: tuple

    def digest(self) -> str:
        """Stable 16-hex-digit digest of the key (for logs and storage)."""
        payload = repr((self.n, self.parts, self.key)).encode()
        return hashlib.blake2b(payload, digest_size=8).hexdigest()


def normalize_parts(parts) -> tuple[str, ...]:
    """Validate and order a part selection canonically."""
    requested = set(parts)
    unknown = requested - set(PART_NAMES)
    if unknown:
        raise ValueError(f"unknown MSV parts: {sorted(unknown)}")
    if not requested:
        raise ValueError("MSV needs at least one part")
    return tuple(name for name in PART_NAMES if name in requested)


def compute_msv(tt: TruthTable, parts=DEFAULT_PARTS) -> MixedSignature:
    """Compute the MSV of a function for the selected signature parts."""
    selected = normalize_parts(parts)
    n = tt.n
    count = tt.count_ones()
    total = 1 << n

    pieces = _RawPieces(tt, selected)
    if 2 * count > total:
        phases = (1,)
    elif 2 * count == total:
        phases = (0, 1)
    else:
        phases = (0,)
    key = min(pieces.key_for_phase(q) for q in phases)
    return MixedSignature(n, selected, key)


class _RawPieces:
    """Raw characteristics computed once; per-polarity keys derived from them."""

    def __init__(self, tt: TruthTable, selected: tuple[str, ...]) -> None:
        self.n = tt.n
        self.count = tt.count_ones()
        self.selected = selected
        need = set(selected)
        self.cof1 = chars.cofactor_counts_1ary(tt) if "ocv1" in need else None
        self.cof2 = chars.cofactor_counts(tt, 2) if "ocv2" in need else None
        self.cof3 = chars.cofactor_counts(tt, 3) if "ocv3" in need else None
        self.oiv = (
            tuple(sorted(chars.influences(tt))) if "oiv" in need else None
        )
        if need & {"osv", "osv_full", "osdv", "osdv_full"}:
            self.profile = chars.sensitivity_profile(tt)
            self.ones = tt.bit_array().astype(bool)
        else:
            self.profile = None
            self.ones = None
        self.hist1 = self.hist0 = None
        if "osv" in need:
            self.hist1 = _hist(self.profile[self.ones], self.n)
            self.hist0 = _hist(self.profile[~self.ones], self.n)
        self.hist_full = (
            _hist(self.profile, self.n) if "osv_full" in need else None
        )
        self.osdv1 = self.osdv0 = None
        if "osdv" in need:
            self.osdv1 = self._osdv_for(self.ones)
            self.osdv0 = self._osdv_for(~self.ones)
        self.osdv_full = (
            self._osdv_for(np.ones(1 << self.n, dtype=bool))
            if "osdv_full" in need
            else None
        )
        if "spectral" in need:
            from repro.spectral.signatures import spectral_signature

            self.spectral = spectral_signature(tt)
        else:
            self.spectral = None

    def _osdv_for(self, keep: np.ndarray) -> tuple[int, ...]:
        buckets = [
            ((self.profile == level) & keep).astype(np.int64)
            for level in range(self.n + 1)
        ]
        return _osdv_from_buckets(buckets, self.n)

    def key_for_phase(self, phase: int) -> tuple:
        """The concatenated key for output polarity ``phase``.

        ``phase = 1`` describes the complemented function; every part is
        derived from the phase-0 raw pieces (see module docstring).
        """
        n = self.n
        out = []
        for name in self.selected:
            if name == "c0":
                value = self.count if phase == 0 else (1 << n) - self.count
            elif name == "ocv1":
                value = _sorted_cofactors(self.cof1, 1 << max(n - 1, 0), phase)
            elif name == "ocv2":
                value = _sorted_cofactors(self.cof2, 1 << max(n - 2, 0), phase)
            elif name == "ocv3":
                value = _sorted_cofactors(self.cof3, 1 << max(n - 3, 0), phase)
            elif name == "oiv":
                value = self.oiv
            elif name == "osv":
                value = (
                    (self.hist1, self.hist0)
                    if phase == 0
                    else (self.hist0, self.hist1)
                )
            elif name == "osv_full":
                value = self.hist_full
            elif name == "osdv":
                value = (
                    (self.osdv1, self.osdv0)
                    if phase == 0
                    else (self.osdv0, self.osdv1)
                )
            elif name == "osdv_full":
                value = self.osdv_full
            else:  # spectral
                value = self.spectral
            out.append(value)
        return tuple(out)


def _hist(values: np.ndarray, n: int) -> tuple[int, ...]:
    return tuple(np.bincount(values, minlength=n + 1).tolist())


def _sorted_cofactors(
    raw: tuple[int, ...], face_size: int, phase: int
) -> tuple[int, ...]:
    if phase == 0:
        return tuple(sorted(raw))
    return tuple(sorted(face_size - c for c in raw))
