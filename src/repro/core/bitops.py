"""Bit-level kernel for truth tables stored as arbitrary-precision integers.

A truth table of an ``n``-variable Boolean function is a Python ``int`` of
``2**n`` bits.  Bit ``m`` holds ``f((m)_2)`` where ``(m)_2`` is the
little-endian binary code of ``m`` — variable ``x_0`` is the least
significant bit of the minterm index.  This is exactly the convention of
the paper (Section II-A) with variables renumbered from 0.

Everything in this module is a pure function on ``(table, n)`` pairs.  The
routines follow the bitwise-trick style the paper adopts from Hacker's
Delight [17]: variable negation is a masked shift, variable swap is a delta
swap, cofactor counting is a masked popcount.  All operations are O(1) in
the number of big-int words except where noted.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "table_mask",
    "var_mask",
    "all_var_masks",
    "popcount",
    "flip_output",
    "flip_input",
    "flip_inputs",
    "swap_inputs",
    "permute_inputs",
    "permute_inputs_reference",
    "apply_transform_reference",
    "project_cofactor",
    "insert_variable",
    "sensitivity_word",
    "to_bit_array",
    "from_bit_array",
    "to_words",
    "from_words",
    "words_per_table",
    "mask_words",
    "var_mask_words",
    "popcount_table",
    "indices_by_weight",
    "hamming_distance",
    "MAX_VARS",
    "WORD_BITS",
]

#: Practical upper bound on variable count.  2**20-bit integers are still
#: fine, but the quadratic-ish helpers (index tables) stop here.
MAX_VARS = 20

#: Machine-word width of the packed representation used by repro.engine.
WORD_BITS = 64


@lru_cache(maxsize=None)
def table_mask(n: int) -> int:
    """All-ones mask covering a ``2**n``-bit truth table."""
    _check_n(n)
    return (1 << (1 << n)) - 1


@lru_cache(maxsize=None)
def var_mask(n: int, i: int) -> int:
    """Mask of minterm positions where variable ``i`` equals 1.

    The pattern is the truth table of the projection function ``x_i``:
    alternating runs of ``2**i`` zeros and ``2**i`` ones, e.g. for
    ``n=3, i=1`` the mask is ``0b11001100``.
    """
    _check_n(n)
    if not 0 <= i < n:
        raise ValueError(f"variable index {i} out of range for n={n}")
    period = 1 << (i + 1)
    block = ((1 << (1 << i)) - 1) << (1 << i)  # one period: low zeros, high ones
    mask = 0
    for start in range(0, 1 << n, period):
        mask |= block << start
    return mask


@lru_cache(maxsize=None)
def all_var_masks(n: int) -> tuple[int, ...]:
    """Tuple of :func:`var_mask` for every variable of an ``n``-var table."""
    return tuple(var_mask(n, i) for i in range(n))


def popcount(x: int) -> int:
    """Number of set bits (satisfy count when ``x`` is a truth table)."""
    return x.bit_count()


def flip_output(table: int, n: int) -> int:
    """Truth table of ``NOT f`` (output negation)."""
    return table ^ table_mask(n)


def flip_input(table: int, n: int, i: int) -> int:
    """Truth table of ``f`` with variable ``i`` replaced by its complement.

    Swaps every pair of table positions that differ only in index bit ``i``.
    """
    mask_hi = var_mask(n, i)
    shift = 1 << i
    return ((table & mask_hi) >> shift) | ((table & ~mask_hi & table_mask(n)) << shift)


def flip_inputs(table: int, n: int, phase: int) -> int:
    """Apply :func:`flip_input` for every variable whose bit is set in ``phase``.

    ``phase`` is an ``n``-bit selective-negation word — the paper's
    ``(¬)X`` notation encoded as an integer.
    """
    for i in range(n):
        if (phase >> i) & 1:
            table = flip_input(table, n, i)
    return table


def swap_inputs(table: int, n: int, i: int, j: int) -> int:
    """Truth table of ``f`` with variables ``i`` and ``j`` exchanged.

    Implemented as a delta swap: table positions with ``x_i=1, x_j=0``
    exchange with their mirror ``x_i=0, x_j=1`` positions, which sit at a
    fixed offset ``2**j - 2**i``.
    """
    if i == j:
        return table
    if i > j:
        i, j = j, i
    shift = (1 << j) - (1 << i)
    # Positions with x_i = 1 and x_j = 0 (the "low" side of each swap pair).
    low_side = var_mask(n, i) & ~var_mask(n, j)
    delta = ((table >> shift) ^ table) & low_side
    return table ^ delta ^ (delta << shift)


def permute_inputs(table: int, n: int, perm: tuple[int, ...]) -> int:
    """Reorder variables so that position ``i`` of the result reads ``perm[i]``.

    Semantics: ``g = permute_inputs(f, n, perm)`` satisfies
    ``g(x_0, ..., x_{n-1}) = f(x_perm[0], ..., x_perm[n-1])``.

    Decomposed into O(n) delta swaps (selection placement), so the cost is
    O(n) big-int operations rather than a ``2**n`` Python loop.
    """
    _check_perm(perm, n)
    # Applying swap_inputs(h, e, p) to h = permute(f, E) yields
    # permute(f, tau o E) where tau is the value transposition (e p).
    # Greedily fix slot k: swap the value currently at slot k with the
    # value perm[k]; earlier slots are untouched because both values can
    # only occur at slots >= k.
    effective = list(range(n))  # effective[slot] = f-variable read at slot
    slot_of = list(range(n))  # slot_of[v] = slot where value v currently sits
    for slot in range(n):
        have = effective[slot]
        want = perm[slot]
        if have == want:
            continue
        table = swap_inputs(table, n, have, want)
        other_slot = slot_of[want]
        effective[slot], effective[other_slot] = want, have
        slot_of[want], slot_of[have] = slot, other_slot
    return table


def permute_inputs_reference(table: int, n: int, perm: tuple[int, ...]) -> int:
    """O(2**n) reference implementation of :func:`permute_inputs`."""
    _check_perm(perm, n)
    out = 0
    for m in range(1 << n):
        src = 0
        for i in range(n):
            if (m >> perm[i]) & 1:
                src |= 1 << i
        if (table >> src) & 1:
            out |= 1 << m
    return out


def apply_transform_reference(
    table: int,
    n: int,
    perm: tuple[int, ...],
    input_phase: int,
    output_phase: int,
) -> int:
    """O(2**n) reference for a full NPN transform.

    ``g(x) = output_phase XOR f(w)`` with ``w_i = x_perm[i] XOR phase_i``.
    The fast path lives in :mod:`repro.core.transforms`; this function is
    the oracle that property tests compare against.
    """
    _check_perm(perm, n)
    out = 0
    for m in range(1 << n):
        src = 0
        for i in range(n):
            bit = (m >> perm[i]) & 1
            bit ^= (input_phase >> i) & 1
            if bit:
                src |= 1 << i
        value = (table >> src) & 1
        value ^= output_phase & 1
        if value:
            out |= 1 << m
    return out


def project_cofactor(table: int, n: int, i: int, value: int) -> int:
    """Cofactor ``f|x_i=value`` as a ``2**(n-1)``-bit table over the rest.

    The remaining variables keep their relative order (variables above
    ``i`` shift down by one).  Cost: O(2**(n-1-i)) big-int operations.
    """
    if not 0 <= i < n:
        raise ValueError(f"variable index {i} out of range for n={n}")
    if value not in (0, 1):
        raise ValueError("cofactor value must be 0 or 1")
    step = 1 << i
    chunk = (1 << step) - 1
    src = table >> (step if value else 0)
    out = 0
    for b in range(1 << (n - 1 - i)) if n > i + 1 else range(1):
        out |= ((src >> (b * 2 * step)) & chunk) << (b * step)
    return out if n > 1 else out & 1


def insert_variable(table: int, n: int, i: int) -> int:
    """Inverse-ish of :func:`project_cofactor`: add a don't-care variable.

    Returns the ``2**(n+1)``-bit table of the ``(n+1)``-variable function
    that ignores its new variable ``i`` and computes ``f`` on the others.
    """
    if not 0 <= i <= n:
        raise ValueError(f"insertion index {i} out of range for n={n}")
    step = 1 << i
    chunk = (1 << step) - 1
    out = 0
    for b in range(1 << (n - i)) if n > i else range(1):
        piece = (table >> (b * step)) & chunk
        out |= (piece | (piece << step)) << (b * 2 * step)
    return out


def sensitivity_word(table: int, n: int, i: int) -> int:
    """Bit vector marking words where ``f`` is sensitive at variable ``i``.

    Bit ``m`` of the result is 1 iff ``f(m) != f(m ^ 2**i)`` — the paper's
    Definition 3 evaluated at every word simultaneously.  The popcount of
    this word is twice the (integer) influence of variable ``i``.
    """
    return table ^ flip_input(table, n, i)


def to_bit_array(table: int, n: int) -> np.ndarray:
    """Truth table as a ``uint8`` numpy array of length ``2**n`` (bit ``m`` first)."""
    _check_n(n)
    nbytes = max(1, (1 << n) // 8)
    raw = np.frombuffer(table.to_bytes(nbytes, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[: 1 << n]


def from_bit_array(bits: np.ndarray) -> int:
    """Inverse of :func:`to_bit_array`."""
    packed = np.packbits(np.asarray(bits, dtype=np.uint8), bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def words_per_table(n: int) -> int:
    """Number of 64-bit words a ``2**n``-bit truth table packs into.

    Tables of fewer than 64 bits occupy the low bits of a single word.
    """
    _check_n(n)
    return max(1, (1 << n) // WORD_BITS)


def to_words(table: int, n: int) -> np.ndarray:
    """Truth table as a little-endian ``uint64`` word array.

    Word ``w`` holds minterms ``64*w .. 64*w + 63`` (minterm ``m`` at bit
    ``m % 64``) — the packed representation the batched engine operates
    on.  Length is :func:`words_per_table`.
    """
    count = words_per_table(n)
    raw = table.to_bytes(count * 8, "little")
    return np.frombuffer(raw, dtype="<u8").copy()


def from_words(words: np.ndarray, n: int) -> int:
    """Inverse of :func:`to_words`."""
    count = words_per_table(n)
    arr = np.ascontiguousarray(np.asarray(words, dtype="<u8"))
    if arr.shape != (count,):
        raise ValueError(f"expected {count} words for n={n}, got {arr.shape}")
    return int.from_bytes(arr.tobytes(), "little") & table_mask(n)


def mask_words(mask: int, n: int) -> np.ndarray:
    """Arbitrary ``2**n``-bit mask in packed word form (cacheable helper)."""
    return to_words(mask & table_mask(n), n)


@lru_cache(maxsize=None)
def var_mask_words(n: int, i: int) -> np.ndarray:
    """:func:`var_mask` in packed word form (read-only cached array)."""
    words = mask_words(var_mask(n, i), n)
    words.setflags(write=False)
    return words


@lru_cache(maxsize=None)
def popcount_table(n: int) -> np.ndarray:
    """``popcount_table(n)[m]`` is the Hamming weight of index ``m < 2**n``."""
    _check_n(n)
    counts = np.zeros(1 << n, dtype=np.int64)
    for i in range(n):
        counts += (np.arange(1 << n) >> i) & 1
    return counts


@lru_cache(maxsize=None)
def indices_by_weight(n: int) -> tuple[np.ndarray, ...]:
    """Tuple indexed by weight ``w``: the minterm indices of weight ``w``."""
    counts = popcount_table(n)
    return tuple(np.flatnonzero(counts == w) for w in range(n + 1))


def hamming_distance(x: int, y: int) -> int:
    """Hamming distance between two minterm indices (Definition 9)."""
    return (x ^ y).bit_count()


def _check_n(n: int) -> None:
    if not 0 <= n <= MAX_VARS:
        raise ValueError(f"variable count {n} outside supported range 0..{MAX_VARS}")


def _check_perm(perm: tuple[int, ...], n: int) -> None:
    if len(perm) != n or sorted(perm) != list(range(n)):
        raise ValueError(f"{perm!r} is not a permutation of range({n})")
