"""Face and point characteristics of Boolean functions (paper Section II).

Three families of raw quantities, before any sorting into signature
vectors:

* **cofactor** satisfy counts — *face* characteristics: a cofactor is a
  face of the hypercube and its satisfy count is the number of 1-minterms
  on that face (Definitions 1-2);
* **sensitivity** — *point* characteristics: for a word ``X``, how many
  neighbouring points take a different value (Definitions 3-4);
* **influence** — *point-face* characteristics: for a variable ``i``, how
  many words are sensitive at ``i``, i.e. how much two opposite faces
  disagree (Definition 5).

The integer influence convention follows the paper's footnote 1:
``inf(f, i) = |{X : f(X) != f(X^i)}| / 2`` — always an integer because
sensitive words come in pairs.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core import bitops
from repro.core.truth_table import TruthTable

__all__ = [
    "cofactor_count",
    "cofactor_counts_1ary",
    "cofactor_counts",
    "is_sensitive_at",
    "local_sensitivity",
    "sensitivity_profile",
    "sensitivity",
    "sensitivity01",
    "influence",
    "influences",
    "total_influence",
    "influence_fraction",
]


# ----------------------------------------------------------------------
# Face characteristics — cofactor satisfy counts (Definitions 1-2)
# ----------------------------------------------------------------------


def cofactor_count(tt: TruthTable, variables: tuple[int, ...], values: int) -> int:
    """Satisfy count of the cofactor w.r.t. ``variables`` fixed to ``values``.

    ``values`` packs one bit per entry of ``variables`` (bit ``k`` is the
    value assigned to ``variables[k]``).  The 0-ary cofactor signature
    (empty ``variables``) is the plain satisfy count ``|f|``.
    """
    mask = bitops.table_mask(tt.n)
    for k, i in enumerate(variables):
        var = bitops.var_mask(tt.n, i)
        mask &= var if (values >> k) & 1 else ~var
    return bitops.popcount(tt.bits & mask)


def cofactor_counts_1ary(tt: TruthTable) -> tuple[int, ...]:
    """All ``2n`` 1-ary cofactor counts, ordered ``(x0=0, x0=1, x1=0, ...)``."""
    counts = []
    full = bitops.table_mask(tt.n)
    for i in range(tt.n):
        mask = bitops.var_mask(tt.n, i)
        counts.append(bitops.popcount(tt.bits & ~mask & full))
        counts.append(bitops.popcount(tt.bits & mask))
    return tuple(counts)


def cofactor_counts(tt: TruthTable, ell: int) -> tuple[int, ...]:
    """All ``C(n, ell) * 2^ell`` ``ell``-ary cofactor counts.

    Deterministic order: variable subsets in lexicographic order, then
    value assignments in ascending binary order.  ``ell = 0`` returns the
    single satisfy count.
    """
    if ell < 0:
        raise ValueError(f"cofactor arity {ell} must be non-negative")
    counts = []  # empty when ell > n: no variable subsets of that size exist
    for subset in itertools.combinations(range(tt.n), ell):
        for values in range(1 << ell):
            counts.append(cofactor_count(tt, subset, values))
    return tuple(counts)


# ----------------------------------------------------------------------
# Point characteristics — sensitivity (Definitions 3-4)
# ----------------------------------------------------------------------


def is_sensitive_at(tt: TruthTable, word: int, i: int) -> bool:
    """Definition 3: does flipping ``x_i`` at ``word`` flip the output?"""
    return tt.evaluate(word) != tt.evaluate(word ^ (1 << i))


def local_sensitivity(tt: TruthTable, word: int) -> int:
    """Definition 4: ``sen(f, X)`` — number of sensitive literals at ``X``."""
    return sum(is_sensitive_at(tt, word, i) for i in range(tt.n))


def sensitivity_profile(tt: TruthTable) -> np.ndarray:
    """``sen(f, X)`` for every word ``X``, as an int64 array of length 2^n.

    Vectorised: variable ``i`` contributes its sensitivity word (an XOR of
    the table with its ``x_i``-flipped self) and the per-word counts are
    the bitwise sum over variables.
    """
    total = np.zeros(1 << tt.n, dtype=np.int64)
    for i in range(tt.n):
        word = bitops.sensitivity_word(tt.bits, tt.n, i)
        total += bitops.to_bit_array(word, tt.n)
    return total


def sensitivity(tt: TruthTable) -> int:
    """Global sensitivity ``sen(f) = max_X sen(f, X)``."""
    if tt.n == 0:
        return 0
    return int(sensitivity_profile(tt).max())


def sensitivity01(tt: TruthTable) -> tuple[int, int]:
    """``(sen0(f), sen1(f))`` — maxima over 0-words and 1-words.

    A constant side contributes 0 (no words of that value exist only for
    constant functions, where the paper's max over an empty set is taken
    as 0).
    """
    profile = sensitivity_profile(tt)
    ones = tt.bit_array().astype(bool)
    sen0 = int(profile[~ones].max()) if (~ones).any() else 0
    sen1 = int(profile[ones].max()) if ones.any() else 0
    return sen0, sen1


# ----------------------------------------------------------------------
# Point-face characteristics — influence (Definition 5)
# ----------------------------------------------------------------------


def influence(tt: TruthTable, i: int) -> int:
    """Integer influence of variable ``i`` (paper footnote 1 convention).

    Half the number of words where ``f`` is sensitive at ``x_i``; the true
    probability of Definition 5 is this value divided by ``2^(n-1)``.
    """
    word = bitops.sensitivity_word(tt.bits, tt.n, i)
    count = bitops.popcount(word)
    return count // 2


def influences(tt: TruthTable) -> tuple[int, ...]:
    """Integer influence of every variable, in variable order."""
    return tuple(influence(tt, i) for i in range(tt.n))


def total_influence(tt: TruthTable) -> int:
    """``inf(f) = sum_i inf(f, i)`` in the integer convention.

    Equals half the sum of all local sensitivities — the average
    sensitivity relation the property tests check.
    """
    return sum(influences(tt))


def influence_fraction(tt: TruthTable, i: int) -> float:
    """Definition 5 verbatim: ``Pr_X[f(X) != f(X^i)]``."""
    return influence(tt, i) / (1 << (tt.n - 1)) if tt.n else 0.0
