"""Core substrate: truth tables, NPN transforms, characteristics, signatures."""

from repro.core.truth_table import TruthTable
from repro.core.transforms import NPNTransform

__all__ = ["TruthTable", "NPNTransform"]
