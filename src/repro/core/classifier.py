"""The face/point NPN classifier — Algorithm 1 of the paper.

For every input truth table the classifier computes the selected signature
vectors, assembles the Mixed Signature Vector, and buckets functions by
hashing it.  No transformation enumeration is performed, so (Section V-C)
the runtime is linear in the number of functions and independent of the
functions' symmetry structure.

The classifier is *sound but not exact*: equal signatures are a necessary
condition for NPN equivalence, so NPN-equivalent functions always share a
bucket (the never-split invariant), while rare non-equivalent collisions
may merge buckets.  ``#classes <= #exact classes`` always holds.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.msv import DEFAULT_PARTS, MixedSignature, compute_msv, normalize_parts
from repro.core.truth_table import TruthTable

__all__ = ["FacePointClassifier", "ClassificationResult"]


@dataclass
class ClassificationResult:
    """Outcome of one classification run."""

    parts: tuple[str, ...]
    groups: dict[MixedSignature, list[TruthTable]] = field(default_factory=dict)

    @property
    def num_classes(self) -> int:
        return len(self.groups)

    @property
    def num_functions(self) -> int:
        return sum(len(members) for members in self.groups.values())

    def representatives(self) -> list[TruthTable]:
        """The first-seen member of every class."""
        return [members[0] for members in self.groups.values()]

    def class_sizes(self) -> list[int]:
        """Class sizes, descending."""
        return sorted((len(m) for m in self.groups.values()), reverse=True)

    def class_of(self, tt: TruthTable) -> list[TruthTable]:
        """All classified functions sharing ``tt``'s signature."""
        return self.groups.get(compute_msv(tt, self.parts), [])

    def buckets_digest(self) -> str:
        """Order-sensitive digest of the complete grouping.

        Covers group insertion order, member order and every member's
        table — equal digests mean byte-identical buckets.  Used to check
        that alternative engines (``repro.engine.BatchedClassifier``)
        reproduce this classifier's output exactly.
        """
        payload = repr(
            (
                self.parts,
                [
                    (signature.key, [(tt.n, tt.bits) for tt in members])
                    for signature, members in self.groups.items()
                ],
            )
        ).encode()
        return hashlib.blake2b(payload, digest_size=16).hexdigest()

    def merged_with(self, other: "ClassificationResult") -> "ClassificationResult":
        """Union of two runs over the same parts."""
        if other.parts != self.parts:
            raise ValueError("cannot merge results with different MSV parts")
        merged = ClassificationResult(self.parts, dict(self.groups))
        for signature, members in other.groups.items():
            merged.groups.setdefault(signature, []).extend(members)
        return merged


class FacePointClassifier:
    """NPN classifier driven purely by signature vectors (Algorithm 1).

    Args:
        parts: which signature vectors make up the MSV.  Defaults to the
            paper's full combination ``(c0, ocv1, ocv2, oiv, osv, osdv)``
            — the "All" column of Table II.  Passing a subset reproduces
            the other columns.

    Example:
        >>> from repro import TruthTable
        >>> clf = FacePointClassifier()
        >>> maj = TruthTable.majority(3)
        >>> result = clf.classify([maj, ~maj, maj.flip_input(1)])
        >>> result.num_classes
        1
    """

    def __init__(self, parts: Iterable[str] = DEFAULT_PARTS) -> None:
        self.parts = normalize_parts(parts)

    def signature(self, tt: TruthTable) -> MixedSignature:
        """The MSV of one function under this classifier's part selection."""
        return compute_msv(tt, self.parts)

    def signatures(self, tables: Iterable[TruthTable]) -> list[MixedSignature]:
        """MSVs of many functions, in input order.

        The bulk entry point every engine shares (the batched engine
        overrides it with a vectorized pass); here it is a plain loop.
        """
        return [self.signature(tt) for tt in tables]

    def classify(self, tables: Iterable[TruthTable]) -> ClassificationResult:
        """Group functions into NPN classes by signature hashing."""
        result = ClassificationResult(self.parts)
        groups = result.groups
        for tt in tables:
            groups.setdefault(self.signature(tt), []).append(tt)
        return result

    def count_classes(self, tables: Iterable[TruthTable]) -> int:
        """Number of classes without retaining group membership (low memory)."""
        return len({self.signature(tt) for tt in tables})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FacePointClassifier(parts={self.parts})"
