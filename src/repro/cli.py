"""Command-line interface: ``python -m repro`` / ``repro-npn``.

Subcommands:

* ``classify``   — NPN-classify truth tables from a file or stdin;
* ``signatures`` — print every signature vector of one function;
* ``suite``      — show the EPFL-like benchmark suite;
* ``extract``    — run the cut-function extraction pipeline;
* ``library``    — build/inspect/query a persistent NPN class library
  (``library build | stats | match | compact``);
* ``serve``      — run the online classification daemon on a library
  (``--learn`` mints classes for unmatched queries into a WAL);
* ``router``     — run the fabric router fronting a worker fleet;
* ``worker``     — run one fabric worker serving its consistent-hash
  shard of a library, registered with a router;
* ``query``      — talk to a running daemon or router (``query match |
  classify | stats | ping``);
* ``cutmatch``   — enumerate AIG cuts and match them against a library;
* ``table1 | table2 | table3 | fig5 | fig34`` — regenerate the paper's
  tables and figures at a chosen scale.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import format_table
from repro.baselines.base import registered_classifiers
from repro.core.truth_table import TruthTable
from repro.engine import ENGINE_NAMES
from repro.service.coalescer import SERVICE_ENGINES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-npn",
        description="Face/point-characteristic NPN classification (DATE 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    classify = sub.add_parser("classify", help="classify truth tables from a file")
    classify.add_argument("file", help="one table per line (hex or binary); '-' for stdin")
    classify.add_argument(
        "--method",
        default="ours",
        choices=sorted(registered_classifiers()),
        help="classifier to use",
    )
    classify.add_argument(
        "--engine",
        default="perfn",
        choices=ENGINE_NAMES,
        help="engine for --method ours: one function at a time (perfn), "
        "the packed/vectorized batch engine (batched), the multi-process "
        "sharded engine (sharded), or the signature-prefiltered exact "
        "canonical-form engine (canonical)",
    )
    classify.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --engine sharded (default: all CPUs)",
    )
    _add_transport_flags(classify)
    classify.add_argument(
        "--show-classes", action="store_true", help="print class members"
    )

    signatures = sub.add_parser("signatures", help="signature vectors of one function")
    signatures.add_argument("table", help="truth table (binary, or hex with 0x prefix)")
    signatures.add_argument("--n", type=int, help="variable count (needed for hex)")

    sub.add_parser("suite", help="summarise the EPFL-like benchmark suite")

    extract = sub.add_parser("extract", help="extract cut functions from the suite")
    extract.add_argument("--sizes", default="4,5,6", help="comma-separated cut sizes")
    extract.add_argument("--scale", type=int, default=1, help="suite scale factor")
    extract.add_argument("--limit", type=int, default=None, help="cap per size")

    canonical = sub.add_parser(
        "canonical", help="exact NPN canonical form of one function"
    )
    canonical.add_argument("table", help="truth table (binary, or hex with 0x prefix)")
    canonical.add_argument("--n", type=int, help="variable count (needed for hex)")
    canonical.add_argument(
        "--search-stats",
        action="store_true",
        help="run the influence-guided scalar search and report how many "
        "permutations/phase candidates it actually materialized",
    )

    match = sub.add_parser("match", help="find an NPN transform between two functions")
    match.add_argument("source", help="source truth table")
    match.add_argument("target", help="target truth table")
    match.add_argument("--n", type=int, help="variable count (needed for hex)")

    library = sub.add_parser(
        "library", help="persistent NPN class library (build | stats | match)"
    )
    lib_sub = library.add_subparsers(dest="library_command", required=True)
    lib_build = lib_sub.add_parser(
        "build", help="classify a corpus and save the class library"
    )
    lib_build.add_argument(
        "--inputs",
        default="4",
        help="arities to cover, comma-separated (items are N or A-B ranges); "
        "arities <= 4 are enumerated exhaustively, larger ones sampled",
    )
    lib_build.add_argument(
        "--samples",
        type=int,
        default=20000,
        help="random functions drawn per arity above 4 (default 20000)",
    )
    lib_build.add_argument("--seed", type=int, default=2023, help="sampling seed")
    lib_build.add_argument(
        "--out", default="npn_library", help="output directory (default npn_library)"
    )
    lib_build.add_argument(
        "--engine",
        default="batched",
        choices=ENGINE_NAMES,
        help="classification engine (every engine builds the same library)",
    )
    lib_build.add_argument(
        "--workers", type=int, default=None, help="workers for --engine sharded"
    )
    lib_build.add_argument(
        "--id-scheme",
        default="canonical",
        choices=("canonical", "digest"),
        help="class-id scheme: orbit-canonical ids (default) or the "
        "legacy signature-digest ids with overflow slots",
    )
    _add_transport_flags(lib_build)
    lib_stats = lib_sub.add_parser("stats", help="summarise a saved library")
    lib_stats.add_argument(
        "--library", default="npn_library", help="library directory"
    )
    lib_compact = lib_sub.add_parser(
        "compact",
        help="merge write-ahead segments (from serve --learn) into the "
        "library image and delete them",
    )
    lib_compact.add_argument(
        "--library", default="npn_library", help="library directory"
    )
    lib_match = lib_sub.add_parser(
        "match", help="resolve a function to its class id + witness transform"
    )
    lib_match.add_argument("table", help="truth table (binary, or hex with 0x prefix)")
    lib_match.add_argument("--n", type=int, help="variable count (needed for hex)")
    lib_match.add_argument(
        "--library", default="npn_library", help="library directory"
    )

    serve = sub.add_parser(
        "serve", help="run the online classification daemon on a library"
    )
    serve.add_argument(
        "--library", default="npn_library", help="library directory to serve"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8355, help="bind port (0 picks a free one)"
    )
    serve.add_argument(
        "--engine",
        default="batched",
        choices=SERVICE_ENGINES,
        help="in-process signature engine (sharded runs as many daemons)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="most requests coalesced into one engine batch (1 disables)",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="how long a non-full batch waits for stragglers",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=8192,
        help="request queue bound; beyond it clients get 'overloaded'",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1 << 16,
        help="LRU match-cache capacity (0 disables)",
    )
    serve.add_argument(
        "--learn",
        action="store_true",
        help="learn on miss: mint a class for every unmatched query, "
        "write-ahead log it, and compact into the library on drain",
    )
    serve.add_argument(
        "--wal-segment-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="active WAL segment size that trips an automatic "
        "compaction (requires --learn; default 1 MiB)",
    )
    serve.add_argument(
        "--wal-fsync",
        default=None,
        choices=("always", "close", "never"),
        help="WAL durability: fsync every record, only on segment "
        "close (default), or never (requires --learn)",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="requests slower than this end-to-end land in the "
        "slow-request log (default 250; <= 0 disables the slow log)",
    )
    serve.add_argument(
        "--trace-sample",
        type=int,
        default=None,
        metavar="N",
        help="trace span detail for every N-th request "
        "(default 8; 1 traces every request)",
    )

    router = sub.add_parser(
        "router",
        help="run the fabric router: clients in front, a registered "
        "worker fleet behind a consistent-hash ring",
    )
    router.add_argument("--host", default="127.0.0.1", help="bind address")
    router.add_argument(
        "--port", type=int, default=8455, help="bind port (0 picks a free one)"
    )
    router.add_argument(
        "--attempts",
        type=int,
        default=3,
        help="dispatch tries per request (1 disables retrying)",
    )
    router.add_argument(
        "--base-ms",
        type=float,
        default=25.0,
        help="first retry's backoff ceiling (capped exponential, full jitter)",
    )
    router.add_argument(
        "--cap-ms", type=float, default=500.0, help="backoff delay cap"
    )
    router.add_argument(
        "--timeout-ms",
        type=float,
        default=5000.0,
        help="per-attempt deadline for one worker round trip",
    )
    router.add_argument(
        "--heartbeat-interval-s",
        type=float,
        default=1.0,
        help="cadence workers are told to heartbeat at",
    )
    router.add_argument(
        "--suspect-misses",
        type=int,
        default=3,
        help="missed heartbeat intervals before a worker is suspected",
    )
    router.add_argument(
        "--evict-misses",
        type=int,
        default=8,
        help="missed heartbeat intervals before a worker is evicted",
    )
    router.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="slow-request log threshold (default 250; <= 0 disables)",
    )
    router.add_argument(
        "--trace-sample",
        type=int,
        default=None,
        metavar="N",
        help="trace span detail for every N-th request (default 8)",
    )

    worker = sub.add_parser(
        "worker",
        help="run one fabric worker: a classification daemon serving its "
        "consistent-hash shard, registered with a router",
    )
    worker.add_argument(
        "--id",
        dest="worker_id",
        required=True,
        help="this worker's ring identity (must appear in --ring)",
    )
    worker.add_argument(
        "--ring",
        required=True,
        help="comma-separated worker ids forming the ring (identical for "
        "every worker and adopted by the router)",
    )
    worker.add_argument(
        "--library",
        default="npn_library",
        help="library directory; this worker serves only its shard of it",
    )
    worker.add_argument(
        "--router",
        default="127.0.0.1:8455",
        dest="router_addr",
        help="router address host:port (registration + heartbeats)",
    )
    worker.add_argument("--host", default="127.0.0.1", help="bind address")
    worker.add_argument(
        "--port", type=int, default=0, help="bind port (default 0: free port)"
    )
    worker.add_argument(
        "--vnodes",
        type=int,
        default=64,
        help="virtual nodes per worker on the ring",
    )
    worker.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="distinct workers holding each shard (owner + successors)",
    )
    worker.add_argument(
        "--engine",
        default="batched",
        choices=SERVICE_ENGINES,
        help="in-process signature engine",
    )
    worker.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="most requests coalesced into one engine batch",
    )
    worker.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="how long a non-full batch waits for stragglers",
    )

    query = sub.add_parser(
        "query", help="query a running daemon (match | classify | stats | ping)"
    )
    query_sub = query.add_subparsers(dest="query_command", required=True)
    for name, description in (
        ("match", "resolve a function to class id + witness transform"),
        ("classify", "signature class id of a function (no witness)"),
    ):
        q = query_sub.add_parser(name, help=description)
        q.add_argument("table", help="truth table (binary, or hex with 0x prefix)")
        q.add_argument("--n", type=int, help="variable count (needed for hex)")
        q.add_argument(
            "--addr", default="127.0.0.1:8355", help="daemon address host:port"
        )
    for name, description in (
        ("stats", "print the daemon's metrics snapshot"),
        ("ping", "liveness check"),
    ):
        q = query_sub.add_parser(name, help=description)
        q.add_argument(
            "--addr", default="127.0.0.1:8355", help="daemon address host:port"
        )
        if name == "stats":
            q.add_argument(
                "--prometheus",
                action="store_true",
                help="print the daemon's GET /metrics text exposition "
                "instead of the JSON snapshot",
            )
        if name == "ping":
            q.add_argument(
                "--retries",
                type=int,
                default=0,
                help="retry an unreachable daemon this many times "
                "(waiting out a slow start)",
            )
            q.add_argument(
                "--backoff-ms",
                type=float,
                default=100.0,
                help="first retry's backoff ceiling; delays grow "
                "capped-exponentially with full jitter",
            )
    query_trace = query_sub.add_parser(
        "trace", help="recent per-request traces from the daemon"
    )
    query_trace.add_argument(
        "--addr", default="127.0.0.1:8355", help="daemon address host:port"
    )
    query_trace.add_argument(
        "--limit", type=int, default=20, help="most recent traces to fetch"
    )
    query_trace.add_argument(
        "--slow",
        action="store_true",
        help="show the slow-request ring instead of all recent traces",
    )
    query_trace.add_argument(
        "--json",
        action="store_true",
        help="dump the raw /v1/trace/recent JSON instead of one line "
        "per trace",
    )

    cutmatch = sub.add_parser(
        "cutmatch",
        help="enumerate AIG cuts and match every cut function against a library",
    )
    cutmatch.add_argument(
        "--library", default="npn_library", help="library directory"
    )
    cutmatch.add_argument(
        "--sizes", default="4", help="comma-separated cut sizes (default 4)"
    )
    cutmatch.add_argument("--scale", type=int, default=1, help="suite scale factor")
    cutmatch.add_argument(
        "--circuits",
        default=None,
        help="comma-separated subset of suite circuits (default: all)",
    )
    cutmatch.add_argument(
        "--max-cuts", type=int, default=16, help="priority cuts kept per node"
    )
    cutmatch.add_argument(
        "--top", type=int, default=10, help="most-hit classes to report"
    )

    for name, description in (
        ("table1", "signature vectors of f1/f3 (paper Table I)"),
        ("table2", "signature-vector ablation (paper Table II)"),
        ("table3", "classifier comparison (paper Table III)"),
        ("fig5", "runtime stability (paper Fig. 5)"),
        ("fig34", "discrimination witnesses (paper Figs. 3-4)"),
    ):
        cmd = sub.add_parser(name, help=description)
        if name in ("table2", "table3", "fig5"):
            cmd.add_argument(
                "--scale",
                default=None,
                choices=("smoke", "small", "paper"),
                help="workload scale (default: REPRO_BENCH_SCALE or small)",
            )
        if name in ("table2", "table3"):
            cmd.add_argument(
                "--no-exact",
                action="store_true",
                help="skip the exact-class ground-truth column",
            )
        if name in ("table3", "fig5"):
            cmd.add_argument(
                "--sharded-workers",
                type=int,
                default=None,
                metavar="N",
                help="also run the multi-process sharded engine with N workers",
            )
    return parser


def _add_transport_flags(cmd) -> None:
    """``--shm``/``--no-shm``: the sharded engine's transport escape hatch."""
    group = cmd.add_mutually_exclusive_group()
    group.add_argument(
        "--shm",
        dest="transport",
        action="store_const",
        const="shm",
        default=None,
        help="force the zero-copy shared-memory shard transport "
        "(--engine sharded only; the default where available)",
    )
    group.add_argument(
        "--no-shm",
        dest="transport",
        action="store_const",
        const="pickle",
        help="pickle shard buffers through pipes instead of shared "
        "memory (--engine sharded only; for hosts without /dev/shm "
        "or with restrictive shm limits)",
    )


def parse_tables(lines, n_hint: int | None = None) -> list[TruthTable]:
    """Parse one truth table per line (binary, or hex needing ``n``)."""
    tables = []
    for raw in lines:
        text = raw.strip()
        if not text or text.startswith("#"):
            continue
        tables.append(_parse_one(text, n_hint))
    return tables


def _parse_one(text: str, n_hint: int | None) -> TruthTable:
    # One grammar for every entry path: the CLI parses tables exactly
    # like a service request payload does.
    from repro.service.protocol import parse_table_text

    return parse_table_text(text, n_hint)


#: Flag name and recovery hint for the experiment commands' worker knob
#: (omitting it skips the sharded column, unlike classify's --workers).
_SHARDED_WORKERS_HINT = (
    "--sharded-workers",
    "omit the flag to skip the sharded engine",
)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    command = args.command

    if command == "classify":
        return _cmd_classify(args)
    if command == "signatures":
        return _cmd_signatures(args)
    if command == "suite":
        return _cmd_suite()
    if command == "canonical":
        return _cmd_canonical(args)
    if command == "match":
        return _cmd_match(args)
    if command == "library":
        return _cmd_library(args)
    if command == "serve":
        return _cmd_serve(args)
    if command == "router":
        return _cmd_router(args)
    if command == "worker":
        return _cmd_worker(args)
    if command == "query":
        return _cmd_query(args)
    if command == "cutmatch":
        return _cmd_cutmatch(args)
    if command == "extract":
        return _cmd_extract(args)
    if command == "table1":
        from repro.experiments.table1 import run_table1

        print(format_table(run_table1(), title="Table I — signature vectors"))
        return 0
    if command == "table2":
        from repro.experiments.table2 import run_table2

        rows = run_table2(args.scale, exact=not args.no_exact)
        print(format_table(rows, title="Table II — signature-vector ablation"))
        return 0
    if command == "table3":
        from repro.experiments.table3 import run_table3

        if _bad_worker_count(args.sharded_workers, *_SHARDED_WORKERS_HINT):
            return 2
        rows = run_table3(
            args.scale,
            exact=not args.no_exact,
            sharded_workers=args.sharded_workers,
        )
        print(format_table(rows, title="Table III — classifier comparison"))
        return 0
    if command == "fig5":
        from repro.analysis.ascii_plot import ascii_chart
        from repro.experiments.fig5 import run_fig5

        if _bad_worker_count(args.sharded_workers, *_SHARDED_WORKERS_HINT):
            return 2
        for row in run_fig5(args.scale, sharded_workers=args.sharded_workers):
            series = {
                key: row[key]
                for key in row
                if isinstance(row.get(key), list) and key != "points"
            }
            print(
                ascii_chart(
                    row["points"],
                    series,
                    title=f"Fig. 5 — {row['n']}-bit: cumulative seconds vs #functions",
                )
            )
            stability = {
                key: row[key] for key in row if key.endswith("_stability")
            }
            print(f"stability (relative spread): {stability}\n")
        return 0
    if command == "fig34":
        from repro.experiments.fig34 import run_fig34

        print(format_table(run_fig34(), title="Figs. 3-4 — reconstructed witnesses"))
        return 0
    raise AssertionError(f"unhandled command {command}")  # pragma: no cover


def _bad_worker_count(
    workers: int | None,
    flag: str = "--workers",
    recovery: str = "omit the flag to use every CPU",
) -> bool:
    """Report unusable worker counts; ``0`` is the classic typo."""
    if workers is None or workers >= 1:
        return False
    print(
        f"{flag} needs at least 1 worker process, got {workers} ({recovery})",
        file=sys.stderr,
    )
    return True


def _cmd_classify(args) -> int:
    from repro.baselines import get_classifier

    if args.engine != "perfn" and args.method != "ours":
        print(
            f"--engine {args.engine} only applies to --method ours",
            file=sys.stderr,
        )
        return 2
    if args.workers is not None and args.engine != "sharded":
        print("--workers requires --engine sharded", file=sys.stderr)
        return 2
    if args.transport is not None and args.engine != "sharded":
        print("--shm/--no-shm requires --engine sharded", file=sys.stderr)
        return 2
    if _bad_worker_count(args.workers):
        return 2
    if args.file == "-":
        lines = sys.stdin.readlines()
    else:
        with open(args.file) as handle:
            lines = handle.readlines()
    tables = parse_tables(lines)
    if not tables:
        print("no truth tables found", file=sys.stderr)
        return 1
    if args.method == "ours" and args.engine != "perfn":
        from repro.engine import make_classifier

        classifier = make_classifier(
            args.engine, workers=args.workers, transport=args.transport
        )
        label = f"ours, {args.engine} engine"
        if args.engine == "sharded":
            label += f", {classifier.workers} workers, {classifier.transport}"
    else:
        classifier = get_classifier(args.method)
        label = args.method
    result = classifier.classify(tables)
    print(f"functions: {result.num_functions}")
    print(f"classes:   {result.num_classes} ({label})")
    if args.show_classes:
        for index, members in enumerate(result.groups.values()):
            rendered = " ".join(str(tt) for tt in members)
            print(f"  class {index}: {rendered}")
    return 0


def _cmd_signatures(args) -> int:
    from repro.core import signatures as sig
    from repro.core.msv import compute_msv

    tt = _parse_one(args.table, args.n)
    print(f"function:  {tt!r}")
    print(f"|f| = {tt.count_ones()}  balanced={tt.is_balanced}")
    print(f"OCV1  = {sig.ocv1(tt)}")
    print(f"OCV2  = {sig.ocv2(tt)}")
    print(f"OIV   = {sig.oiv(tt)}")
    print(f"OSV   = {sig.osv(tt)}")
    print(f"OSV0  = {sig.osv0(tt)}")
    print(f"OSV1  = {sig.osv1(tt)}")
    print(f"OSDV  = {sig.osdv(tt)}")
    print(f"OSDV0 = {sig.osdv0(tt)}")
    print(f"OSDV1 = {sig.osdv1(tt)}")
    print(f"MSV digest = {compute_msv(tt).digest()}")
    return 0


def _cmd_canonical(args) -> int:
    from repro.baselines.matcher import find_npn_transform
    from repro.canonical import (
        canonical_class_id,
        canonical_form,
        influence_canonical_scalar,
        influence_vector,
    )

    tt = _parse_one(args.table, args.n)
    canonical = canonical_form(tt)
    witness = find_npn_transform(tt, canonical)
    print(f"function:   {tt!r}")
    print(f"influence:  {influence_vector(tt)}")
    print(f"canonical:  {canonical!r}  binary={canonical.to_binary()}")
    print(f"class id:   {canonical_class_id(canonical)}")
    print(f"witness:    {witness}")
    if args.search_stats:
        stats: dict = {}
        scalar = influence_canonical_scalar(tt, stats=stats)
        assert scalar == canonical, "scalar search disagrees with kernel"
        print(
            f"search:     {stats['permutations']} permutations, "
            f"{stats['phase_candidates']} phase candidates, "
            f"{stats['phases_materialized']} materialized"
        )
    return 0


def _cmd_match(args) -> int:
    from repro.baselines.matcher import find_npn_transform

    source = _parse_one(args.source, args.n)
    target = _parse_one(args.target, args.n)
    transform = find_npn_transform(source, target)
    if transform is None:
        print("NOT NPN equivalent")
        return 1
    print(f"NPN equivalent via {transform}")
    print(
        f"perm={transform.perm} input_phase={transform.input_phase:#x} "
        f"output_phase={transform.output_phase}"
    )
    return 0


def _parse_arity_spec(spec: str) -> list[int]:
    """Parse ``--inputs``: comma-separated items, each ``N`` or ``A-B``."""
    from repro.core.bitops import MAX_VARS

    arities: set[int] = set()
    try:
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "-" in item:
                low, high = item.split("-", 1)
                arities.update(range(int(low), int(high) + 1))
            else:
                arities.add(int(item))
    except ValueError:
        raise ValueError(
            f"--inputs {spec!r} is not a comma-separated list of arities "
            f"(items are N or A-B)"
        ) from None
    if not arities or min(arities) < 1:
        raise ValueError(f"--inputs {spec!r} selects no valid arity (need n >= 1)")
    if max(arities) > MAX_VARS:
        raise ValueError(
            f"--inputs {spec!r} exceeds the supported arity range "
            f"(n <= {MAX_VARS})"
        )
    return sorted(arities)


def _parse_sizes(spec: str) -> list[int]:
    """Parse a ``--sizes`` list; rejects non-integers and sizes < 1."""
    try:
        sizes = [int(piece) for piece in spec.split(",")]
    except ValueError:
        raise ValueError(
            f"--sizes {spec!r} is not a comma-separated list of integers"
        ) from None
    if not sizes or min(sizes) < 1:
        raise ValueError(f"--sizes {spec!r} needs sizes >= 1")
    return sizes


def _load_library_or_fail(path: str, mmap_mode: str | None = None):
    """Load a library or print the error plus the recovery command."""
    from repro.library import ClassLibrary, LibraryFormatError

    try:
        return ClassLibrary.load(path, mmap_mode=mmap_mode)
    except LibraryFormatError as exc:
        print(
            f"cannot load library: {exc}\n"
            f"(build one with: repro-npn library build --inputs 4 "
            f"--out {path})",
            file=sys.stderr,
        )
        return None


def _cmd_library(args) -> int:
    if args.library_command == "build":
        return _cmd_library_build(args)
    if args.library_command == "compact":
        return _cmd_library_compact(args)
    library = _load_library_or_fail(args.library)
    if library is None:
        return 2
    if args.library_command == "stats":
        print(
            format_table(
                library.stats(),
                title=f"Class library {args.library} — parts {library.parts}",
            )
        )
        return 0
    # library match
    import json as json_module

    tt = _parse_one(args.table, args.n)
    hit = library.match(tt)
    if hit is None:
        print(f"NO MATCH: {tt!r} is outside the library's classes")
        return 1
    print(f"class:     {hit.class_id}")
    print(f"rep:       {hit.representative!r}")
    print(f"witness:   {hit.transform}")
    print(f"witness json: {json_module.dumps(hit.transform.as_dict())}")
    print(f"verified:  {hit.verify(tt)}")
    return 0


def _cmd_library_build(args) -> int:
    from itertools import chain

    from repro.library import build_library
    from repro.workloads.library_corpus import EXHAUSTIVE_MAX_VARS, corpus_for_arity

    if args.workers is not None and args.engine != "sharded":
        print("--workers requires --engine sharded", file=sys.stderr)
        return 2
    if args.transport is not None and args.engine != "sharded":
        print("--shm/--no-shm requires --engine sharded", file=sys.stderr)
        return 2
    if _bad_worker_count(args.workers):
        return 2
    try:
        arities = _parse_arity_spec(args.inputs)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.samples < 1 and any(n > EXHAUSTIVE_MAX_VARS for n in arities):
        print(
            f"--samples must be >= 1 to cover arities above "
            f"{EXHAUSTIVE_MAX_VARS}, got {args.samples}",
            file=sys.stderr,
        )
        return 2
    corpus = chain.from_iterable(
        corpus_for_arity(n, args.samples, args.seed) for n in arities
    )
    library = build_library(
        corpus,
        engine=args.engine,
        workers=args.workers,
        transport=args.transport,
        id_scheme=args.id_scheme,
    )
    path = library.save(args.out)
    print(
        format_table(
            library.stats(),
            title=f"Class library — arities {','.join(map(str, arities))}",
        )
    )
    print(f"saved {library.num_classes} classes to {path}")
    return 0


def _cmd_library_compact(args) -> int:
    from repro.library import LearningLibrary, LibraryFormatError

    try:
        learner = LearningLibrary.open(args.library, create=True)
    except LibraryFormatError as exc:
        print(f"cannot open library: {exc}", file=sys.stderr)
        return 2
    try:
        result = learner.compact()
    finally:
        learner.close()
    if result.path is None:
        print(f"{args.library}: no write-ahead segments to compact")
        return 0
    print(
        f"compacted {result.merged_records} WAL records "
        f"({result.removed_segments} segments) into {result.path} — "
        f"{result.num_classes} classes"
    )
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.library import DEFAULT_SEGMENT_BYTES, LearningLibrary
    from repro.library.store import LibraryFormatError
    from repro.service import ClassificationService
    from repro.service.coalescer import validate_service_knobs

    # Knob validation first (the Coalescer's own rules), so a flag typo
    # fails before the potentially expensive library load.
    try:
        validate_service_knobs(
            engine=args.engine,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_pending=args.max_pending,
            cache_size=args.cache_size,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if not args.learn:
        for flag, value in (
            ("--wal-segment-bytes", args.wal_segment_bytes),
            ("--wal-fsync", args.wal_fsync),
        ):
            if value is not None:
                print(f"{flag} requires --learn", file=sys.stderr)
                return 2
        # Read-only serving maps the npz image instead of copying it:
        # N replica daemons on one box share one page-cache image.
        library = _load_library_or_fail(args.library, mmap_mode="r")
        learner = None
    else:
        segment_bytes = (
            DEFAULT_SEGMENT_BYTES
            if args.wal_segment_bytes is None
            else args.wal_segment_bytes
        )
        if segment_bytes < 1:
            print(
                f"--wal-segment-bytes must be >= 1, got {segment_bytes}",
                file=sys.stderr,
            )
            return 2
        try:
            # Open-with-replay: leftover segments from a crashed daemon
            # are folded back in before the first request is served.
            learner = LearningLibrary.open(
                args.library,
                segment_bytes=segment_bytes,
                fsync=args.wal_fsync or "close",
            )
        except LibraryFormatError as exc:
            print(
                f"cannot load library: {exc}\n"
                f"(build one with: repro-npn library build --inputs 4 "
                f"--out {args.library})",
                file=sys.stderr,
            )
            return 2
        library = learner.library
    if library is None:
        return 2
    from repro.service.server import DEFAULT_SLOW_MS, DEFAULT_TRACE_SAMPLE

    if args.trace_sample is not None and args.trace_sample < 1:
        print("--trace-sample must be >= 1", file=sys.stderr)
        return 2
    service = ClassificationService(
        library,
        host=args.host,
        port=args.port,
        engine=args.engine,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
        cache_size=args.cache_size,
        learner=learner,
        slow_ms=DEFAULT_SLOW_MS if args.slow_ms is None else args.slow_ms,
        trace_sample=(
            DEFAULT_TRACE_SAMPLE
            if args.trace_sample is None
            else args.trace_sample
        ),
    )
    try:
        asyncio.run(service.serve_forever())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0


def _cmd_router(args) -> int:
    import asyncio

    from repro.fabric.backoff import RetryPolicy
    from repro.fabric.router import RouterService
    from repro.service.server import DEFAULT_SLOW_MS, DEFAULT_TRACE_SAMPLE

    if args.trace_sample is not None and args.trace_sample < 1:
        print("--trace-sample must be >= 1", file=sys.stderr)
        return 2
    try:
        policy = RetryPolicy(
            attempts=args.attempts,
            base_ms=args.base_ms,
            cap_ms=args.cap_ms,
            timeout_ms=args.timeout_ms,
        )
        service = RouterService(
            host=args.host,
            port=args.port,
            policy=policy,
            heartbeat_interval_s=args.heartbeat_interval_s,
            suspect_misses=args.suspect_misses,
            evict_misses=args.evict_misses,
            slow_ms=DEFAULT_SLOW_MS if args.slow_ms is None else args.slow_ms,
            trace_sample=(
                DEFAULT_TRACE_SAMPLE
                if args.trace_sample is None
                else args.trace_sample
            ),
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        asyncio.run(service.serve_forever())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0


def _cmd_worker(args) -> int:
    import asyncio

    from repro.fabric.ring import HashRing, parse_ring_spec
    from repro.fabric.worker import FabricWorker
    from repro.service.coalescer import validate_service_knobs

    try:
        nodes = parse_ring_spec(args.ring)
        ring = HashRing(nodes, vnodes=args.vnodes, replicas=args.replicas)
        validate_service_knobs(
            engine=args.engine,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.worker_id not in nodes:
        print(
            f"--id {args.worker_id!r} is not on the ring {args.ring!r}",
            file=sys.stderr,
        )
        return 2
    # Read-only shard serving: each worker maps the shared image and
    # keeps only the entries its ring arcs own (plus replicas).
    library = _load_library_or_fail(args.library, mmap_mode="r")
    if library is None:
        return 2
    shard = library.subset(
        ring.shard_filter(args.worker_id, library.parts)
    )
    worker = FabricWorker(
        shard,
        worker_id=args.worker_id,
        router_address=args.router_addr,
        ring=ring,
        host=args.host,
        port=args.port,
        engine=args.engine,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
    )
    try:
        asyncio.run(worker.serve_forever())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0


def _cmd_query(args) -> int:
    import json as json_module

    from repro.service import ServiceClient, ServiceError
    from repro.service.client import http_get

    # HTTP-backed introspection commands: one-shot GETs, no NDJSON
    # connection needed.
    if args.query_command == "trace" or (
        args.query_command == "stats" and args.prometheus
    ):
        try:
            if args.query_command == "stats":
                status, body = http_get(args.addr, "/metrics")
                if status != 200:
                    print(f"GET /metrics returned {status}", file=sys.stderr)
                    return 2
                print(body, end="")
                return 0
            status, body = http_get(
                args.addr, f"/v1/trace/recent?limit={args.limit}"
            )
            if status != 200:
                print(f"GET /v1/trace/recent returned {status}", file=sys.stderr)
                return 2
            payload = json_module.loads(body)
            if args.json:
                print(json_module.dumps(payload, indent=2, sort_keys=True))
                return 0
            traces = payload["slow" if args.slow else "traces"]
            tracer = payload.get("tracer", {})
            print(
                f"{len(traces)} trace(s) "
                f"(finished={tracer.get('finished_total')}, "
                f"slow={tracer.get('slow_total')}, "
                f"slow_ms={tracer.get('slow_ms')})"
            )
            for trace in traces:
                spans = " ".join(
                    f"{span['name']}={span['duration_ms']:.2f}ms"
                    for span in trace["spans"]
                )
                meta = trace.get("meta", {})
                suffix = f"  {meta}" if meta else ""
                print(
                    f"{trace['trace_id']}  op={trace['op']:<9}"
                    f"{trace['duration_ms']:9.2f}ms  {spans}{suffix}"
                )
            return 0
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        except ServiceError as exc:
            print(f"query failed: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(
                f"cannot reach {args.addr}: {exc}\n"
                f"(start a daemon with: repro-npn serve --library npn_library)",
                file=sys.stderr,
            )
            return 2

    if args.query_command == "ping":
        # Retries draw their sleep schedule from the fabric's one backoff
        # policy — the same capped exponential + full jitter the router
        # re-dispatches with.
        from repro.fabric.backoff import RetryPolicy, retry_call
        from repro.service import ServiceUnavailableError

        def do_ping() -> dict:
            with ServiceClient.from_address(args.addr) as client:
                return client.ping()

        try:
            policy = RetryPolicy(
                attempts=args.retries + 1,
                base_ms=args.backoff_ms,
                cap_ms=max(args.backoff_ms, args.backoff_ms * 16),
                timeout_ms=None,
            )
            result = retry_call(
                do_ping, policy, (ServiceUnavailableError, OSError)
            )
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        except (ServiceUnavailableError, OSError) as exc:
            tried = f" after {args.retries + 1} attempts" if args.retries else ""
            print(
                f"cannot reach {args.addr}{tried}: {exc}\n"
                f"(start a daemon with: repro-npn serve --library npn_library)",
                file=sys.stderr,
            )
            return 2
        except ServiceError as exc:
            print(f"query failed: {exc}", file=sys.stderr)
            return 2
        print(json_module.dumps(result, sort_keys=True))
        return 0

    try:
        client = ServiceClient.from_address(args.addr)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        with client:
            if args.query_command == "stats":
                print(json_module.dumps(client.stats(), indent=2, sort_keys=True))
                return 0
            try:
                tt = _parse_one(args.table, args.n)
            except ValueError as exc:
                print(exc, file=sys.stderr)
                return 2
            if args.query_command == "classify":
                result = client.classify(tt)
                print(f"class:     {result['class_id']}")
                print(f"known:     {result['known']}")
                return 0
            # query match
            result = client.match(tt)
            if not result["hit"]:
                print(f"NO MATCH: {tt!r} is outside the served classes")
                return 1
            print(f"class:     {result['class_id']}")
            print(f"rep:       0x{result['representative']}")
            print(f"witness json: {json_module.dumps(result['transform'])}")
            print(f"cached:    {result['cached']}")
            verified = ServiceClient.verify(result, tt)
            print(f"verified:  {verified}")
            return 0 if verified else 1
    except ServiceError as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(
            f"cannot reach {args.addr}: {exc}\n"
            f"(start a daemon with: repro-npn serve --library npn_library)",
            file=sys.stderr,
        )
        return 2


def _cmd_cutmatch(args) -> int:
    from repro.experiments.cutmatch import (
        class_hit_rows,
        cut_match_rows,
        run_cut_matching,
    )
    from repro.workloads.epfl import epfl_like_suite

    library = _load_library_or_fail(args.library)
    if library is None:
        return 2
    try:
        sizes = _parse_sizes(args.sizes)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    suite = epfl_like_suite(scale=args.scale)
    if args.circuits is not None:
        wanted = [name.strip() for name in args.circuits.split(",") if name.strip()]
        unknown = sorted(set(wanted) - set(suite))
        if unknown:
            print(
                f"unknown circuits {unknown}; available: {sorted(suite)}",
                file=sys.stderr,
            )
            return 2
        suite = {name: suite[name] for name in wanted}
    rows, class_hits = run_cut_matching(
        library, suite, sizes=sizes, max_cuts=args.max_cuts
    )
    print(
        format_table(
            cut_match_rows(library, rows, class_hits),
            title=f"Cut matching — sizes {args.sizes}, library {args.library}",
        )
    )
    print()
    print(
        format_table(
            class_hit_rows(library, class_hits, top=args.top),
            title=f"Top {args.top} classes by cut hits",
        )
    )
    return 0


def _cmd_suite() -> int:
    from repro.workloads.epfl import epfl_like_suite, suite_summary

    rows = suite_summary(epfl_like_suite())
    print(format_table(rows, title="EPFL-like benchmark suite"))
    return 0


def _cmd_extract(args) -> int:
    from repro.workloads.epfl import epfl_like_suite
    from repro.workloads.extraction import extract_cut_functions, extraction_report

    try:
        sizes = _parse_sizes(args.sizes)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    suite = epfl_like_suite(scale=args.scale)
    functions = extract_cut_functions(
        suite.values(), sizes=sizes, limit_per_size=args.limit
    )
    print(format_table(extraction_report(functions), title="Extracted cut functions"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
