"""repro — face/point-characteristic NPN classification (DATE 2023 reproduction).

Public API highlights:

* :class:`repro.TruthTable` — immutable truth-table value type.
* :class:`repro.NPNTransform` — the NPN transformation group.
* :mod:`repro.core.signatures` — the paper's OCV/OIV/OSV/OSDV vectors.
* :class:`repro.FacePointClassifier` — Algorithm 1 of the paper.
* :mod:`repro.engine` — batched classification: packed ``uint64`` batches,
  vectorized signatures, LRU signature cache (``BatchedClassifier``).
* :mod:`repro.baselines` — exact engine and the Table III baselines.
* :mod:`repro.aig` / :mod:`repro.workloads` — circuits, cut enumeration and
  the EPFL-like benchmark pipeline.
"""

from repro.core.transforms import NPNTransform
from repro.core.truth_table import TruthTable

__version__ = "0.1.0"

__all__ = ["TruthTable", "NPNTransform", "__version__"]
