"""Spectral substrate: fast Walsh-Hadamard transform and spectral signatures."""

from repro.spectral.walsh import (
    fwht,
    pair_distance_histogram,
    walsh_spectrum,
    xor_autocorrelation,
)

__all__ = [
    "fwht",
    "walsh_spectrum",
    "xor_autocorrelation",
    "pair_distance_histogram",
]
