"""Spectral (Walsh) signatures for Boolean matching.

The paper's related-work section cites Walsh spectra [7] as one of the
classical signature families.  We implement them as an additional, optional
discriminator so the ablation benches can compare the paper's face/point
signatures against the spectral alternative.

NPN invariance: under input negation the Walsh coefficients only change
sign; under input permutation they are permuted within each index-weight
class; under output negation the whole spectrum changes sign.  Hence

* the sorted multiset of absolute coefficients, and
* per index-weight class, the sorted multiset of absolute coefficients

are NPN invariants.
"""

from __future__ import annotations

import numpy as np

from repro.core import bitops
from repro.core.truth_table import TruthTable
from repro.spectral.walsh import walsh_spectrum

__all__ = ["spectral_signature", "spectral_weight_signature", "spectral_moments"]


def spectral_signature(tt: TruthTable) -> tuple[int, ...]:
    """Sorted multiset of absolute Walsh coefficients (NPN invariant)."""
    spectrum = walsh_spectrum(tt.bits, tt.n)
    return tuple(sorted(int(abs(c)) for c in spectrum))


def spectral_weight_signature(tt: TruthTable) -> tuple[tuple[int, ...], ...]:
    """Per index-weight class, the sorted absolute Walsh coefficients.

    Strictly refines :func:`spectral_signature` while remaining an NPN
    invariant: input permutations only shuffle indices within a weight
    class.
    """
    spectrum = np.abs(walsh_spectrum(tt.bits, tt.n))
    groups = bitops.indices_by_weight(tt.n)
    return tuple(
        tuple(sorted(int(c) for c in spectrum[idx])) for idx in groups
    )


def spectral_moments(tt: TruthTable, orders: tuple[int, ...] = (2, 4)) -> tuple[int, ...]:
    """Power moments of the spectrum (cheap, weak invariants).

    The order-2 moment is constant (Parseval: ``4^n``); it is kept as a
    self-check.  Higher even moments do discriminate.
    """
    spectrum = walsh_spectrum(tt.bits, tt.n).astype(object)
    return tuple(int(np.sum(spectrum**k)) for k in orders)
