"""Fast Walsh-Hadamard transform and XOR-correlation utilities.

Two consumers inside this project:

* **OSDV pair counting** (paper Definitions 9-10).  For a set ``S`` of
  minterm indices, the number of unordered pairs at Hamming distance ``j``
  is an XOR auto-correlation of the indicator vector of ``S`` — computable
  in ``O(2^n * n)`` instead of ``O(|S|^2)``.
* **Spectral signatures** of the related work the paper cites ([7], Walsh
  spectra for Boolean matching), implemented in
  :mod:`repro.spectral.signatures` for the ablation benches.

All transforms are exact integer computations (int64 numpy arrays); the
largest intermediate is bounded by ``8^n``, safely inside int64 for the
supported ``n <= 20``.
"""

from __future__ import annotations

import numpy as np

from repro.core import bitops

__all__ = [
    "fwht",
    "walsh_spectrum",
    "xor_autocorrelation",
    "pair_distance_histogram",
    "pair_distance_histogram_direct",
    "DIRECT_PAIR_THRESHOLD",
]

#: Below this set size the direct O(m^2) pair loop beats the FWHT.
DIRECT_PAIR_THRESHOLD = 24


def fwht(values: np.ndarray) -> np.ndarray:
    """Unnormalised fast Walsh-Hadamard transform.

    ``out[z] = sum_x (-1)^{popcount(x & z)} * values[x]``.  The transform is
    an involution up to the factor ``2^n``: ``fwht(fwht(v)) == 2^n * v``.
    Input length must be a power of two; the input is not modified.
    """
    out = np.asarray(values, dtype=np.int64).copy()
    size = out.shape[0]
    if size == 0 or size & (size - 1):
        raise ValueError(f"FWHT length {size} is not a power of two")
    h = 1
    while h < size:
        # Butterfly over blocks of width 2h, vectorised across all blocks.
        shaped = out.reshape(-1, 2 * h)
        left = shaped[:, :h].copy()
        right = shaped[:, h:].copy()
        shaped[:, :h] = left + right
        shaped[:, h:] = left - right
        h *= 2
    return out


def walsh_spectrum(table: int, n: int) -> np.ndarray:
    """Walsh spectrum of the ±1 encoding of the function.

    ``spectrum[z] = sum_x (-1)^{f(x) XOR popcount(x & z)}`` — the classical
    spectrum used by spectral Boolean-matching methods.  ``spectrum[0]`` is
    ``2^n - 2|f|``.
    """
    bits = bitops.to_bit_array(table, n).astype(np.int64)
    return fwht(1 - 2 * bits)


def xor_autocorrelation(indicator: np.ndarray) -> np.ndarray:
    """``out[z] = #{(x, y) : x XOR y = z, indicator[x] = indicator[y] = 1}``.

    Counts *ordered* pairs; ``out[0]`` equals the set size.  Computed via
    the convolution theorem for the XOR group: the FWHT of the indicator,
    squared pointwise, transformed back.
    """
    spectrum = fwht(indicator)
    size = spectrum.shape[0]
    back = fwht(spectrum * spectrum)
    if np.any(back % size):
        raise AssertionError("XOR autocorrelation did not divide evenly")
    return back // size


def pair_distance_histogram(indicator: np.ndarray, n: int) -> np.ndarray:
    """Unordered-pair counts by Hamming distance for a set of minterms.

    ``result[j]`` is ``#{(X, Y) : X < Y, both in the set, h(X, Y) = j}``
    for ``j`` in ``1..n`` (``result[0]`` is always 0).  This is the inner
    quantity of the paper's ordered sensitivity distance vector
    (Definition 10).
    """
    indicator = np.asarray(indicator, dtype=np.int64)
    if indicator.shape[0] != 1 << n:
        raise ValueError(f"indicator length {indicator.shape[0]} != 2^{n}")
    members = int(indicator.sum())
    if members <= DIRECT_PAIR_THRESHOLD:
        return pair_distance_histogram_direct(np.flatnonzero(indicator), n)
    correlation = xor_autocorrelation(indicator)
    weights = bitops.popcount_table(n)
    histogram = np.zeros(n + 1, dtype=np.int64)
    np.add.at(histogram, weights, correlation)
    histogram[0] = 0  # drop the diagonal (X == Y)
    if np.any(histogram % 2):
        raise AssertionError("ordered pair counts must be even off-diagonal")
    return histogram // 2


def pair_distance_histogram_direct(indices: np.ndarray, n: int) -> np.ndarray:
    """O(m^2) reference/fallback for :func:`pair_distance_histogram`."""
    histogram = np.zeros(n + 1, dtype=np.int64)
    items = [int(x) for x in indices]
    for a in range(len(items)):
        xa = items[a]
        for b in range(a + 1, len(items)):
            histogram[(xa ^ items[b]).bit_count()] += 1
    return histogram
