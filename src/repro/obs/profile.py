"""Tiny profiling helpers for instrumenting hot paths.

The instrumented layers (engines, library, canonical) time whole
*batches*, not individual rows, so the per-row overhead of a
``perf_counter`` pair plus one locked histogram update amortizes to
nanoseconds.  ``timed`` is the standard shape:

    with timed(_DISPATCH_SECONDS, transport="shm"):
        ...hot path...

When observability is disabled (:func:`repro.obs.set_enabled`) the
context manager skips the clock reads entirely.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.metrics import Histogram, enabled

__all__ = ["timed"]


@contextmanager
def timed(histogram: Histogram, **labels):
    """Observe the block's wall-clock duration (seconds) into *histogram*."""
    if not enabled():
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        histogram.observe(time.perf_counter() - start, **labels)
