"""Per-request tracing: spans, traces, and a bounded recent-trace ring.

A :class:`Trace` is created when the daemon decodes a request and is
carried (via the coalescer's pending entry) through every stage the
request touches: protocol decode, coalescer queue wait, the batch's
signature pass, matcher, canonical search, learn-on-miss, and the reply
write.  Each stage appends a :class:`Span` — a named ``[start, end)``
interval on the process-local ``perf_counter`` clock plus optional
metadata (batch size, cache hit, minted class id).

Finished traces land in a :class:`Tracer` ring buffer (bounded deque;
old traces fall off, memory stays O(capacity)) served by
``GET /v1/trace/recent``.  Traces slower than the tracer's ``slow_ms``
threshold are additionally kept in a separate slow ring and logged via
``logging.getLogger("repro.obs.slow")`` so operators see outliers
without polling.  Slow-log *emission* is rate-limited (one line per
``log_interval_s``, with a suppressed count) — a backlog that pushes
every tail request over the threshold must not become a log storm.

Threading model: spans for one trace are appended from at most one
thread at a time (event loop, then the coalescer's single executor
thread, then the loop again — each handoff is through an awaited
future, which orders the memory accesses), so ``Trace`` itself needs no
lock.  The ``Tracer`` rings are appended from the loop but read from
test threads and CLI snapshots, so they take a lock.
"""

from __future__ import annotations

import itertools
import logging
import os
import threading
import time
from collections import deque

from repro.obs.metrics import enabled

__all__ = ["Span", "Trace", "Tracer"]

_LOG = logging.getLogger("repro.obs.slow")

_TRACE_SEQ = itertools.count(1)


class Span:
    """One named stage of a request: ``[start, end)`` in perf-counter s.

    ``meta`` is kept by reference (callers hand over fresh dicts) and is
    ``None`` when absent — per-span defensive copies and empty-dict
    allocations are measurable as GC pressure at service request rates.
    """

    __slots__ = ("name", "start", "end", "meta")

    def __init__(self, name: str, start: float, end: float, meta=None):
        self.name = name
        self.start = start
        self.end = end
        self.meta = meta or None

    @property
    def duration_ms(self) -> float:
        return (self.end - self.start) * 1e3

    def as_dict(self, origin: float) -> dict:
        """JSON form with times as ms offsets from the trace origin."""
        out = {
            "name": self.name,
            "start_ms": (self.start - origin) * 1e3,
            "duration_ms": self.duration_ms,
        }
        if self.meta:
            out["meta"] = self.meta
        return out


class Trace:
    """All spans of one request, identified by a process-unique id."""

    __slots__ = (
        "_seq",
        "op",
        "started_unix",
        "origin",
        "spans",
        "meta",
        "duration_ms",
    )

    def __init__(self, op: str, meta=None) -> None:
        self._seq = next(_TRACE_SEQ)
        self.op = op
        self.started_unix = time.time()
        self.origin = time.perf_counter()
        self.spans: list[Span] = []
        self.meta = meta or {}  # by reference; start() hands over a fresh dict
        self.duration_ms: float | None = None  # set by Tracer.finish

    @property
    def trace_id(self) -> str:
        """Process-unique id, formatted lazily (ids are read rarely,
        created per request)."""
        return f"{os.getpid():x}-{self._seq:06x}"

    def add_span(self, name: str, start: float, end: float, meta=None) -> Span:
        """Record a stage measured externally (perf-counter endpoints).

        ``meta``, when given, is a dict the span takes ownership of — a
        positional argument rather than ``**kwargs`` so meta-less calls
        (the common case) allocate nothing.
        """
        span = Span(name, start, end, meta)
        self.spans.append(span)
        return span

    def span(self, name: str, meta=None) -> "_SpanTimer":
        """``with trace.span("match"):`` — times the block as a span."""
        return _SpanTimer(self, name, meta)

    def annotate(self, **meta) -> None:
        self.meta.update(meta)

    def as_dict(self) -> dict:
        out = {
            "trace_id": self.trace_id,
            "op": self.op,
            "started_unix": self.started_unix,
            "duration_ms": self.duration_ms,
            "spans": [span.as_dict(self.origin) for span in self.spans],
        }
        if self.meta:
            out["meta"] = self.meta
        return out


class _SpanTimer:
    __slots__ = ("_trace", "_name", "_meta", "_start")

    def __init__(self, trace: Trace, name: str, meta) -> None:
        self._trace = trace
        self._name = name
        self._meta = meta

    def __enter__(self) -> "_SpanTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._trace.add_span(
            self._name, self._start, time.perf_counter(), self._meta
        )


class Tracer:
    """Bounded ring of finished traces plus a slow-request side ring.

    ``slow_ms <= 0`` disables the slow log (every trace still enters the
    main ring).  ``sample_every=N`` head-samples span detail to every
    N-th request — on a saturated pipelined workload, per-request trace
    and span allocation is the dominant observability cost, so the
    daemon defaults to sampling and ``--trace-sample 1`` opts into full
    tracing.  Disabled observability (:func:`repro.obs.set_enabled`)
    makes :meth:`start` return ``None``; instrumentation sites treat a
    ``None`` trace as "don't record", so the hot path pays one branch.
    """

    def __init__(
        self,
        capacity: int = 256,
        slow_ms: float = 250.0,
        slow_capacity: int = 64,
        log_interval_s: float = 1.0,
        sample_every: int = 1,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"trace ring capacity must be >= 1: {capacity}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every}")
        self.slow_ms = float(slow_ms)
        self.log_interval_s = float(log_interval_s)
        self.sample_every = int(sample_every)
        self._traces: deque[Trace] = deque(maxlen=capacity)
        self._slow: deque[Trace] = deque(maxlen=max(1, slow_capacity))
        self._lock = threading.Lock()
        self.started_total = 0
        self.finished_total = 0
        self.slow_total = 0
        self._arrivals = 0
        self._last_log = float("-inf")
        self._suppressed = 0

    def start(self, op: str, **meta) -> Trace | None:
        """A new trace for this request, or ``None`` if not sampled.

        Head sampling: with ``sample_every=N``, every N-th request (the
        first included) gets span detail; the rest return ``None``, which
        every instrumentation site treats as "don't record".  Metrics
        still see *all* requests — sampling only thins span detail, the
        measurably expensive part of the hot path.
        """
        if not enabled():
            return None
        if self.sample_every > 1:
            # Only ever called from the daemon's event-loop thread; a
            # plain counter is deliberate (no lock on the unsampled path).
            self._arrivals += 1
            if (self._arrivals - 1) % self.sample_every:
                return None
        self.started_total += 1
        return Trace(op, meta)

    def finish(self, trace: Trace | None) -> None:
        if trace is None:
            return
        now = time.perf_counter()
        trace.duration_ms = (now - trace.origin) * 1e3
        is_slow = self.slow_ms > 0 and trace.duration_ms >= self.slow_ms
        suppressed = 0
        emit = False
        with self._lock:
            self._traces.append(trace)
            self.finished_total += 1
            if is_slow:
                self._slow.append(trace)
                self.slow_total += 1
                # Rate-limit the warning, never the ring: a burst of slow
                # requests (a pipelined backlog pushes every tail request
                # over the threshold) must not turn into a log storm that
                # itself dominates the hot path.
                if now - self._last_log >= self.log_interval_s:
                    emit = True
                    suppressed, self._suppressed = self._suppressed, 0
                    self._last_log = now
                else:
                    self._suppressed += 1
        if emit:
            _LOG.warning(
                "slow request %s op=%s took %.1fms (threshold %.1fms)%s: %s",
                trace.trace_id,
                trace.op,
                trace.duration_ms,
                self.slow_ms,
                f" [+{suppressed} suppressed]" if suppressed else "",
                ", ".join(
                    f"{s.name}={s.duration_ms:.1f}ms" for s in trace.spans
                ),
            )

    def recent(self, limit: int = 50) -> list[dict]:
        """Most recent finished traces, newest first."""
        with self._lock:
            traces = list(self._traces)
        return [t.as_dict() for t in reversed(traces[-max(0, limit) :])]

    def slow_recent(self, limit: int = 50) -> list[dict]:
        """Most recent slow traces, newest first."""
        with self._lock:
            traces = list(self._slow)
        return [t.as_dict() for t in reversed(traces[-max(0, limit) :])]

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "capacity": self._traces.maxlen,
                "stored": len(self._traces),
                "sample_every": self.sample_every,
                "started_total": self.started_total,
                "finished_total": self.finished_total,
                "slow_ms": self.slow_ms,
                "slow_total": self.slow_total,
            }
