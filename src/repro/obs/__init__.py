"""Dependency-free observability: metrics, tracing, profiling hooks.

Three pieces, layered bottom-up:

* :mod:`repro.obs.metrics` — thread-safe typed registry (``Counter``,
  ``Gauge``, ``Histogram`` with fixed log-scaled buckets and labels),
  snapshot-able as JSON and renderable in the Prometheus text
  exposition format.  One process-global registry (:func:`registry`)
  collects every layer's series.
* :mod:`repro.obs.tracing` — per-request ``Span``/``Trace`` contexts in
  a bounded ring with a slow-request log (``Tracer``).
* :mod:`repro.obs.profile` — the ``timed`` context manager hot paths
  use to feed histograms.

``repro.obs`` imports nothing from the rest of the package, so any
layer (kernels, engines, library, canonical, service) can instrument
itself without import cycles.  :func:`set_enabled` is the global
kill-switch the overhead bench uses to price the instrumentation.
"""

from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enabled,
    log_buckets,
    registry,
    set_enabled,
)
from repro.obs.profile import timed
from repro.obs.tracing import Span, Trace, Tracer

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Trace",
    "Tracer",
    "enabled",
    "log_buckets",
    "registry",
    "set_enabled",
    "timed",
]
