"""Typed metrics registry: counters, gauges, log-bucketed histograms.

The observability backbone of the repo.  Every instrumented layer —
service, engines, library/WAL, canonical, caches — records into one
process-global :class:`MetricsRegistry` (see :func:`registry`), which
can be read two ways:

* :meth:`MetricsRegistry.snapshot` — a JSON-ready dict, for programmatic
  consumers and the ``/v1/stats`` front;
* :meth:`MetricsRegistry.render` — the Prometheus text exposition
  format, served by the daemon's ``GET /metrics``.

Design constraints, in order:

1. **Dependency-free.**  Stdlib only; importable from every layer
   (including :mod:`repro.core` consumers) without cycles.
2. **Thread-safe.**  Hot paths record from the coalescer's executor
   thread, the event loop, and test harness threads concurrently; every
   metric family guards its series map with one lock.
3. **Cheap when off.**  :func:`set_enabled` flips a module flag each
   recording call checks first, so the overhead bench can measure the
   instrumentation against a true zero baseline
   (``benchmarks/bench_obs_overhead.py`` gates the enabled cost at <3%
   of coalesced service throughput).

Histograms use **fixed log-scaled buckets** (a 1-2-5 mantissa series per
decade, :func:`log_buckets`) rather than adaptive sketches: fixed bounds
make series from different processes and runs directly aggregatable,
which is what a fleet scraper needs.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "set_enabled",
    "enabled",
    "log_buckets",
    "DEFAULT_TIME_BUCKETS",
    "BATCH_SIZE_BUCKETS",
]

#: Global on/off switch for every recording call in this module (and the
#: tracing layer, which checks it too).  Reading an unsynchronized bool
#: is safe under the GIL; flipping it mid-traffic only loses/gains a few
#: borderline samples.
_ENABLED = True


def set_enabled(flag: bool) -> bool:
    """Enable/disable all metric recording; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def enabled() -> bool:
    """Is observability recording currently on?"""
    return _ENABLED


def log_buckets(
    low_exp: int, high_exp: int, mantissas=(1.0, 2.0, 5.0)
) -> tuple[float, ...]:
    """Fixed log-scaled bucket bounds: ``mantissas`` per decade.

    ``log_buckets(-3, 0)`` is ``(0.001, 0.002, 0.005, ..., 1.0, 2.0,
    5.0)``.  Bounds are parsed from decimal literals so their ``repr``
    round-trips cleanly in the exposition output (``1e-05``, not
    ``1.0000000000000001e-05``).
    """
    if high_exp < low_exp:
        raise ValueError(f"empty bucket range [{low_exp}, {high_exp}]")
    return tuple(
        float(f"{m}e{e}")
        for e in range(low_exp, high_exp + 1)
        for m in sorted(mantissas)
    )


#: Latency bounds: 10 microseconds to 10 seconds, 1-2-5 per decade.
DEFAULT_TIME_BUCKETS = tuple(
    b for b in log_buckets(-5, 1) if b <= 10.0
)

#: Batch-size bounds: powers of two up to the coalescer's natural range.
BATCH_SIZE_BUCKETS = tuple(float(1 << k) for k in range(0, 13))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Prometheus sample value: integral floats render as integers."""
    if value != value or value in (float("inf"), float("-inf")):
        return {float("inf"): "+Inf", float("-inf"): "-Inf"}.get(value, "NaN")
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    """Histogram ``le`` bound: integral bounds render without ``.0``."""
    if float(bound).is_integer() and abs(bound) < 1e15:
        return str(int(bound))
    return repr(float(bound))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(names: tuple[str, ...], values: tuple) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


class _Metric:
    """Shared family plumbing: name/help/label validation + series map."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels=()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labels = tuple(labels)
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.label_names = labels
        self._lock = threading.Lock()
        self._series: dict[tuple, object] = {}

    def _key(self, labels: dict) -> tuple:
        # Hot path: build the key straight from the declared order with
        # special-cased 0- and 1-label shapes (the overwhelming majority
        # of recording calls) instead of materialising sets per call.
        names = self.label_names
        count = len(names)
        if len(labels) != count:
            self._bad_labels(labels)
        if count == 0:
            return ()
        try:
            if count == 1:
                value = labels[names[0]]
                return (value if value.__class__ is str else str(value),)
            return tuple(
                value if value.__class__ is str else str(value)
                for value in map(labels.__getitem__, names)
            )
        except KeyError:
            self._bad_labels(labels)

    def _bad_labels(self, labels: dict):
        raise ValueError(
            f"{self.name} takes labels {self.label_names}, "
            f"got {tuple(sorted(labels))}"
        )

    def clear(self) -> None:
        """Drop every series (tests; production series only ever grow)."""
        with self._lock:
            self._series.clear()


class Counter(_Metric):
    """Monotonically increasing counter, optionally labelled."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))

    def _samples(self):
        for key, value in sorted(self._series.items()):
            yield self.name, key, value


class Gauge(_Metric):
    """A value that can go up and down (sizes, capacities, thresholds)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        if not _ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not _ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))

    def _samples(self):
        for key, value in sorted(self._series.items()):
            yield self.name, key, value


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * num_buckets  # per-bucket, non-cumulative
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket histogram with an implicit ``+Inf`` overflow bucket."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str, labels=(), buckets=DEFAULT_TIME_BUCKETS
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        if not _ENABLED:
            return
        key = self._key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets) + 1
                )
            series.counts[index] += 1
            series.sum += value
            series.count += 1

    def series(self, **labels) -> dict:
        """JSON-ready readout of one labelled series (zeros if unseen)."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return {
                    "count": 0,
                    "sum": 0.0,
                    "buckets": {_format_bound(b): 0 for b in self.buckets},
                }
            cumulative, total = {}, 0
            for bound, count in zip(self.buckets, series.counts):
                total += count
                cumulative[_format_bound(bound)] = total
            return {
                "count": series.count,
                "sum": series.sum,
                "buckets": cumulative,
            }

    def _samples(self):
        for key, series in sorted(self._series.items()):
            cumulative = 0
            for bound, count in zip(self.buckets, series.counts):
                cumulative += count
                yield (
                    f"{self.name}_bucket",
                    key + (("le", _format_bound(bound)),),
                    cumulative,
                )
            yield (
                f"{self.name}_bucket",
                key + (("le", "+Inf"),),
                series.count,
            )
            yield f"{self.name}_sum", key, series.sum
            yield f"{self.name}_count", key, series.count


class MetricsRegistry:
    """Named collection of metric families with idempotent registration.

    Layers register their metrics at import time against the global
    registry; re-registering an existing name returns the existing
    family when the kind and label set agree (so reloading a module, or
    two layers sharing a family, is safe) and raises on any mismatch.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help: str, labels=()) -> Counter:
        return self._register(Counter(name, help, labels))

    def gauge(self, name: str, help: str, labels=()) -> Gauge:
        return self._register(Gauge(name, help, labels))

    def histogram(
        self, name: str, help: str, labels=(), buckets=DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        return self._register(Histogram(name, help, labels, buckets))

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is None:
                self._metrics[metric.name] = metric
                return metric
            if (
                existing.kind != metric.kind
                or existing.label_names != metric.label_names
                or (
                    isinstance(existing, Histogram)
                    and existing.buckets != metric.buckets
                )
            ):
                raise ValueError(
                    f"metric {metric.name!r} already registered as "
                    f"{existing.kind}{existing.label_names}, cannot "
                    f"re-register as {metric.kind}{metric.label_names}"
                )
            return existing

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def families(self) -> list[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready state of every family (histograms cumulative)."""
        out: dict = {}
        for metric in self.families():
            if isinstance(metric, Histogram):
                with metric._lock:
                    keys = sorted(metric._series)
                series = [
                    {
                        "labels": dict(zip(metric.label_names, key)),
                        **metric.series(**dict(zip(metric.label_names, key))),
                    }
                    for key in keys
                ]
            else:
                with metric._lock:
                    items = sorted(metric._series.items())
                series = [
                    {
                        "labels": dict(zip(metric.label_names, key)),
                        "value": value,
                    }
                    for key, value in items
                ]
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "series": series,
            }
        return out

    def render(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for metric in self.families():
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            with metric._lock:
                samples = list(metric._samples())
            for name, key, value in samples:
                if key and isinstance(key[-1], tuple):  # histogram le pair
                    plain, extra = key[:-1], key[-1:]
                    names = metric.label_names + tuple(k for k, _ in extra)
                    values = plain + tuple(v for _, v in extra)
                else:
                    names, values = metric.label_names, key
                lines.append(
                    f"{name}{_render_labels(names, values)} "
                    f"{_format_value(value)}"
                )
        return "\n".join(lines) + "\n"


_GLOBAL = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry every instrumented layer records into."""
    return _GLOBAL
