"""Influence-aided exact NPN canonical forms (arXiv 2308.12311 direction).

The package pairs the source paper's face/point signatures with a true
canonical form:

* :mod:`repro.canonical.influence` — per-variable influence vectors and
  the influence-sorted candidate permutation order that finds a strong
  incumbent early;
* :mod:`repro.canonical.form` — the exact canonicalizer: ``canonical_min``
  gather kernels for ``n <= 6``, an influence-ordered, incumbent-bounded
  scalar search above, and the ``n{n}-c{hex}`` class-id scheme;
* :mod:`repro.canonical.engine` — :class:`CanonicalClassifier`, the
  hybrid engine that uses the MixedSignature as a cheap pre-filter and
  the exact form as the decider.
"""

from repro.canonical.engine import CanonicalClass, CanonicalClassifier
from repro.canonical.form import (
    canonical_class_id,
    canonical_form,
    canonical_forms,
    influence_canonical_scalar,
)
from repro.canonical.influence import candidate_permutations, influence_vector

__all__ = [
    "CanonicalClass",
    "CanonicalClassifier",
    "canonical_class_id",
    "canonical_form",
    "canonical_forms",
    "candidate_permutations",
    "influence_canonical_scalar",
    "influence_vector",
]
