"""Influence vectors and influence-sorted candidate permutations.

Influence (paper Definition 5, integer convention) is invariant under
input negation and output negation, and a permutation merely rearranges
it: if ``g = f ∘ perm`` with ``w_i = x_{perm[i]}`` then
``inf(g, perm[i]) = inf(f, i)``.  The canonical (orbit-minimum) table
therefore carries one of at most ``n!`` arrangements of the same
multiset of influences — and empirically the minimum overwhelmingly
arranges influence **non-decreasing** in variable index (a sampled n=4
probe finds the non-decreasing arrangement ~7x more often than the
non-increasing one).

:func:`candidate_permutations` turns that bias into a search order: all
``n!`` permutations, sorted so the ones producing a non-decreasing
influence arrangement come first, then by the arrangement itself.  The
exact search in :mod:`repro.canonical.form` walks this order, so a
near-minimal incumbent appears within the first few candidates and the
incumbent-prefix bound prunes the rest of the space.  Ordering never
drops a permutation — exactness is preserved by construction.
"""

from __future__ import annotations

import itertools
from functools import lru_cache

from repro.core.characteristics import influences
from repro.core.truth_table import TruthTable

__all__ = [
    "influence_vector",
    "arrangement_of",
    "candidate_permutations",
]


def influence_vector(tt: TruthTable) -> tuple[int, ...]:
    """Integer influence of every variable, in variable order.

    Thin alias of :func:`repro.core.characteristics.influences`, re-read
    here because the canonicalizer's ordering contract is stated in terms
    of this vector.
    """
    return influences(tt)


def arrangement_of(
    infl: tuple[int, ...], perm: tuple[int, ...]
) -> tuple[int, ...]:
    """Influence arrangement of ``g = f ∘ perm`` in ``g``'s variable order.

    ``inf(g, perm[i]) = inf(f, i)``, so entry ``j`` of the result is the
    influence of ``g``'s variable ``j``.
    """
    out = [0] * len(perm)
    for i, target in enumerate(perm):
        out[target] = infl[i]
    return tuple(out)


def _non_decreasing(values: tuple[int, ...]) -> bool:
    return all(a <= b for a, b in zip(values, values[1:]))


@lru_cache(maxsize=1024)
def _ordered_permutations(
    infl: tuple[int, ...],
) -> tuple[tuple[int, ...], ...]:
    n = len(infl)
    perms = list(itertools.permutations(range(n)))
    perms.sort(
        key=lambda perm: (
            not _non_decreasing(arrangement_of(infl, perm)),
            arrangement_of(infl, perm),
            perm,
        )
    )
    return tuple(perms)


def candidate_permutations(infl: tuple[int, ...]) -> tuple[tuple[int, ...], ...]:
    """All ``n!`` permutations, most-promising-first.

    Permutations whose image arranges influence non-decreasing in
    variable index sort first (the arrangement the orbit minimum usually
    carries), ties broken by the arrangement then the permutation itself,
    so the order is deterministic.  The full group is always returned —
    this is a *search order*, not a restriction.
    """
    return _ordered_permutations(tuple(int(v) for v in infl))
