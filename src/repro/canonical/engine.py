"""The hybrid canonical engine: signature pre-filter, exact decider.

:class:`CanonicalClassifier` classifies in two tiers:

1. **Pre-filter** — the vectorized MixedSignature pass of
   :class:`repro.engine.classifier.BatchedClassifier`.  Signatures are
   sound (NPN-equivalent functions never get different signatures), so
   functions in different buckets are decided for free.
2. **Decider** — inside a bucket, each structurally new table is matched
   against the bucket's already-discovered classes with the verified
   NPN matcher; only genuinely *new* classes reach the exact
   canonicalizer, one batched :func:`repro.canonical.form.canonical_forms`
   call per arity.

The result is keyed by :class:`CanonicalClass` — the exact orbit-minimum
representative — so equal keys mean NPN-equivalent *for certain*, rare
signature collisions split correctly, and every class carries the
portable ``n{n}-c{hex}`` id.  The pre-filter typically prunes well over
90% of exact-canonicalization calls on mixed hit/miss traffic
(``benchmarks/bench_canonical.py`` pins this).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.baselines.matcher import find_npn_transform
from repro.canonical.form import canonical_class_id, canonical_forms
from repro.core.classifier import ClassificationResult
from repro.core.msv import DEFAULT_PARTS, MixedSignature
from repro.core.truth_table import TruthTable
from repro.engine.cache import SignatureCache
from repro.engine.classifier import BatchedClassifier
from repro.engine.packed import PackedTables

__all__ = ["CanonicalClass", "CanonicalClassifier", "CanonicalStats"]

#: Cache-key tag for canonical forms (shares the LRU key shape
#: ``(bits, n, parts)`` with signatures without ever colliding).
_FORM_PARTS = ("canonical-form",)

_REG = obs.registry()
_FUNCTIONS = _REG.counter(
    "repro_canonical_functions_total",
    "Functions classified by the canonical engine.",
)
_DECISIONS = _REG.counter(
    "repro_canonical_decisions_total",
    "How each structurally new function was decided: matcher (pruned) "
    "vs. exact canonicalization.",
    labels=("via",),
)
_MATCHER_CALLS = _REG.counter(
    "repro_canonical_matcher_calls_total",
    "Verified-matcher probes run inside signature buckets.",
)
_CANONICAL_SECONDS = _REG.histogram(
    "repro_canonical_form_seconds",
    "Wall-clock time of one batched exact-canonicalization call "
    "(per arity batch).",
)


@dataclass(frozen=True)
class CanonicalClass:
    """Class key of the canonical engine: the exact orbit minimum.

    Unlike a :class:`~repro.core.msv.MixedSignature`, equality is a
    certificate: two functions share a :class:`CanonicalClass` iff they
    are NPN equivalent.
    """

    n: int
    bits: int

    @property
    def key(self):
        """Hashable payload (mirrors ``MixedSignature.key`` for digests)."""
        return (self.n, self.bits)

    @property
    def table(self) -> TruthTable:
        """The canonical representative as a truth table."""
        return TruthTable(self.n, self.bits)

    @property
    def class_id(self) -> str:
        """The portable ``n{n}-c{hex}`` library id of this orbit."""
        return canonical_class_id(self.table)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.class_id


@dataclass
class CanonicalStats:
    """Running counters of one :class:`CanonicalClassifier`.

    ``pruned_fraction`` is the head-to-head metric: the share of
    functions the signature pre-filter + matcher decided *without* an
    exact canonicalization.
    """

    functions: int = 0
    classes: int = 0
    canonical_calls: int = 0
    matcher_calls: int = 0

    @property
    def pruned_fraction(self) -> float:
        if not self.functions:
            return 0.0
        return 1.0 - self.canonical_calls / self.functions

    def as_dict(self) -> dict:
        return {
            "functions": self.functions,
            "classes": self.classes,
            "canonical_calls": self.canonical_calls,
            "matcher_calls": self.matcher_calls,
            "pruned_fraction": self.pruned_fraction,
        }


@dataclass
class _Bucket:
    """Per-signature state: discovered classes and a bits fast path."""

    classes: list[tuple[TruthTable, int]] = field(default_factory=list)
    by_bits: dict[int, int] = field(default_factory=dict)


class CanonicalClassifier:
    """Exact NPN classifier with a signature pre-filter.

    Drop-in alongside the other engines (`make_classifier("canonical")`):
    same ``classify`` / ``signatures`` surface, but result groups are
    keyed by :class:`CanonicalClass` instead of raw signatures.

    Example:
        >>> from repro import TruthTable
        >>> from repro.canonical import CanonicalClassifier
        >>> clf = CanonicalClassifier()
        >>> maj = TruthTable.majority(3)
        >>> result = clf.classify([maj, ~maj, maj.flip_input(1)])
        >>> [key.class_id for key in result.groups]
        ['n3-c17']
    """

    def __init__(
        self,
        parts: Iterable[str] = DEFAULT_PARTS,
        cache_size: int = 1 << 16,
        chunk_size: int | None = None,
        cache_dir: str | Path | None = None,
    ) -> None:
        self._batched = BatchedClassifier(parts, cache_size, chunk_size)
        self.parts = self._batched.parts
        self.cache_dir = cache_dir
        self._forms = SignatureCache(maxsize=cache_size)
        self.stats = CanonicalStats()

    # ------------------------------------------------------------------
    # Signatures (pre-filter tier, delegated)
    # ------------------------------------------------------------------

    def signature(self, tt: TruthTable) -> MixedSignature:
        """The MSV of one function (cached, vectorized)."""
        return self._batched.signature(tt)

    def signatures(
        self, tables: Sequence[TruthTable] | PackedTables
    ) -> list[MixedSignature]:
        """MSVs of many functions, in input order."""
        return self._batched.signatures(tables)

    # ------------------------------------------------------------------
    # Canonical forms
    # ------------------------------------------------------------------

    def canonical(self, tt: TruthTable) -> TruthTable:
        """Exact canonical representative of one function (cached)."""
        return self._canonical_batch([tt])[0]

    def _canonical_batch(self, tables: Sequence[TruthTable]) -> list[TruthTable]:
        """Canonical forms of arbitrary tables, LRU-cached per orbit member."""
        out: list[TruthTable | None] = [None] * len(tables)
        misses: dict[int, list[tuple[int, TruthTable]]] = {}
        for index, tt in enumerate(tables):
            cached = self._forms.get((tt.bits, tt.n, _FORM_PARTS))
            if cached is not None:
                out[index] = cached
            else:
                misses.setdefault(tt.n, []).append((index, tt))
        for n, pending in misses.items():
            with obs.timed(_CANONICAL_SECONDS):
                reps = canonical_forms(
                    [tt for _, tt in pending], n, cache_dir=self.cache_dir
                )
            self.stats.canonical_calls += len(pending)
            _DECISIONS.inc(len(pending), via="canonical")
            for (index, tt), rep in zip(pending, reps):
                self._forms.put((tt.bits, tt.n, _FORM_PARTS), rep)
                out[index] = rep
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def classify(
        self, tables: Sequence[TruthTable] | PackedTables
    ) -> ClassificationResult:
        """Group functions into *exact* NPN classes.

        Result groups are keyed by :class:`CanonicalClass` in first-seen
        class order with members in input order — the same shape the
        signature engines produce, so ``buckets_digest`` and downstream
        library construction work unchanged.
        """
        if isinstance(tables, PackedTables):
            members = tables.to_tables()
            signatures = self._batched.signatures(tables)
        else:
            members = list(tables)
            signatures = self._batched.signatures(members)
        self.stats.functions += len(members)
        _FUNCTIONS.inc(len(members))

        buckets: dict[MixedSignature, _Bucket] = {}
        firsts: list[TruthTable] = []  # first-seen member per new class
        assignment: list[int] = []
        for tt, signature in zip(members, signatures):
            bucket = buckets.setdefault(signature, _Bucket())
            index = bucket.by_bits.get(tt.bits)
            if index is None:
                for first, existing in bucket.classes:
                    self.stats.matcher_calls += 1
                    _MATCHER_CALLS.inc()
                    if find_npn_transform(first, tt) is not None:
                        index = existing
                        _DECISIONS.inc(via="matcher")
                        break
                if index is None:
                    index = len(firsts)
                    firsts.append(tt)
                    bucket.classes.append((tt, index))
                bucket.by_bits[tt.bits] = index
            assignment.append(index)

        reps = self._canonical_batch(firsts)
        keys = [CanonicalClass(rep.n, rep.bits) for rep in reps]
        self.stats.classes += len(keys)
        result = ClassificationResult(self.parts)
        groups = result.groups
        for index, tt in zip(assignment, members):
            groups.setdefault(keys[index], []).append(tt)  # type: ignore[arg-type]
        return result

    def count_classes(
        self, tables: Sequence[TruthTable] | PackedTables
    ) -> int:
        """Number of exact classes without retaining membership."""
        return self.classify(tables).num_classes

    @property
    def cache_stats(self):
        """Hit/miss counters of the underlying signature cache."""
        return self._batched.cache_stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CanonicalClassifier(parts={self.parts}, "
            f"classes={self.stats.classes}, "
            f"canonical_calls={self.stats.canonical_calls})"
        )
