"""The exact canonical form: orbit minimum at every arity.

One rule everywhere: the canonical representative of ``f`` is the
lexicographically smallest truth table in ``f``'s full NPN orbit — the
same value :func:`repro.baselines.exact_enum.exact_npn_canonical`
computes.  What changes with arity is only *how* it is computed:

* ``n <= 6`` — the batched :func:`repro.kernels.canonical_min` gather
  kernels (byte-identical to the exhaustive enumeration);
* ``n > 6`` — :func:`influence_canonical_scalar`, an exact search that
  walks permutations in the influence-sorted candidate order (strong
  incumbent early) and bounds the per-permutation phase enumeration by
  the incumbent's most-significant 64-bit word, so almost every phase
  assignment is rejected from its top word alone.

Class ids are a pure function of the orbit: ``n{n}-c{hex}`` where the
hex *is* the canonical representative (fixed width, MSB first).  Two
libraries built independently therefore mint identical ids for the same
orbit — the property the digest scheme could not offer.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import obs
from repro.canonical.influence import candidate_permutations, influence_vector
from repro.core import bitops
from repro.core.truth_table import TruthTable
from repro.kernels.gather import MAX_KERNEL_VARS
from repro.kernels.ops import canonical_min, pack_rows

__all__ = [
    "canonical_form",
    "canonical_forms",
    "influence_canonical_scalar",
    "canonical_class_id",
    "parse_canonical_class_id",
]

#: Registry mirror of the scalar search's per-call counters dict: how
#: hard the incumbent-bounded search worked (``permutations`` tried,
#: ``phase_candidates`` screened by top word, ``phases_materialized``
#: fully built) — the pruned fraction is 1 - materialized/candidates.
_SEARCH_STEPS = obs.registry().counter(
    "repro_canonical_search_steps_total",
    "Influence-aided scalar canonical search work, by step kind.",
    labels=("kind",),
)

#: Soft cap on uint8 gather entries one scalar phase block materialises.
_SCALAR_ENTRY_BUDGET = 1 << 22


def canonical_form(tt: TruthTable, cache_dir: str | Path | None = None) -> TruthTable:
    """Exact canonical representative (orbit minimum) of one function."""
    if tt.n <= MAX_KERNEL_VARS:
        return TruthTable(
            tt.n, int(canonical_min([tt.bits], tt.n, cache_dir=cache_dir)[0])
        )
    return influence_canonical_scalar(tt)


def canonical_forms(
    tables,
    n: int | None = None,
    cache_dir: str | Path | None = None,
) -> list[TruthTable]:
    """Exact canonical representatives of a same-arity batch.

    ``n <= 6`` runs as one batched kernel call; larger arities fall back
    to the scalar search per table (deduplicated by raw bits, since the
    scalar path is the expensive one).
    """
    items = list(tables)
    if not items:
        return []
    arity = n
    ints: list[int] = []
    for item in items:
        if isinstance(item, TruthTable):
            if arity is None:
                arity = item.n
            elif item.n != arity:
                raise ValueError(f"mixed arities in batch: {item.n} != {arity}")
            ints.append(item.bits)
        else:
            ints.append(int(item))
    if arity is None:
        raise ValueError("pass n when tables are raw integers")
    if arity <= MAX_KERNEL_VARS:
        mins = canonical_min(ints, arity, cache_dir=cache_dir)
        return [TruthTable(arity, int(value)) for value in mins]
    cache: dict[int, TruthTable] = {}
    out = []
    for bits in ints:
        rep = cache.get(bits)
        if rep is None:
            rep = influence_canonical_scalar(TruthTable(arity, bits))
            cache[bits] = rep
        out.append(rep)
    return out


def influence_canonical_scalar(
    tt: TruthTable, stats: dict | None = None
) -> TruthTable:
    """Exact orbit minimum by influence-ordered, incumbent-bounded search.

    Enumerates both output phases and all ``n!`` permutations — in the
    :func:`~repro.canonical.influence.candidate_permutations` order — and
    for each, all ``2^n`` input-phase assignments as one numpy gather.
    For ``n > 6`` only the most-significant 64-bit word of every phase
    image is packed first; phases whose top word already exceeds the
    incumbent's are discarded without materialising the full table
    (sound: the top word is the most-significant lexicographic prefix).

    Works at any arity — small ``n`` exercise the same code in tests —
    and is byte-identical to ``exact_npn_canonical``.  ``stats``, when
    given, accumulates ``permutations``, ``phase_candidates`` and
    ``phases_materialized`` counters.
    """
    n = tt.n
    if n == 0:
        return TruthTable(0, 0)  # orbit of a constant is {f, ~f}
    size = 1 << n
    perms = candidate_permutations(influence_vector(tt))
    best = bitops.table_mask(n)
    mask_chunk = max(1, _SCALAR_ENTRY_BUDGET // size)
    all_masks = np.arange(size, dtype=np.intp)
    minterms = all_masks[None, :]
    counters = {"permutations": 0, "phase_candidates": 0, "phases_materialized": 0}
    for output_phase in (0, 1):
        base = tt.bits if output_phase == 0 else bitops.flip_output(tt.bits, n)
        for perm in perms:
            counters["permutations"] += 1
            permuted = bitops.permute_inputs(base, n, perm)
            raw = permuted.to_bytes(max(1, size // 8), "little")
            bits = np.unpackbits(
                np.frombuffer(raw, dtype=np.uint8), bitorder="little"
            )[:size]
            for start in range(0, size, mask_chunk):
                masks = all_masks[start : start + mask_chunk]
                counters["phase_candidates"] += len(masks)
                # images[m, x] = permuted[x ^ m] == flip_inputs(permuted, m)
                images = bits[masks[:, None] ^ minterms]
                if size <= 64:
                    counters["phases_materialized"] += len(masks)
                    low = int(pack_rows(images).min())
                    if low < best:
                        best = low
                    continue
                msb_first = images[:, ::-1]
                top = (
                    np.ascontiguousarray(
                        np.packbits(msb_first[:, :64], axis=1, bitorder="big")
                    )
                    .view(">u8")
                    .ravel()
                )
                survivors = np.nonzero(top <= np.uint64(best >> (size - 64)))[0]
                for row in survivors:
                    counters["phases_materialized"] += 1
                    value = int.from_bytes(
                        np.packbits(msb_first[row], bitorder="big").tobytes(),
                        "big",
                    )
                    if value < best:
                        best = value
    if stats is not None:
        for key, value in counters.items():
            stats[key] = stats.get(key, 0) + value
    for kind, value in counters.items():
        _SEARCH_STEPS.inc(value, kind=kind)
    return TruthTable(n, best)


def canonical_class_id(rep: TruthTable) -> str:
    """``n{n}-c{hex}`` — the id *is* the canonical representative.

    Injective by construction (``to_hex`` is fixed-width, MSB first), so
    two orbits can never share an id and the same orbit gets the same id
    on every machine.
    """
    return f"n{rep.n}-c{rep.to_hex()}"


def parse_canonical_class_id(class_id: str) -> TruthTable | None:
    """Recover the representative from a canonical id; ``None`` if not one."""
    head, sep, payload = class_id.partition("-c")
    if not sep or not head.startswith("n") or not payload:
        return None
    try:
        n = int(head[1:])
        return TruthTable.from_hex(n, payload)
    except (ValueError, TypeError):
        return None
