"""Experiment drivers — one module per paper table/figure.

Each driver returns plain row dicts so the three consumers (pytest-bench
wrappers under ``benchmarks/``, the CLI, and EXPERIMENTS.md generation)
share one implementation:

* :mod:`repro.experiments.table1` — signature vectors of f1/f3 (Table I);
* :mod:`repro.experiments.table2` — class counts per signature-vector
  combination vs exact (Table II);
* :mod:`repro.experiments.table3` — runtime/accuracy comparison of all
  classifiers (Table III);
* :mod:`repro.experiments.fig5`   — runtime stability on consecutive
  random sets (Fig. 5);
* :mod:`repro.experiments.fig34`  — discrimination witnesses (Figs. 3-4);
* :mod:`repro.experiments.workload_cache` — shared extraction of the
  EPFL-like cut-function sets.
"""

from repro.experiments.workload_cache import benchmark_functions, scale_settings

__all__ = ["benchmark_functions", "scale_settings"]
