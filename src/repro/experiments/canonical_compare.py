"""Head-to-head: signature-bucket engine vs the exact canonical engine.

One row per arity (n = 4..6): functions classified, class counts and
classes/second for the batched signature engine and the hybrid
:class:`~repro.canonical.engine.CanonicalClassifier`, plus the
canonical engine's decider statistics — how many exact
canonicalizations actually ran and what fraction of the traffic the
signature pre-filter + matcher pruned away.

The workload is serving-shaped: a minority of hot orbits supplies most
of the traffic as NPN images (repeat hits), salted with fresh random
functions (misses).  Exact canonicalization is only ever needed once
per *class*, so on such traffic the pre-filter decides the repeats for
free and the pruned fraction is high — the property
``benchmarks/bench_canonical.py`` gates at >= 90% for n = 6 and
persists to ``BENCH_canonical.json``.
"""

from __future__ import annotations

import random
import time

from repro.canonical.engine import CanonicalClassifier
from repro.engine import BatchedClassifier
from repro.workloads.random_functions import (
    random_tables,
    seeded_equivalent_tables,
)

__all__ = ["COMPARE_ARITIES", "canonical_compare_row", "run_canonical_compare"]

#: Arities of the head-to-head table (the kernel-backed range).
COMPARE_ARITIES = (4, 5, 6)


def _mixed_workload(
    n: int, orbits: int, repeats: int, fresh: int, seed: int
):
    """Hot-orbit repeat traffic plus fresh misses, deterministically mixed."""
    tables, _ = seeded_equivalent_tables(
        n, orbits=orbits, members_per_orbit=repeats, seed=seed
    )
    tables += random_tables(n, fresh, seed + 1)
    random.Random(seed + 2).shuffle(tables)
    return tables


def canonical_compare_row(
    n: int,
    orbits: int = 40,
    repeats: int = 24,
    fresh: int = 40,
    seed: int = 2023,
) -> dict:
    """One table row: both engines over the same mixed workload."""
    tables = _mixed_workload(n, orbits, repeats, fresh, seed)

    start = time.perf_counter()
    signature_result = BatchedClassifier().classify(tables)
    signature_seconds = time.perf_counter() - start

    engine = CanonicalClassifier()
    start = time.perf_counter()
    canonical_result = engine.classify(tables)
    canonical_seconds = time.perf_counter() - start

    stats = engine.stats
    return {
        "n": n,
        "functions": len(tables),
        "signature_classes": signature_result.num_classes,
        "signature_seconds": round(signature_seconds, 4),
        "signature_classes_per_s": round(
            signature_result.num_classes / signature_seconds
        ),
        "canonical_classes": canonical_result.num_classes,
        "canonical_seconds": round(canonical_seconds, 4),
        "canonical_classes_per_s": round(
            canonical_result.num_classes / canonical_seconds
        ),
        "canonical_calls": stats.canonical_calls,
        "matcher_calls": stats.matcher_calls,
        "pruned_fraction": round(stats.pruned_fraction, 4),
    }


def run_canonical_compare(
    orbits: int = 40, repeats: int = 24, fresh: int = 40, seed: int = 2023
) -> list[dict]:
    """The full head-to-head table over :data:`COMPARE_ARITIES`."""
    return [
        canonical_compare_row(
            n, orbits=orbits, repeats=repeats, fresh=fresh, seed=seed
        )
        for n in COMPARE_ARITIES
    ]
