"""Fig. 5 — runtime stability on consecutive-encoding random sets.

The paper plots cumulative runtime against the number of classified
functions for 5-bit and 7-bit sets, contrasting its signature classifier
(nearly linear, workload-independent) with the canonical-form method of
``testnpn -11`` (widely fluctuating).  :func:`run_fig5` reproduces both
series plus a stability score: the relative spread of per-chunk runtimes,
which is near zero for a linear-time method.
"""

from __future__ import annotations

from collections.abc import Sequence
from contextlib import nullcontext

from repro.analysis.timing import (
    incremental_times,
    incremental_times_bulk,
    time_classifier,
)
from repro.baselines import get_classifier
from repro.experiments.workload_cache import scale_settings
from repro.workloads.random_functions import consecutive_tables

__all__ = ["run_fig5", "fig5_series"]


def fig5_series(
    n: int,
    counts: Sequence[int],
    methods: Sequence[str] = ("ours", "zhou20"),
    seed: int = 42,
    sharded_workers: int | None = None,
) -> dict:
    """Cumulative-runtime series for one bit width.

    Returns ``{"n": n, "points": counts, method: [seconds...], ...}``.
    Each count uses a fresh consecutive block (different random start), as
    in the paper's per-point regeneration.  With ``sharded_workers`` set,
    an ``ours_sharded`` series driven by the multi-process engine is
    added alongside the named methods.
    """
    result: dict = {"n": n, "points": list(counts)}
    tables = consecutive_tables(n, max(counts), seed=seed)
    for method in methods:
        series = incremental_times(
            get_classifier(method), tables, points=sorted(counts)
        )
        result[method] = [round(seconds, 4) for __, seconds in series]
    if sharded_workers is not None:
        from repro.engine import ShardedClassifier

        classifier = ShardedClassifier(workers=sharded_workers)
        # One pool held across all increments: the series must measure
        # classification, not per-point pool forking.
        with classifier.open_pool():
            series = incremental_times_bulk(
                classifier, tables, points=sorted(counts)
            )
        result["ours_sharded"] = [round(seconds, 4) for __, seconds in series]
    return result


def block_stability(
    n: int,
    block_size: int,
    methods: Sequence[str] = ("ours", "zhou20"),
    blocks: int = 10,
    base_seed: int = 1,
    extra_classifiers: dict[str, object] | None = None,
) -> dict[str, float]:
    """Relative spread of runtimes across independently drawn blocks.

    The paper's Fig. 5 x-axis regenerates a *fresh* consecutive set per
    point ("we randomly generate a fixed number of Boolean functions ...
    for each bit") and observes that the canonical-form method's runtime
    fluctuates widely between sets while the signature classifier's does
    not.  This measures exactly that: ``blocks`` consecutive sets with
    different random starts are each timed whole, and the score is
    ``stdev / mean`` of the block times.  Workload-*independent* methods
    score near zero; methods whose cost depends on the functions'
    symmetry structure score higher.
    """
    import statistics

    scores: dict[str, float] = {}
    sets = [
        consecutive_tables(n, block_size, seed=base_seed + 101 * k)
        for k in range(blocks)
    ]
    named = {method: get_classifier(method) for method in methods}
    named.update(extra_classifiers or {})
    for label, classifier in named.items():
        scope = (
            classifier.open_pool()
            if hasattr(classifier, "open_pool")
            else nullcontext()
        )
        with scope:
            times = [
                time_classifier(classifier, tables).seconds for tables in sets
            ]
        mean = statistics.mean(times)
        scores[label] = statistics.stdev(times) / mean if mean else 0.0
    return scores


def run_fig5(
    scale: str | None = None,
    widths: Sequence[int] = (5, 7),
    methods: Sequence[str] = ("ours", "zhou20"),
    sharded_workers: int | None = None,
) -> list[dict]:
    """Regenerate both Fig. 5 panels plus stability scores.

    The ``stability`` entries give each method's relative spread of
    runtimes across ten independently drawn consecutive sets (see
    :func:`block_stability`) — the quantitative version of "our
    classifier has stable runtime".  ``sharded_workers`` adds the
    multi-process engine as an ``ours_sharded`` series and stability
    score.
    """
    settings = scale_settings(scale)
    counts = settings.fig5_counts
    extra: dict[str, object] = {}
    if sharded_workers is not None:
        from repro.engine import ShardedClassifier

        extra["ours_sharded"] = ShardedClassifier(workers=sharded_workers)
    rows = []
    for n in widths:
        row = fig5_series(n, counts, methods, sharded_workers=sharded_workers)
        scores = block_stability(
            n, counts[0], methods, base_seed=7 * n + 1, extra_classifiers=extra
        )
        for label in scores:
            row[f"{label}_stability"] = round(scores[label], 4)
        rows.append(row)
    return rows
