"""Table I — example signature vectors of the paper's f1 and f3.

``f1`` is the 3-majority of Fig. 1a; ``f3`` is the function of Fig. 1c
(the projection onto the third variable, identified from its printed
signatures).  :func:`run_table1` recomputes every row and marks whether it
matches the value printed in the paper.
"""

from __future__ import annotations

from repro.core import signatures as sig
from repro.core.truth_table import TruthTable

__all__ = ["run_table1", "PAPER_VALUES"]

#: Every cell of the paper's Table I.
PAPER_VALUES = {
    "OCV1": {
        "f1": (1, 1, 1, 3, 3, 3),
        "f3": (0, 2, 2, 2, 2, 4),
    },
    "OCV2": {
        "f1": (0, 0, 0, 1, 1, 1, 1, 1, 1, 2, 2, 2),
        "f3": (0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2),
    },
    "OIV": {"f1": (2, 2, 2), "f3": (0, 0, 4)},
    "OSV1": {"f1": (0, 2, 2, 2), "f3": (1, 1, 1, 1)},
    "OSV0": {"f1": (0, 2, 2, 2), "f3": (1, 1, 1, 1)},
    "OSV": {
        "f1": (0, 0, 2, 2, 2, 2, 2, 2),
        "f3": (1, 1, 1, 1, 1, 1, 1, 1),
    },
    "OSDV1": {
        "f1": (0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0),
        "f3": (0, 0, 0, 4, 2, 0, 0, 0, 0, 0, 0, 0),
    },
    "OSDV": {
        "f1": (0, 0, 1, 0, 0, 0, 6, 6, 3, 0, 0, 0),
        "f3": (0, 0, 0, 12, 12, 4, 0, 0, 0, 0, 0, 0),
    },
}

_VECTORS = {
    "OCV1": sig.ocv1,
    "OCV2": sig.ocv2,
    "OIV": sig.oiv,
    "OSV1": sig.osv1,
    "OSV0": sig.osv0,
    "OSV": sig.osv,
    "OSDV1": sig.osdv1,
    "OSDV": sig.osdv,
}


def run_table1() -> list[dict]:
    """Recompute Table I; each row records measured vs paper values."""
    f1 = TruthTable.majority(3)
    f3 = TruthTable.projection(3, 2)
    rows = []
    for name, compute in _VECTORS.items():
        measured_f1 = compute(f1)
        measured_f3 = compute(f3)
        rows.append(
            {
                "signature": name,
                "f1": measured_f1,
                "f3": measured_f3,
                "matches_paper": (
                    measured_f1 == PAPER_VALUES[name]["f1"]
                    and measured_f3 == PAPER_VALUES[name]["f3"]
                ),
            }
        )
    return rows
