"""Figs. 3-4 — the paper's discrimination and balance case studies.

Fig. 3 shows two balanced, NPN-equivalent 4-variable functions whose
``OSV0``/``OSV1`` vectors swap — the reason Theorem 3 splits the balanced
case.  Fig. 4 shows two pairs of *non*-equivalent functions:

* ``g1, g2`` share ``OCV1`` and ``OCV2`` but differ in ``OIV``;
* ``h1, h2`` share ``OCV1``, ``OCV2`` and ``OIV`` but differ in ``OSV1``.

The figures are drawings, but the paper prints every signature value, so
the functions can be *reconstructed* by exhaustive search over all 65536
4-variable functions.  These searches double as evidence for the paper's
Section IV-A claim that the point characteristics strictly refine the
face characteristics.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core import signatures as sig
from repro.core.truth_table import TruthTable

__all__ = [
    "find_fig3_witness",
    "find_fig4_g_witness",
    "find_fig4_h_witness",
    "run_fig34",
]

#: Signature values printed in the paper for the Fig. 3 / Fig. 4 functions.
FIG3_OSV1 = (1, 1, 1, 1, 2, 2, 3, 3)
FIG3_OSV0 = (0, 1, 2, 2, 2, 2, 2, 3)
FIG4_G_OCV1 = (3, 4, 4, 4, 4, 4, 4, 5)
FIG4_G_OCV2 = (1, 1, 1) + (2,) * 18 + (3, 3, 3)
FIG4_G_OIV = {(6, 6, 6, 8), (2, 6, 6, 8)}
FIG4_H_OCV1 = (2, 3, 3, 3, 4, 4, 4, 5)
FIG4_H_OCV2 = (0,) + (1,) * 8 + (2,) * 11 + (3,) * 4
FIG4_H_OIV = (3, 5, 5, 5)
FIG4_H_OSV1 = {(2, 2, 2, 2, 3, 3, 4), (1, 2, 3, 3, 3, 3, 3)}


def _search_4var(predicate: Callable[[TruthTable], bool], limit: int):
    """All 4-variable functions satisfying a predicate (bounded)."""
    found = []
    for bits in range(1 << 16):
        tt = TruthTable(4, bits)
        if predicate(tt):
            found.append(tt)
            if len(found) >= limit:
                break
    return found


def find_fig3_witness() -> TruthTable | None:
    """A balanced 4-var function with the exact Fig. 3 OSV1/OSV0 values.

    Its complement is NPN equivalent by construction and carries the
    swapped vectors — precisely the phenomenon Fig. 3 illustrates.
    """
    matches = _search_4var(
        lambda tt: tt.is_balanced
        and sig.osv1(tt) == FIG3_OSV1
        and sig.osv0(tt) == FIG3_OSV0,
        limit=1,
    )
    return matches[0] if matches else None


def find_fig4_g_witness() -> tuple[TruthTable, TruthTable] | None:
    """``(g1, g2)``: equal OCV1/OCV2, different OIV, per the printed values."""
    candidates = _search_4var(
        lambda tt: sig.ocv1(tt) == FIG4_G_OCV1
        and sig.oiv(tt) in FIG4_G_OIV
        and sig.ocv2(tt) == FIG4_G_OCV2,
        limit=4096,
    )
    by_oiv: dict[tuple, TruthTable] = {}
    for tt in candidates:
        by_oiv.setdefault(sig.oiv(tt), tt)
        if len(by_oiv) == 2:
            values = list(by_oiv.values())
            return values[0], values[1]
    return None


def find_fig4_h_witness() -> tuple[TruthTable, TruthTable] | None:
    """``(h1, h2)``: equal OCV1/OCV2/OIV, different OSV1."""
    candidates = _search_4var(
        lambda tt: sig.ocv1(tt) == FIG4_H_OCV1
        and sig.oiv(tt) == FIG4_H_OIV
        and sig.ocv2(tt) == FIG4_H_OCV2
        and sig.osv1(tt) in FIG4_H_OSV1,
        limit=4096,
    )
    by_osv: dict[tuple, TruthTable] = {}
    for tt in candidates:
        by_osv.setdefault(sig.osv1(tt), tt)
        if len(by_osv) == 2:
            values = list(by_osv.values())
            return values[0], values[1]
    return None


def run_fig34() -> list[dict]:
    """Reconstruct all three case studies and verify the paper's claims."""
    from repro.baselines.matcher import are_npn_equivalent

    rows = []

    fig3 = find_fig3_witness()
    if fig3 is not None:
        complement = ~fig3
        rows.append(
            {
                "case": "fig3",
                "functions": (str(fig3), str(complement)),
                "claim": "balanced equivalent pair swaps OSV0/OSV1",
                "holds": (
                    sig.osv1(complement) == sig.osv0(fig3)
                    and sig.osv0(complement) == sig.osv1(fig3)
                    and are_npn_equivalent(fig3, complement)
                ),
            }
        )

    g_pair = find_fig4_g_witness()
    if g_pair is not None:
        g1, g2 = g_pair
        rows.append(
            {
                "case": "fig4-g",
                "functions": (str(g1), str(g2)),
                "claim": "OIV splits a pair OCV1/OCV2 cannot",
                "holds": (
                    sig.ocv1(g1) == sig.ocv1(g2)
                    and sig.ocv2(g1) == sig.ocv2(g2)
                    and sig.oiv(g1) != sig.oiv(g2)
                    and not are_npn_equivalent(g1, g2)
                ),
            }
        )

    h_pair = find_fig4_h_witness()
    if h_pair is not None:
        h1, h2 = h_pair
        rows.append(
            {
                "case": "fig4-h",
                "functions": (str(h1), str(h2)),
                "claim": "OSV splits a pair OCV1/OCV2/OIV cannot",
                "holds": (
                    sig.ocv1(h1) == sig.ocv1(h2)
                    and sig.ocv2(h1) == sig.ocv2(h2)
                    and sig.oiv(h1) == sig.oiv(h2)
                    and sig.osv1(h1) != sig.osv1(h2)
                    and not are_npn_equivalent(h1, h2)
                ),
            }
        )
    return rows
