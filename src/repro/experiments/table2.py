"""Table II — classification quality of each signature-vector combination.

For every cut size ``n``, counts the classes produced by each MSV part
selection and compares against the exact class count.  The paper's column
set is reproduced verbatim; two structural properties must hold on any
workload (and are asserted by the integration tests):

* every column is <= the exact count (signatures never split orbits);
* columns refine left to right as parts are added.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.exact import ExactClassifier
from repro.core.classifier import FacePointClassifier
from repro.core.truth_table import TruthTable
from repro.experiments.workload_cache import benchmark_functions, scale_settings

__all__ = ["COLUMNS", "run_table2", "table2_row"]

#: The paper's Table II columns: label -> MSV part selection.
COLUMNS: dict[str, tuple[str, ...]] = {
    "OIV": ("oiv",),
    "OCV1": ("c0", "ocv1"),
    "OSV": ("osv",),
    "OIV+OSV": ("oiv", "osv"),
    "OCV1+OSV": ("c0", "ocv1", "osv"),
    "OCV1+OCV2+OSV": ("c0", "ocv1", "ocv2", "osv"),
    "OIV+OSV+OSDV": ("oiv", "osv", "osdv"),
    "All": ("c0", "ocv1", "ocv2", "oiv", "osv", "osdv"),
}


def table2_row(n: int, tables: Sequence[TruthTable], exact: bool = True) -> dict:
    """One Table II row for a pre-built function set."""
    row: dict = {"n": n, "functions": len(tables)}
    row["exact"] = (
        ExactClassifier().count_classes(tables) if exact else None
    )
    for label, parts in COLUMNS.items():
        row[label] = FacePointClassifier(parts).count_classes(tables)
    return row


def run_table2(scale: str | None = None, exact: bool = True) -> list[dict]:
    """Regenerate Table II on the EPFL-like workload at the given scale."""
    settings = scale_settings(scale)
    functions = benchmark_functions(settings.name)
    return [
        table2_row(n, functions[n], exact=exact) for n in sorted(functions)
    ]
