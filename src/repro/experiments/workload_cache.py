"""Shared benchmark-function extraction with in-process caching.

Tables II and III run over the same per-``n`` function sets; extracting
them once per process keeps the bench suite fast.  The scale knob mirrors
the reproduction policy in DESIGN.md: ``small`` (default) keeps pure
Python runtimes in seconds-to-minutes; ``paper`` removes the caps and
grows the circuits for a full-fidelity run (set the environment variable
``REPRO_BENCH_SCALE=paper``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from repro.core.truth_table import TruthTable
from repro.workloads.epfl import epfl_like_suite
from repro.workloads.extraction import extract_cut_functions

__all__ = ["ScaleSettings", "scale_settings", "benchmark_functions"]


@dataclass(frozen=True)
class ScaleSettings:
    """Knobs resolved from a scale name."""

    name: str
    suite_scale: int
    sizes: tuple[int, ...]
    limit_per_size: int | None
    max_cuts: int
    fig5_counts: tuple[int, ...]
    kitty_max_n: int
    kitty_limit: int


_PRESETS = {
    "smoke": ScaleSettings("smoke", 1, (4, 5, 6), 300, 8, (200, 400, 800), 4, 60),
    "small": ScaleSettings(
        "small", 1, (4, 5, 6, 7, 8), 4000, 12, (1000, 2000, 4000, 8000), 5, 300
    ),
    "paper": ScaleSettings(
        "paper",
        3,
        (4, 5, 6, 7, 8, 9, 10),
        None,
        16,
        (100_000, 500_000, 1_000_000, 1_500_000, 2_000_000, 2_500_000),
        6,
        20_000,
    ),
}


def scale_settings(name: str | None = None) -> ScaleSettings:
    """Resolve a scale by name, or from ``REPRO_BENCH_SCALE`` (default small)."""
    if name is None:
        name = os.environ.get("REPRO_BENCH_SCALE", "small")
    try:
        return _PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(_PRESETS))
        raise ValueError(f"unknown scale {name!r}; known: {known}") from None


@lru_cache(maxsize=4)
def benchmark_functions(scale_name: str) -> dict[int, list[TruthTable]]:
    """The per-``n`` EPFL-like cut-function sets for a scale (cached)."""
    settings = scale_settings(scale_name)
    suite = epfl_like_suite(scale=settings.suite_scale)
    return extract_cut_functions(
        suite.values(),
        sizes=settings.sizes,
        max_cuts=settings.max_cuts,
        limit_per_size=settings.limit_per_size,
    )
