"""Table III — runtime and accuracy comparison of NPN classifiers.

Methods, mirroring the paper's columns:

* ``kitty``        — exhaustive exact canonicalisation (only for small
  ``n`` / truncated sets, exactly as the paper stops Kitty at n = 6);
* ``huang13``      — ``testnpn -6`` analogue (ultra fast, inexact);
* ``petkovska16``  — ``testnpn -7`` analogue (hierarchical);
* ``zhou20``       — ``testnpn -11`` analogue (near exact, slower);
* ``ours``         — the face/point classifier (Algorithm 1);
* plus the exact class count from the bucket+match engine as ground truth.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.timing import time_classifier
from repro.baselines import get_classifier
from repro.baselines.exact import ExactClassifier
from repro.core.truth_table import TruthTable
from repro.experiments.workload_cache import benchmark_functions, scale_settings

__all__ = ["METHODS", "run_table3", "table3_row"]

METHODS = ("huang13", "petkovska16", "zhou20", "ours")


def table3_row(
    n: int,
    tables: Sequence[TruthTable],
    kitty_max_n: int = 5,
    kitty_limit: int = 300,
    exact: bool = True,
    sharded_workers: int | None = None,
) -> dict:
    """One Table III row: class count and seconds per method.

    With ``sharded_workers`` set, an ``ours_sharded`` column pair is
    added: the same signature classifier driven through the
    multi-process :class:`~repro.engine.sharded.ShardedClassifier` —
    class counts must match the ``ours`` column exactly (same
    signatures, different execution strategy).
    """
    row: dict = {"n": n, "functions": len(tables)}
    row["exact"] = ExactClassifier().count_classes(tables) if exact else None
    if n <= kitty_max_n:
        subset = list(tables)[:kitty_limit]
        run = time_classifier(get_classifier("kitty"), subset)
        row["kitty_classes"] = run.classes
        row["kitty_seconds"] = round(run.seconds, 4)
        row["kitty_functions"] = len(subset)
    else:
        row["kitty_classes"] = None
        row["kitty_seconds"] = None
        row["kitty_functions"] = 0
    for method in METHODS:
        run = time_classifier(get_classifier(method), tables)
        row[f"{method}_classes"] = run.classes
        row[f"{method}_seconds"] = round(run.seconds, 4)
    if sharded_workers is not None:
        from repro.engine import ShardedClassifier

        run = time_classifier(
            ShardedClassifier(workers=sharded_workers), tables
        )
        row["ours_sharded_classes"] = run.classes
        row["ours_sharded_seconds"] = round(run.seconds, 4)
    return row


def run_table3(
    scale: str | None = None,
    exact: bool = True,
    sharded_workers: int | None = None,
) -> list[dict]:
    """Regenerate Table III on the EPFL-like workload at the given scale."""
    settings = scale_settings(scale)
    functions = benchmark_functions(settings.name)
    return [
        table3_row(
            n,
            functions[n],
            kitty_max_n=settings.kitty_max_n,
            kitty_limit=settings.kitty_limit,
            exact=exact,
            sharded_workers=sharded_workers,
        )
        for n in sorted(functions)
    ]
