"""End-to-end AIG cut matching against a prebuilt class library.

The paper's EPFL scenario as one experiment: enumerate the k-feasible
cuts of every network, compute each cut's truth table, and resolve it
against a :class:`~repro.library.ClassLibrary` — class id plus verified
NPN witness per hit.  The report shows, per circuit, how many cut
occurrences and distinct cut functions the library covers (the hit
rate a technology mapper would see when using the library as its cell
index), and which classes absorb the most cuts.

Matching is memoised on the raw truth table across the whole run: a
function appearing at hundreds of nodes costs one signature computation
and one witness search, which is precisely the economics that make a
persistent library worth building.
"""

from __future__ import annotations

from collections import Counter

from repro.aig.cuts import iter_cut_functions
from repro.aig.network import AIG
from repro.library.store import ClassLibrary

__all__ = ["run_cut_matching", "cut_match_rows", "class_hit_rows"]


def run_cut_matching(
    library: ClassLibrary,
    circuits: dict[str, AIG],
    sizes=(4,),
    max_cuts: int = 16,
) -> tuple[list[dict], Counter]:
    """Match every wanted-size cut of every circuit against the library.

    Returns ``(rows, class_hits)``: per-circuit summary rows (plus a
    TOTAL row) and a counter of per-class cut-occurrence hits.  Every
    returned hit carried a matcher-verified witness; a signature bucket
    hit whose witness search fails (MSV collision) counts as a miss.
    """
    memo: dict[tuple[int, int], str | None] = {}
    class_hits: Counter = Counter()
    rows: list[dict] = []
    totals = Counter()
    total_unique: set[tuple[int, int]] = set()
    for name, aig in sorted(circuits.items()):
        cuts = matched = 0
        unique: set[tuple[int, int]] = set()
        for _, _, tt in iter_cut_functions(aig, sizes, max_cuts=max_cuts):
            cuts += 1
            key = (tt.n, tt.bits)
            unique.add(key)
            if key not in memo:
                hit = library.match(tt)
                memo[key] = None if hit is None else hit.class_id
            class_id = memo[key]
            if class_id is not None:
                matched += 1
                class_hits[class_id] += 1
        rows.append(_row(name, cuts, matched, unique, memo))
        totals["cuts"] += cuts
        totals["matched"] += matched
        total_unique |= unique
    rows.append(_row("TOTAL", totals["cuts"], totals["matched"], total_unique, memo))
    return rows, class_hits


def cut_match_rows(
    library: ClassLibrary, rows: list[dict], class_hits: Counter
) -> list[dict]:
    """Append library-coverage context to the per-circuit rows."""
    summary = list(rows)
    covered = len(class_hits)
    summary.append(
        {
            "circuit": "library classes hit",
            "cuts": covered,
            "hit_rate": round(covered / library.num_classes, 4)
            if library.num_classes
            else 0.0,
        }
    )
    return summary


def class_hit_rows(
    library: ClassLibrary, class_hits: Counter, top: int = 10
) -> list[dict]:
    """The ``top`` classes by cut hits, with their stored metadata."""
    rows = []
    for class_id, hits in class_hits.most_common(top):
        entry = library.classes[class_id]
        rows.append(
            {
                "class_id": class_id,
                "n": entry.n,
                "hits": hits,
                "representative": f"0x{entry.representative.to_hex()}",
                "library_size": entry.size,
                "exact_rep": entry.exact,
            }
        )
    return rows


def _row(name: str, cuts: int, matched: int, unique, memo) -> dict:
    matched_unique = sum(1 for key in unique if memo[key] is not None)
    return {
        "circuit": name,
        "cuts": cuts,
        "matched": matched,
        "hit_rate": round(matched / cuts, 4) if cuts else 0.0,
        "unique_functions": len(unique),
        "unique_matched": matched_unique,
    }
