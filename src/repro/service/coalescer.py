"""Micro-batching request coalescer: many requests, one packed batch.

The throughput story of the offline engines is amortisation — one
``PackedTables`` batch turns Algorithm 1's per-function loop into a
handful of NumPy passes.  An online daemon naturally receives requests
one at a time, which would forfeit exactly that amortisation; the
coalescer wins it back:

1. every request lands in a bounded FIFO queue (a full queue raises the
   typed ``overloaded`` error immediately — backpressure, not buffering
   until death);
2. a single worker task gathers whatever is queued, up to ``max_batch``
   requests, waiting at most ``max_wait_ms`` for stragglers once the
   first request of a batch arrived;
3. the batch's signatures are computed in one vectorized pass on the
   shared engine (built by :func:`repro.engine.make_classifier`) and
   matches resolved through :meth:`ClassLibrary.match_many`, off the
   event loop on a dedicated executor thread so I/O keeps flowing —
   and keeps *filling the next batch* — while NumPy crunches;
4. results fan back out through per-request futures, with ``match``
   outcomes recorded in the LRU :class:`~repro.service.cache.MatchCache`
   (hits short-circuit before ever reaching a batch).

``max_batch=1`` degenerates to classic request-at-a-time serving — the
configuration the throughput benchmark uses as its baseline.

With a :class:`~repro.library.online.LearningLibrary` attached
(``serve --learn``), a ``match`` miss takes one extra step on the same
executor thread: the query's class is minted, WAL-logged, and the reply
upgraded to a verified hit against the new class — so the *first* miss
already answers with a class id, and every subsequent equivalent query
hits it through the cache or the normal match path.  The drain hook
compacts the WAL into the library image after the backlog is answered,
so a SIGTERM'd learning daemon leaves a clean artifact behind.
"""

from __future__ import annotations

import asyncio
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.canonical.form import canonical_class_id, canonical_forms
from repro.obs import Trace
from repro.core.msv import compute_msv
from repro.core.truth_table import TruthTable
from repro.engine import make_classifier
from repro.library.online import LearningLibrary
from repro.library.store import ClassLibrary
from repro.service.cache import MatchCache
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import ProtocolError

__all__ = [
    "Coalescer",
    "validate_service_knobs",
    "SERVICE_ENGINES",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_WAIT_MS",
    "DEFAULT_MAX_PENDING",
]

DEFAULT_MAX_BATCH = 256
DEFAULT_MAX_WAIT_MS = 2.0
DEFAULT_MAX_PENDING = 8192

#: Engines an asyncio daemon can host in-process.  The sharded engine
#: owns a multiprocessing pool whose lifecycle fights the event loop's;
#: scale-out for the service is many daemons behind a load balancer.
SERVICE_ENGINES = ("perfn", "batched")

_CLOSE = object()  # queue sentinel: drain what is queued, then stop


def validate_service_knobs(
    engine: str = "batched",
    max_batch: int = DEFAULT_MAX_BATCH,
    max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
    max_pending: int = DEFAULT_MAX_PENDING,
    cache_size: int = 0,
) -> None:
    """Reject unusable service configuration with a clear ValueError.

    The single source of truth for knob ranges: the :class:`Coalescer`
    constructor enforces them through this function, and the CLI calls
    it *before* loading a (potentially large) library so flag typos fail
    fast.
    """
    if engine not in SERVICE_ENGINES:
        raise ValueError(
            f"service engine must be one of {', '.join(SERVICE_ENGINES)}, "
            f"got {engine!r}"
        )
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    if max_wait_ms < 0:
        raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
    if max_pending < 1:
        raise ValueError(f"max_pending must be >= 1, got {max_pending}")
    if cache_size < 0:
        raise ValueError(f"cache_size must be >= 0, got {cache_size}")


@dataclass
class _Pending:
    """One enqueued request waiting for its batch."""

    op: str
    table: TruthTable
    future: asyncio.Future = field(repr=False)
    # Optional observability context: the server's per-request trace
    # (spans appended as the request moves through the pipeline) and
    # the perf-counter instant it entered the queue.
    trace: Trace | None = field(default=None, repr=False)
    enqueued: float = 0.0


class Coalescer:
    """Gathers concurrent classify/match requests into engine batches.

    Args:
        library: the loaded :class:`ClassLibrary` queries resolve against.
        engine: signature engine name (see :data:`SERVICE_ENGINES`).
        max_batch: most requests folded into one engine batch.
        max_wait_ms: how long a non-full batch waits for stragglers after
            its first request arrived.  ``0`` never waits — it still
            coalesces whatever is already queued.
        max_pending: bound of the request queue; submissions beyond it
            fail fast with ``overloaded``.
        cache_size: LRU capacity of the match cache (``0`` disables).
        metrics: shared :class:`ServiceMetrics` (a fresh one by default).
        learner: attach a :class:`LearningLibrary` wrapping ``library``
            to mint classes on misses (``None`` serves read-only).
    """

    def __init__(
        self,
        library: ClassLibrary,
        engine: str = "batched",
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        max_pending: int = DEFAULT_MAX_PENDING,
        cache_size: int = 1 << 16,
        metrics: ServiceMetrics | None = None,
        learner: LearningLibrary | None = None,
    ) -> None:
        validate_service_knobs(
            engine=engine,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_pending=max_pending,
            cache_size=cache_size,
        )
        if learner is not None and learner.library is not library:
            raise ValueError(
                "learner must wrap the same ClassLibrary the coalescer "
                "serves (matches and mints would diverge otherwise)"
            )
        self.library = library
        self.learner = learner
        self.classifier = make_classifier(engine, parts=library.parts)
        self.engine = engine
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.cache = MatchCache(cache_size)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=max_pending)
        # One worker thread: batches are sequential by design (the whole
        # point is one big batch, not many small concurrent ones).
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-batch"
        )
        self._worker: asyncio.Task | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Launch the batching worker on the running event loop."""
        if self._worker is None:
            self._worker = asyncio.ensure_future(self._run())

    @property
    def closing(self) -> bool:
        return self._closed

    async def stop(self) -> None:
        """Drain: process everything queued, then stop the worker.

        Requests submitted after ``stop`` begins fail with
        ``shutting_down``; requests already queued are answered.
        """
        if self._closed:
            if self._worker is not None:
                await self._worker
            return
        self._closed = True
        # The sentinel goes behind every already-queued request, so the
        # worker consumes the backlog first.  put() may need to wait for
        # queue space on an overloaded daemon — that is fine, drain is
        # allowed to take as long as the backlog does.
        await self._queue.put(_CLOSE)
        if self._worker is not None:
            await self._worker
        self._executor.shutdown(wait=True)
        if self.learner is not None:
            # Drain hook: every queued request is answered by now, so
            # the WAL is quiescent — fold it into the library image,
            # then release the learner lock for the next daemon.
            # Compaction is best-effort: a failure (full disk, corrupt
            # segment) must not propagate, or it would abort the server's
            # teardown mid-drain and the already-answered backlog replies
            # would be dropped with the connections.  The WAL segments
            # stay on disk either way — the learned classes replay on the
            # next open or fold in via ``repro-npn library compact``.
            try:
                self.learner.compact()
            except Exception:
                logging.getLogger("repro.service.coalescer").exception(
                    "drain-time WAL compaction failed; segments kept "
                    "for replay"
                )
            finally:
                self.learner.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self, op: str, table: TruthTable, trace: Trace | None = None
    ) -> asyncio.Future:
        """Enqueue one request; the returned future resolves to its result.

        ``match`` futures resolve to ``(LibraryMatch | None, cached)``;
        ``classify`` futures to ``(class_id, known)``.  Raises
        :class:`ProtocolError` with type ``overloaded`` on a full queue
        and ``shutting_down`` during drain.  An optional ``trace``
        accumulates per-stage spans as the request moves through the
        queue, the batch, and the engine passes.
        """
        if self._closed:
            raise ProtocolError(
                "shutting_down", "service is draining; retry elsewhere"
            )
        future = asyncio.get_running_loop().create_future()
        if op == "match":
            found, outcome = self.cache.get(table)
            self.metrics.record_cache(found)
            if found:
                if trace is not None:
                    trace.annotate(cache="hit")
                future.set_result((outcome, True))
                return future
            if trace is not None:
                trace.annotate(cache="miss")
        pending = _Pending(
            op=op,
            table=table,
            future=future,
            trace=trace,
            enqueued=time.perf_counter(),
        )
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            raise ProtocolError(
                "overloaded",
                f"pending queue is full ({self._queue.maxsize} requests); "
                f"retry later",
            ) from None
        return future

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is _CLOSE:
                return
            batch = [first]
            stop_after = await self._fill(batch)
            live = [p for p in batch if not p.future.cancelled()]
            if live:
                self.metrics.record_batch(len(live))
                dispatched = time.perf_counter()
                queue_meta = {"batch": len(live)}  # shared; spans don't mutate
                for pending in live:
                    if pending.trace is not None:
                        pending.trace.add_span(
                            "queue", pending.enqueued, dispatched, queue_meta
                        )
                try:
                    results = await loop.run_in_executor(
                        self._executor, self._process, live
                    )
                except Exception as exc:  # engine bug — fail the batch, not the daemon
                    error = ProtocolError(
                        "internal", f"batch processing failed: {exc!r}"
                    )
                    for pending in live:
                        if not pending.future.done():
                            pending.future.set_exception(error)
                else:
                    self._publish(live, results)
            if stop_after:
                return

    async def _fill(self, batch: list) -> bool:
        """Top up ``batch`` to ``max_batch``; True when drain should follow."""
        deadline = None
        while len(batch) < self.max_batch:
            if deadline is None:
                # Greedy phase: take whatever is already queued for free.
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    if self.max_wait_ms == 0:
                        return False
                    deadline = asyncio.get_running_loop().time() + (
                        self.max_wait_ms / 1000.0
                    )
                    continue
            else:
                remaining = deadline - asyncio.get_running_loop().time()
                if remaining <= 0:
                    return False
                try:
                    item = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    return False
            if item is _CLOSE:
                return True
            batch.append(item)
        return False

    def _process(self, batch: list) -> list:
        """Resolve one batch (runs on the executor thread).

        One vectorized signature pass over every table in the batch —
        mixed arities allowed — then per-request resolution: ``classify``
        resolves ids through :meth:`_classify_ids` (signature digest or
        batched exact canonicalization, per the library's id scheme),
        ``match`` runs the witness search via
        :meth:`ClassLibrary.match_many`.
        """
        tables = [p.table for p in batch]
        t_start = time.perf_counter()
        signatures = self.classifier.signatures(tables)
        t_signed = time.perf_counter()
        match_indices = [i for i, p in enumerate(batch) if p.op == "match"]
        matches = self.library.match_many(
            [tables[i] for i in match_indices],
            signatures=[signatures[i] for i in match_indices],
        )
        by_index = dict(zip(match_indices, matches))
        t_matched = time.perf_counter()
        classify_indices = [i for i, p in enumerate(batch) if p.op != "match"]
        class_ids = dict(
            zip(
                classify_indices,
                self._classify_ids(
                    [tables[i] for i in classify_indices],
                    [signatures[i] for i in classify_indices],
                ),
            )
        )
        t_classified = time.perf_counter()
        # Per-request spans for the batch phases the request shared: the
        # signature pass covers everyone; matcher and canonical-search
        # spans go only to the requests that took those paths.  Meta
        # dicts are shared across the batch (spans never mutate them).
        sig_meta = {"batch": len(batch)}
        match_meta = {"rows": len(match_indices)}
        classify_meta = {"rows": len(classify_indices)}
        for index, pending in enumerate(batch):
            if pending.trace is None:
                continue
            pending.trace.add_span("signatures", t_start, t_signed, sig_meta)
            if pending.op == "match":
                pending.trace.add_span(
                    "match", t_signed, t_matched, match_meta
                )
            else:
                pending.trace.add_span(
                    "classify", t_matched, t_classified, classify_meta
                )
        results = []
        for index, pending in enumerate(batch):
            if pending.op == "match":
                outcome = by_index[index]
                if outcome is None and self.learner is not None:
                    # Learn-on-miss: mint the class (WAL-logged) and
                    # answer with a verified match against it.  Still
                    # None on a signature collision — the miss stands.
                    before = self.learner.minted
                    t_learn = time.perf_counter()
                    outcome = self.learner.learn(
                        tables[index], signatures[index]
                    )
                    minted = self.learner.minted > before
                    if pending.trace is not None:
                        pending.trace.add_span(
                            "learn",
                            t_learn,
                            time.perf_counter(),
                            {"minted": minted},
                        )
                    if minted:
                        self.metrics.record_minted()
                results.append((outcome, False))
            else:  # classify
                class_id = class_ids[index]
                results.append((class_id, class_id in self.library.classes))
        return results

    def _classify_ids(self, tables: list, signatures: list) -> list[str]:
        """Class ids of the batch's ``classify`` requests, scheme-aware.

        Digest-scheme libraries read the id straight off the signature.
        Canonical-scheme ids are a function of the orbit, not the
        signature, so the tables are exact-canonicalized — batched per
        arity through the same kernels the engines use.
        """
        if not tables:
            return []
        if self.library.id_scheme != "canonical":
            return [self.library.class_id_of(s) for s in signatures]
        out: list[str | None] = [None] * len(tables)
        by_arity: dict[int, list[int]] = {}
        for index, table in enumerate(tables):
            by_arity.setdefault(table.n, []).append(index)
        for n, indices in by_arity.items():
            forms = canonical_forms(
                [tables[i] for i in indices],
                n,
                cache_dir=self.library.kernel_cache_dir,
            )
            for i, rep in zip(indices, forms):
                out[i] = canonical_class_id(rep)
        return out  # type: ignore[return-value]

    def _publish(self, batch: list, results: list) -> None:
        """Fan results back out to futures; feed the match cache."""
        for pending, result in zip(batch, results):
            if pending.op == "match":
                outcome, _ = result
                self.cache.put(pending.table, outcome)
            if not pending.future.done():
                pending.future.set_result(result)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def classify_offline(self, table: TruthTable) -> tuple[str, bool]:
        """The classify answer without going through a batch (for tests)."""
        if self.library.id_scheme == "canonical":
            class_id = self._classify_ids([table], [None])[0]
        else:
            class_id = self.library.class_id_of(
                compute_msv(table, self.library.parts)
            )
        return class_id, class_id in self.library.classes

    def stats_snapshot(self) -> dict:
        """Metrics snapshot, extended with WAL state when learning."""
        snapshot = self.metrics.snapshot()
        if self.learner is not None:
            snapshot["learning"] = self.learner.stats()
        return snapshot

    @property
    def pending(self) -> int:
        """Requests currently queued (excludes the batch in flight)."""
        return self._queue.qsize()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Coalescer(engine={self.engine!r}, max_batch={self.max_batch}, "
            f"max_wait_ms={self.max_wait_ms}, pending={self.pending})"
        )
