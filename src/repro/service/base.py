"""Shared asyncio front of every daemon in this repo.

Both network daemons — the single-box classification daemon
(:class:`~repro.service.server.ClassificationService`) and the fabric
router (:class:`~repro.fabric.router.RouterService`) — speak the same
two sniffed protocols on one TCP port: pipelined NDJSON lines and
one-shot HTTP/1.0.  :class:`LineProtocolServer` owns everything that is
identical between them:

* listener lifecycle (bind, graceful drain on SIGTERM/SIGINT, the
  parseable ready/exit banner lines);
* connection tracking and teardown;
* NDJSON framing — one reply task per line, bounded in-flight replies
  so a write-only client cannot grow the daemon's buffers;
* HTTP framing — request line, headers, bounded body, the ``/metrics``
  Prometheus text special case;
* the typed-error reject path.

Subclasses provide the *meaning* of a request via four hooks:

``_answer_line(writer, line)``
    resolve one NDJSON request line and write its reply line;
``_route_http(method, path, body, t0, query)``
    resolve one HTTP request to ``(status, json_payload)``;
``_record_error(error_type)``
    count a rejected request in the subclass's metrics;
``_drain()``
    subclass-specific backlog drain, run after the listener closed and
    before connections are torn down.
"""

from __future__ import annotations

import asyncio
import json
import signal

from repro import obs
from repro.service import protocol
from repro.service.protocol import (
    HTTP_METHODS,
    HTTP_STATUS_BY_ERROR,
    MAX_LINE_BYTES,
    ProtocolError,
)

__all__ = ["LineProtocolServer", "best_effort_id", "query_int"]

#: Most un-replied requests one connection may have in flight; beyond it
#: the read loop pauses until a reply completes.  Together with the
#: per-reply ``drain()`` this bounds the daemon's memory per connection
#: even against a client that pipelines forever without reading.
MAX_INFLIGHT_REPLIES = 1024


class LineProtocolServer:
    """One TCP listener speaking sniffed NDJSON + HTTP/1.0."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self._requested_port = port
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._stopping = asyncio.Event()

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------

    async def _answer_line(
        self, writer: asyncio.StreamWriter, line: bytes
    ) -> None:
        raise NotImplementedError

    async def _route_http(
        self, method: str, path: str, body: bytes, t0: float, query: str = ""
    ) -> tuple[int, dict]:
        raise NotImplementedError

    def _record_error(self, error_type: str) -> None:
        """Count one rejected request (subclass metrics)."""

    async def _drain(self) -> None:
        """Answer the backlog during :meth:`stop` (subclass-specific)."""

    def _ready_message(self) -> str:
        return f"listening on {self.address}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's pick)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind the listener."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self._requested_port,
            limit=MAX_LINE_BYTES + 2,
        )

    async def stop(self) -> None:
        """Graceful drain: close listener, answer backlog, drop connections."""
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._drain()
        # Closing the transports feeds EOF to every connection reader, so
        # handlers exit their read loops normally — cancellation is only
        # the fallback for a handler that still hasn't finished.
        for writer in list(self._writers):
            writer.close()
        if self._connections:
            _done, pending = await asyncio.wait(
                list(self._connections), timeout=5.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to begin its drain (signal-safe)."""
        self._stopping.set()

    async def serve_forever(self, ready_message: bool = True) -> None:
        """Run until SIGTERM/SIGINT, then drain and return.

        ``ready_message`` prints one parseable line on stdout once the
        socket is bound — the CLI, the CI smoke jobs, the chaos harness
        and the drain tests all key off it.
        """
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._on_signal)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        if ready_message:
            print(self._ready_message(), flush=True)
        try:
            await self._stopping.wait()
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.remove_signal_handler(signum)
                except NotImplementedError:  # pragma: no cover
                    pass
            await self.stop()
            if ready_message:
                print("drained, bye", flush=True)

    def _on_signal(self) -> None:
        """First SIGTERM/SIGINT starts the drain; repeats are ignored
        (the drain is already as fast as the backlog allows)."""
        self._stopping.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        self._writers.add(writer)
        try:
            try:
                first = await self._read_line(reader)
            except ProtocolError as exc:
                await self._reject_line(writer, None, exc)
                return
            if first is None:
                return
            if any(first.startswith(verb) for verb in HTTP_METHODS):
                await self._serve_http(first, reader, writer)
            else:
                await self._serve_ndjson(first, reader, writer)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ):
            pass  # client went away / drain cancelled the connection
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                OSError,
                asyncio.CancelledError,
            ):
                # CancelledError only lands here when a drain cancelled a
                # straggler mid-close; the coroutine ends either way.
                pass

    async def _read_line(self, reader: asyncio.StreamReader) -> bytes | None:
        """One line, or ``None`` on EOF; typed error when over the limit."""
        try:
            line = await reader.readline()
        except ValueError:
            raise ProtocolError(
                "payload_too_large",
                f"request line exceeds {MAX_LINE_BYTES} bytes",
            ) from None
        return line if line else None

    # -------------------------- NDJSON path ---------------------------

    async def _serve_ndjson(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        replies: set[asyncio.Task] = set()
        line: bytes | None = first
        try:
            while line is not None:
                if line.strip():
                    task = asyncio.ensure_future(self._answer_line(writer, line))
                    replies.add(task)
                    task.add_done_callback(replies.discard)
                    if len(replies) >= MAX_INFLIGHT_REPLIES:
                        # Stop reading until the client consumes replies:
                        # reply tasks block on drain(), so a client that
                        # writes but never reads parks here instead of
                        # growing the daemon's buffers.
                        await asyncio.wait(
                            replies, return_when=asyncio.FIRST_COMPLETED
                        )
                try:
                    line = await self._read_line(reader)
                except ProtocolError as exc:
                    # Framing is lost beyond an oversized line: reply,
                    # then hang up instead of guessing where it ends.
                    await self._reject_line(writer, None, exc)
                    return
        finally:
            if replies:
                await asyncio.gather(*replies, return_exceptions=True)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _reject_line(
        self,
        writer: asyncio.StreamWriter,
        request_id: object,
        exc: ProtocolError,
    ) -> None:
        self._record_error(exc.error_type)
        await self._write(writer, protocol.encode_line(
            protocol.error_reply(request_id, exc.error_type, exc.message)
        ))

    async def _write(self, writer: asyncio.StreamWriter, payload: bytes) -> None:
        """One whole-line write + drain (flow control against slow readers)."""
        if writer.transport is None or writer.transport.is_closing():
            return
        writer.write(payload)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client went away; the read loop will see EOF

    # --------------------------- HTTP path -----------------------------

    async def _serve_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        try:
            method, path, body = await self._read_http(request_line, reader)
            path, _, query = path.partition("?")
            if method == "GET" and path == "/metrics":
                # Prometheus text exposition, not JSON: bypass the dict
                # routing and write the rendered registry directly.
                await self._write(
                    writer,
                    protocol.http_text_response(200, obs.registry().render()),
                )
                return
            status, payload = await self._route_http(
                method, path, body, t0, query
            )
        except ProtocolError as exc:
            self._record_error(exc.error_type)
            status = HTTP_STATUS_BY_ERROR[exc.error_type]
            payload = {"error": {"type": exc.error_type, "message": exc.message}}
        await self._write(writer, protocol.http_response(status, payload))

    async def _read_http(
        self, request_line: bytes, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        try:
            method, path, _version = request_line.decode().split(None, 2)
        except (UnicodeDecodeError, ValueError):
            raise ProtocolError("bad_request", "malformed HTTP request line")
        content_length = 0
        while True:
            header = await self._read_line(reader)
            if header is None or header in (b"\r\n", b"\n"):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise ProtocolError("bad_request", "bad Content-Length")
        if content_length > MAX_LINE_BYTES:
            raise ProtocolError(
                "payload_too_large",
                f"body exceeds {MAX_LINE_BYTES} bytes",
            )
        body = (
            await reader.readexactly(content_length) if content_length else b""
        )
        return method.upper(), path, body


def query_int(query: str, name: str, default: int) -> int:
    """``limit=N``-style query parameter, tolerant of junk."""
    for part in query.split("&"):
        key, sep, value = part.partition("=")
        if sep and key == name:
            try:
                return max(0, int(value))
            except ValueError:
                raise ProtocolError(
                    "bad_request", f"query parameter {name} must be an integer"
                ) from None
    return default


def best_effort_id(line: bytes) -> object:
    """Recover an ``id`` from a rejected request so the client can map it."""
    try:
        data = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(data, dict):
        value = data.get("id")
        if isinstance(value, (str, int, float)) or value is None:
            return value
    return None
