"""Run a daemon on a background thread: tests, benchmarks, notebooks.

The daemon is asyncio-native; everything else in this repo (pytest, the
benchmark harness, blocking example scripts) is synchronous.
:class:`ThreadedService` bridges the two: it spins an event loop on a
daemon thread, starts a :class:`ClassificationService` on it, and hands
back the bound address — ``with ThreadedService(library) as svc:``
wraps a complete serve/query/drain cycle around any blocking code.

This is an embedding harness, not a production topology: real
deployments run ``repro-npn serve`` as its own process.
"""

from __future__ import annotations

import asyncio
import threading

from repro.service.base import LineProtocolServer
from repro.service.server import ClassificationService

__all__ = ["ThreadedService"]

_START_TIMEOUT = 30.0


class ThreadedService:
    """A daemon running on a private loop thread.

    Pass a :class:`ClassLibrary` and keyword arguments to host a
    :class:`ClassificationService`; or pass any already-constructed
    :class:`LineProtocolServer` subclass (a fabric
    :class:`~repro.fabric.router.RouterService`, a
    :class:`~repro.fabric.worker.FabricWorker`) to host that instead.
    The default ``port=0`` binds a free port, read it from :attr:`port`
    or :attr:`address` after :meth:`start`.
    """

    def __init__(self, library_or_service, **service_kwargs) -> None:
        if isinstance(library_or_service, LineProtocolServer):
            if service_kwargs:
                raise TypeError(
                    "keyword arguments only apply when passing a library; "
                    "configure the service instance directly"
                )
            self.service = library_or_service
        else:
            service_kwargs.setdefault("port", 0)
            self.service = ClassificationService(
                library_or_service, **service_kwargs
            )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ThreadedService":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(_START_TIMEOUT):
            raise RuntimeError("service failed to start within timeout")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def stop(self) -> None:
        """Drain and stop; idempotent."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            return
        done = threading.Event()

        async def _shutdown() -> None:
            try:
                await self.service.stop()
            finally:
                done.set()
                asyncio.get_running_loop().stop()

        asyncio.run_coroutine_threadsafe(_shutdown(), loop)
        done.wait(_START_TIMEOUT)
        thread.join(_START_TIMEOUT)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "ThreadedService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def address(self) -> str:
        return self.service.address

    # ------------------------------------------------------------------
    # Thread body
    # ------------------------------------------------------------------

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.service.start())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            # Cancel anything the shutdown left behind, then close.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()
