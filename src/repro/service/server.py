"""The asyncio classification daemon: load a library once, serve forever.

:class:`ClassificationService` binds one TCP port and speaks both wire
protocols of :mod:`repro.service.protocol` — the first request line is
sniffed, so ``nc`` + NDJSON and ``curl /healthz`` hit the same address.
Requests flow::

    connection reader ──> parse ──> Coalescer.submit ──> packed batch
                                                            │
    connection writer <── reply <── future resolves <───────┘

Each NDJSON line becomes its own reply task, so a pipelined client keeps
many requests in flight on one connection — exactly the traffic shape
the coalescer amortises.

Shutdown is a drain, not a drop: SIGTERM/SIGINT stop the listener,
already-accepted requests are batched and answered, then connections
close and :meth:`serve_forever` returns.  A second signal is ignored
(the drain is already as fast as the backlog allows).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

from repro import obs
from repro.library.store import ClassLibrary
from repro.service.coalescer import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_PENDING,
    DEFAULT_MAX_WAIT_MS,
    Coalescer,
)
from repro.service.metrics import ServiceMetrics
from repro.service import protocol
from repro.service.protocol import (
    HTTP_METHODS,
    HTTP_STATUS_BY_ERROR,
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
)

__all__ = [
    "ClassificationService",
    "DEFAULT_PORT",
    "DEFAULT_SLOW_MS",
    "DEFAULT_TRACE_SAMPLE",
]

DEFAULT_PORT = 8355

#: Requests slower than this land in the slow-request log (``--slow-ms``
#: overrides; ``<= 0`` disables the slow log, traces still record).
DEFAULT_SLOW_MS = 250.0

#: Finished per-request traces retained for ``GET /v1/trace/recent``.
DEFAULT_TRACE_CAPACITY = 256

#: Head-sample span detail to every N-th request by default.  Trace and
#: span allocation is the dominant observability cost on a saturated
#: pipelined workload (the <3% overhead gate of
#: ``benchmarks/bench_obs_overhead.py`` is measured at this default);
#: ``serve --trace-sample 1`` opts into tracing every request.
DEFAULT_TRACE_SAMPLE = 8

#: Most un-replied requests one connection may have in flight; beyond it
#: the read loop pauses until a reply completes.  Together with the
#: per-reply ``drain()`` this bounds the daemon's memory per connection
#: even against a client that pipelines forever without reading.
MAX_INFLIGHT_REPLIES = 1024


class ClassificationService:
    """One daemon: a listener, a coalescer, and a loaded class library.

    Args:
        library: the :class:`ClassLibrary` all queries resolve against
            (loaded once — the whole point of the daemon).
        host/port: bind address; ``port=0`` picks a free port (see
            :attr:`port` after :meth:`start`).
        engine / max_batch / max_wait_ms / max_pending / cache_size:
            coalescer knobs, see :class:`Coalescer`.
        learner: a :class:`~repro.library.online.LearningLibrary`
            wrapping ``library`` — attaches learn-on-miss minting and
            the drain-time WAL compaction (``serve --learn``).
        slow_ms: requests slower than this (end-to-end) are kept in the
            slow-request ring and logged (``serve --slow-ms``; ``<= 0``
            disables the slow log).
        trace_capacity: bound of the recent-trace ring served by
            ``GET /v1/trace/recent``.
        trace_sample: head-sample span detail to every N-th request
            (``serve --trace-sample``; ``1`` traces every request).
    """

    def __init__(
        self,
        library: ClassLibrary,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        engine: str = "batched",
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        max_pending: int = DEFAULT_MAX_PENDING,
        cache_size: int = 1 << 16,
        learner=None,
        slow_ms: float = DEFAULT_SLOW_MS,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        trace_sample: int = DEFAULT_TRACE_SAMPLE,
    ) -> None:
        self.library = library
        self.host = host
        self._requested_port = port
        self.metrics = ServiceMetrics()
        self.tracer = obs.Tracer(
            capacity=trace_capacity,
            slow_ms=slow_ms,
            sample_every=trace_sample,
        )
        self.coalescer = Coalescer(
            library,
            engine=engine,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_pending=max_pending,
            cache_size=cache_size,
            metrics=self.metrics,
            learner=learner,
        )
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._stopping = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's pick)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind the listener and launch the coalescer worker."""
        self.coalescer.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self._requested_port,
            limit=MAX_LINE_BYTES + 2,
        )

    async def stop(self) -> None:
        """Graceful drain: close listener, answer backlog, drop connections."""
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.coalescer.stop()
        # Closing the transports feeds EOF to every connection reader, so
        # handlers exit their read loops normally — cancellation is only
        # the fallback for a handler that still hasn't finished.
        for writer in list(self._writers):
            writer.close()
        if self._connections:
            _done, pending = await asyncio.wait(
                list(self._connections), timeout=5.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    async def serve_forever(self, ready_message: bool = True) -> None:
        """Run until SIGTERM/SIGINT, then drain and return.

        ``ready_message`` prints one parseable line on stdout once the
        socket is bound — the CLI, CI smoke job, and the drain test all
        key off it.
        """
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._stopping.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        if ready_message:
            print(
                f"serving {self.library.num_classes} classes "
                f"on {self.address}",
                flush=True,
            )
        try:
            await self._stopping.wait()
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.remove_signal_handler(signum)
                except NotImplementedError:  # pragma: no cover
                    pass
            await self.stop()
            if ready_message:
                print("drained, bye", flush=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        self._writers.add(writer)
        try:
            try:
                first = await self._read_line(reader)
            except ProtocolError as exc:
                await self._reject_line(writer, None, exc)
                return
            if first is None:
                return
            if any(first.startswith(verb) for verb in HTTP_METHODS):
                await self._serve_http(first, reader, writer)
            else:
                await self._serve_ndjson(first, reader, writer)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ):
            pass  # client went away / drain cancelled the connection
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                OSError,
                asyncio.CancelledError,
            ):
                # CancelledError only lands here when a drain cancelled a
                # straggler mid-close; the coroutine ends either way.
                pass

    async def _read_line(self, reader: asyncio.StreamReader) -> bytes | None:
        """One line, or ``None`` on EOF; typed error when over the limit."""
        try:
            line = await reader.readline()
        except ValueError:
            raise ProtocolError(
                "payload_too_large",
                f"request line exceeds {MAX_LINE_BYTES} bytes",
            ) from None
        return line if line else None

    # -------------------------- NDJSON path ---------------------------

    async def _serve_ndjson(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        replies: set[asyncio.Task] = set()
        line: bytes | None = first
        try:
            while line is not None:
                if line.strip():
                    task = asyncio.ensure_future(self._answer_line(writer, line))
                    replies.add(task)
                    task.add_done_callback(replies.discard)
                    if len(replies) >= MAX_INFLIGHT_REPLIES:
                        # Stop reading until the client consumes replies:
                        # reply tasks block on drain(), so a client that
                        # writes but never reads parks here instead of
                        # growing the daemon's buffers.
                        await asyncio.wait(
                            replies, return_when=asyncio.FIRST_COMPLETED
                        )
                try:
                    line = await self._read_line(reader)
                except ProtocolError as exc:
                    # Framing is lost beyond an oversized line: reply,
                    # then hang up instead of guessing where it ends.
                    await self._reject_line(writer, None, exc)
                    return
        finally:
            if replies:
                await asyncio.gather(*replies, return_exceptions=True)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _answer_line(
        self, writer: asyncio.StreamWriter, line: bytes
    ) -> None:
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        trace = self.tracer.start("?", transport="ndjson")
        decode_start = time.perf_counter()
        try:
            request = protocol.parse_request(line)
        except ProtocolError as exc:
            if trace is not None:
                trace.op = "invalid"
                trace.annotate(error=exc.error_type)
                self.tracer.finish(trace)
            request_id = _best_effort_id(line)
            await self._reject_line(writer, request_id, exc)
            return
        if trace is not None:
            trace.op = request.op
            trace.add_span("decode", decode_start, time.perf_counter())
        self.metrics.record_request(request.op)
        try:
            result = await self._resolve(request, trace)
        except ProtocolError as exc:
            if trace is not None:
                trace.annotate(error=exc.error_type)
                self.tracer.finish(trace)
            await self._reject_line(writer, request.id, exc)
            return
        self.metrics.record_reply(loop.time() - t0)
        reply_start = time.perf_counter()
        await self._write(writer, protocol.encode_line(
            protocol.ok_reply(request.id, request.op, result)
        ))
        if trace is not None:
            trace.add_span("reply", reply_start, time.perf_counter())
            self.tracer.finish(trace)

    async def _reject_line(
        self,
        writer: asyncio.StreamWriter,
        request_id: object,
        exc: ProtocolError,
    ) -> None:
        self.metrics.record_error(exc.error_type)
        await self._write(writer, protocol.encode_line(
            protocol.error_reply(request_id, exc.error_type, exc.message)
        ))

    async def _write(self, writer: asyncio.StreamWriter, payload: bytes) -> None:
        """One whole-line write + drain (flow control against slow readers)."""
        if writer.transport is None or writer.transport.is_closing():
            return
        writer.write(payload)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client went away; the read loop will see EOF

    # --------------------------- HTTP path -----------------------------

    async def _serve_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        try:
            method, path, body = await self._read_http(request_line, reader)
            path, _, query = path.partition("?")
            if method == "GET" and path == "/metrics":
                # Prometheus text exposition, not JSON: bypass the dict
                # routing and write the rendered registry directly.
                await self._write(
                    writer,
                    protocol.http_text_response(200, obs.registry().render()),
                )
                return
            status, payload = await self._route_http(
                method, path, body, t0, query
            )
        except ProtocolError as exc:
            self.metrics.record_error(exc.error_type)
            status = HTTP_STATUS_BY_ERROR[exc.error_type]
            payload = {"error": {"type": exc.error_type, "message": exc.message}}
        await self._write(writer, protocol.http_response(status, payload))

    async def _read_http(
        self, request_line: bytes, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        try:
            method, path, _version = request_line.decode().split(None, 2)
        except (UnicodeDecodeError, ValueError):
            raise ProtocolError("bad_request", "malformed HTTP request line")
        content_length = 0
        while True:
            header = await self._read_line(reader)
            if header is None or header in (b"\r\n", b"\n"):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise ProtocolError("bad_request", "bad Content-Length")
        if content_length > MAX_LINE_BYTES:
            raise ProtocolError(
                "payload_too_large",
                f"body exceeds {MAX_LINE_BYTES} bytes",
            )
        body = (
            await reader.readexactly(content_length) if content_length else b""
        )
        return method.upper(), path, body

    async def _route_http(
        self, method: str, path: str, body: bytes, t0: float, query: str = ""
    ) -> tuple[int, dict]:
        loop = asyncio.get_running_loop()
        if method == "GET" and path == "/healthz":
            return 200, {
                "status": "ok",
                "classes": self.library.num_classes,
                "arities": list(self.library.arities()),
                "address": self.address,
                "draining": self.coalescer.closing,
                "learning": self.coalescer.learner is not None,
            }
        if method == "GET" and path == "/v1/stats":
            self.metrics.record_request("stats")
            snapshot = self._stats_snapshot()
            self.metrics.record_reply(loop.time() - t0)
            return 200, snapshot
        if method == "GET" and path == "/v1/trace/recent":
            limit = _query_int(query, "limit", default=50)
            return 200, {
                "traces": self.tracer.recent(limit),
                "slow": self.tracer.slow_recent(limit),
                "tracer": self.tracer.snapshot(),
            }
        if method == "POST" and path in ("/v1/classify", "/v1/match"):
            op = path.rsplit("/", 1)[1]
            try:
                data = json.loads(body.decode() or "null")
            except (UnicodeDecodeError, ValueError):
                raise ProtocolError("bad_request", "body is not valid JSON")
            if not isinstance(data, dict):
                raise ProtocolError("bad_request", "body must be a JSON object")
            table = protocol.parse_table_payload(data)
            self.metrics.record_request(op)
            trace = self.tracer.start(op, transport="http")
            try:
                result = await self._resolve(
                    Request(op=op, id=data.get("id"), table=table), trace
                )
            except ProtocolError as exc:
                if trace is not None:
                    trace.annotate(error=exc.error_type)
                    self.tracer.finish(trace)
                raise
            self.metrics.record_reply(loop.time() - t0)
            self.tracer.finish(trace)
            return 200, {"ok": True, "op": op, "result": result}
        raise ProtocolError("bad_request", f"no route for {method} {path}")

    # ------------------------------------------------------------------
    # Request resolution (shared by both fronts)
    # ------------------------------------------------------------------

    async def _resolve(self, request: Request, trace=None) -> dict:
        if request.op == "ping":
            return {"pong": True, "classes": self.library.num_classes}
        if request.op == "stats":
            return self._stats_snapshot()
        future = self.coalescer.submit(request.op, request.table, trace)
        if request.op == "match":
            outcome, cached = await future
            return protocol.match_payload(request.table, outcome, cached)
        class_id, known = await future
        return protocol.classify_payload(request.table, class_id, known)

    def _stats_snapshot(self) -> dict:
        """Coalescer stats plus this worker's identity block."""
        snapshot = self.coalescer.stats_snapshot()
        snapshot["identity"] = self.identity()
        return snapshot

    def identity(self) -> dict:
        """Who this worker is — fleet debugging tells daemons apart by it."""
        return {
            "pid": os.getpid(),
            "address": self.address,
            "engine": self.coalescer.engine,
            "transports": ["ndjson", "http/1.0"],
            "id_scheme": self.library.id_scheme,
            "classes": self.library.num_classes,
            "learning": self.coalescer.learner is not None,
            "slow_ms": self.tracer.slow_ms,
            "trace_sample": self.tracer.sample_every,
        }


def _query_int(query: str, name: str, default: int) -> int:
    """``limit=N``-style query parameter, tolerant of junk."""
    for part in query.split("&"):
        key, sep, value = part.partition("=")
        if sep and key == name:
            try:
                return max(0, int(value))
            except ValueError:
                raise ProtocolError(
                    "bad_request", f"query parameter {name} must be an integer"
                ) from None
    return default


def _best_effort_id(line: bytes) -> object:
    """Recover an ``id`` from a rejected request so the client can map it."""
    try:
        data = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(data, dict):
        value = data.get("id")
        if isinstance(value, (str, int, float)) or value is None:
            return value
    return None
