"""The asyncio classification daemon: load a library once, serve forever.

:class:`ClassificationService` binds one TCP port and speaks both wire
protocols of :mod:`repro.service.protocol` — the first request line is
sniffed, so ``nc`` + NDJSON and ``curl /healthz`` hit the same address.
The socket front (framing, connection lifecycle, drain-on-signal) lives
in :class:`~repro.service.base.LineProtocolServer`, shared with the
fabric router; this module supplies the request *meaning*.  Requests
flow::

    connection reader ──> parse ──> Coalescer.submit ──> packed batch
                                                            │
    connection writer <── reply <── future resolves <───────┘

Each NDJSON line becomes its own reply task, so a pipelined client keeps
many requests in flight on one connection — exactly the traffic shape
the coalescer amortises.

Shutdown is a drain, not a drop: SIGTERM/SIGINT stop the listener,
already-accepted requests are batched and answered, then connections
close and :meth:`serve_forever` returns.  A second signal is ignored
(the drain is already as fast as the backlog allows).
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from repro import obs
from repro.library.store import ClassLibrary
from repro.service.base import (
    MAX_INFLIGHT_REPLIES,
    LineProtocolServer,
    best_effort_id,
    query_int,
)
from repro.service.coalescer import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_PENDING,
    DEFAULT_MAX_WAIT_MS,
    Coalescer,
)
from repro.service.metrics import ServiceMetrics
from repro.service import protocol
from repro.service.protocol import ProtocolError, Request

__all__ = [
    "ClassificationService",
    "DEFAULT_PORT",
    "DEFAULT_SLOW_MS",
    "DEFAULT_TRACE_SAMPLE",
    "MAX_INFLIGHT_REPLIES",
]

DEFAULT_PORT = 8355

#: Requests slower than this land in the slow-request log (``--slow-ms``
#: overrides; ``<= 0`` disables the slow log, traces still record).
DEFAULT_SLOW_MS = 250.0

#: Finished per-request traces retained for ``GET /v1/trace/recent``.
DEFAULT_TRACE_CAPACITY = 256

#: Head-sample span detail to every N-th request by default.  Trace and
#: span allocation is the dominant observability cost on a saturated
#: pipelined workload (the <3% overhead gate of
#: ``benchmarks/bench_obs_overhead.py`` is measured at this default);
#: ``serve --trace-sample 1`` opts into tracing every request.
DEFAULT_TRACE_SAMPLE = 8


class ClassificationService(LineProtocolServer):
    """One daemon: a listener, a coalescer, and a loaded class library.

    Args:
        library: the :class:`ClassLibrary` all queries resolve against
            (loaded once — the whole point of the daemon).
        host/port: bind address; ``port=0`` picks a free port (see
            :attr:`port` after :meth:`start`).
        engine / max_batch / max_wait_ms / max_pending / cache_size:
            coalescer knobs, see :class:`Coalescer`.
        learner: a :class:`~repro.library.online.LearningLibrary`
            wrapping ``library`` — attaches learn-on-miss minting and
            the drain-time WAL compaction (``serve --learn``).
        slow_ms: requests slower than this (end-to-end) are kept in the
            slow-request ring and logged (``serve --slow-ms``; ``<= 0``
            disables the slow log).
        trace_capacity: bound of the recent-trace ring served by
            ``GET /v1/trace/recent``.
        trace_sample: head-sample span detail to every N-th request
            (``serve --trace-sample``; ``1`` traces every request).
    """

    def __init__(
        self,
        library: ClassLibrary,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        engine: str = "batched",
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        max_pending: int = DEFAULT_MAX_PENDING,
        cache_size: int = 1 << 16,
        learner=None,
        slow_ms: float = DEFAULT_SLOW_MS,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        trace_sample: int = DEFAULT_TRACE_SAMPLE,
    ) -> None:
        super().__init__(host=host, port=port)
        self.library = library
        self.metrics = ServiceMetrics()
        self.tracer = obs.Tracer(
            capacity=trace_capacity,
            slow_ms=slow_ms,
            sample_every=trace_sample,
        )
        self.coalescer = Coalescer(
            library,
            engine=engine,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_pending=max_pending,
            cache_size=cache_size,
            metrics=self.metrics,
            learner=learner,
        )

    # ------------------------------------------------------------------
    # Lifecycle (LineProtocolServer hooks)
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and launch the coalescer worker."""
        self.coalescer.start()
        await super().start()

    async def _drain(self) -> None:
        await self.coalescer.stop()

    def _record_error(self, error_type: str) -> None:
        self.metrics.record_error(error_type)

    def _ready_message(self) -> str:
        return (
            f"serving {self.library.num_classes} classes on {self.address}"
        )

    # -------------------------- NDJSON path ---------------------------

    async def _answer_line(
        self, writer: asyncio.StreamWriter, line: bytes
    ) -> None:
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        trace = self.tracer.start("?", transport="ndjson")
        decode_start = time.perf_counter()
        try:
            request = protocol.parse_request(line)
        except ProtocolError as exc:
            if trace is not None:
                trace.op = "invalid"
                trace.annotate(error=exc.error_type)
                self.tracer.finish(trace)
            request_id = best_effort_id(line)
            await self._reject_line(writer, request_id, exc)
            return
        if trace is not None:
            trace.op = request.op
            trace.add_span("decode", decode_start, time.perf_counter())
        self.metrics.record_request(request.op)
        try:
            result = await self._resolve(request, trace)
        except ProtocolError as exc:
            if trace is not None:
                trace.annotate(error=exc.error_type)
                self.tracer.finish(trace)
            await self._reject_line(writer, request.id, exc)
            return
        self.metrics.record_reply(loop.time() - t0)
        reply_start = time.perf_counter()
        await self._write(writer, protocol.encode_line(
            protocol.ok_reply(request.id, request.op, result)
        ))
        if trace is not None:
            trace.add_span("reply", reply_start, time.perf_counter())
            self.tracer.finish(trace)

    # --------------------------- HTTP path -----------------------------

    async def _route_http(
        self, method: str, path: str, body: bytes, t0: float, query: str = ""
    ) -> tuple[int, dict]:
        loop = asyncio.get_running_loop()
        if method == "GET" and path == "/healthz":
            return 200, {
                "status": "ok",
                "classes": self.library.num_classes,
                "arities": list(self.library.arities()),
                "address": self.address,
                "draining": self.coalescer.closing,
                "learning": self.coalescer.learner is not None,
            }
        if method == "GET" and path == "/v1/stats":
            self.metrics.record_request("stats")
            snapshot = self._stats_snapshot()
            self.metrics.record_reply(loop.time() - t0)
            return 200, snapshot
        if method == "GET" and path == "/v1/trace/recent":
            limit = query_int(query, "limit", default=50)
            return 200, {
                "traces": self.tracer.recent(limit),
                "slow": self.tracer.slow_recent(limit),
                "tracer": self.tracer.snapshot(),
            }
        if method == "POST" and path in ("/v1/classify", "/v1/match"):
            op = path.rsplit("/", 1)[1]
            try:
                data = json.loads(body.decode() or "null")
            except (UnicodeDecodeError, ValueError):
                raise ProtocolError("bad_request", "body is not valid JSON")
            if not isinstance(data, dict):
                raise ProtocolError("bad_request", "body must be a JSON object")
            table = protocol.parse_table_payload(data)
            self.metrics.record_request(op)
            trace = self.tracer.start(op, transport="http")
            try:
                result = await self._resolve(
                    Request(op=op, id=data.get("id"), table=table), trace
                )
            except ProtocolError as exc:
                if trace is not None:
                    trace.annotate(error=exc.error_type)
                    self.tracer.finish(trace)
                raise
            self.metrics.record_reply(loop.time() - t0)
            self.tracer.finish(trace)
            return 200, {"ok": True, "op": op, "result": result}
        raise ProtocolError("bad_request", f"no route for {method} {path}")

    # ------------------------------------------------------------------
    # Request resolution (shared by both fronts)
    # ------------------------------------------------------------------

    async def _resolve(self, request: Request, trace=None) -> dict:
        if request.op == "ping":
            return {"pong": True, "classes": self.library.num_classes}
        if request.op == "stats":
            return self._stats_snapshot()
        future = self.coalescer.submit(request.op, request.table, trace)
        if request.op == "match":
            outcome, cached = await future
            return protocol.match_payload(request.table, outcome, cached)
        class_id, known = await future
        return protocol.classify_payload(request.table, class_id, known)

    def _stats_snapshot(self) -> dict:
        """Coalescer stats plus this worker's identity block."""
        snapshot = self.coalescer.stats_snapshot()
        snapshot["identity"] = self.identity()
        return snapshot

    def identity(self) -> dict:
        """Who this worker is — fleet debugging tells daemons apart by it."""
        return {
            "pid": os.getpid(),
            "address": self.address,
            "engine": self.coalescer.engine,
            "transports": ["ndjson", "http/1.0"],
            "id_scheme": self.library.id_scheme,
            "classes": self.library.num_classes,
            "learning": self.coalescer.learner is not None,
            "slow_ms": self.tracer.slow_ms,
            "trace_sample": self.tracer.sample_every,
        }


# Backwards-compatible aliases: these helpers grew up here and moved to
# repro.service.base when the router started sharing the socket front.
_query_int = query_int
_best_effort_id = best_effort_id
