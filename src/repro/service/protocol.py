"""Wire protocol of the classification service: NDJSON + HTTP front.

The daemon speaks two protocols on one port, distinguished by sniffing
the first request line:

* **NDJSON** (the native protocol): one JSON object per line, one reply
  line per request, connections are persistent and pipelined.  Requests
  carry an ``op`` (``classify`` / ``match`` / ``stats`` / ``ping``), an
  optional client-chosen ``id`` echoed back verbatim, and — for the
  table-taking ops — a ``table`` payload (MSB-first binary, or hex with
  an explicit or inferable ``n``, the exact grammar of the CLI).
* **HTTP/1.0** (the ops front): ``GET /healthz``, ``GET /v1/stats``,
  ``POST /v1/classify`` and ``POST /v1/match`` with a JSON body.  Every
  response closes the connection — curl-friendly, not throughput-
  oriented; heavy traffic belongs on the NDJSON path where the
  coalescer can amortise it.

Everything in this module is pure (bytes/str/dict in, dict/bytes out)
so the framing, limits and error taxonomy are testable without sockets.

Error taxonomy (the ``type`` field of error replies):

==================== ====================================================
``bad_request``      unparseable JSON, unknown op, bad table payload
``payload_too_large`` a request line above :data:`MAX_LINE_BYTES`
``overloaded``       the coalescer's pending queue is full (backpressure)
``shutting_down``    the daemon is draining after SIGTERM/SIGINT
``unavailable``      a fabric shard stayed unreachable through retries
``shard_unavailable`` no live worker owns the request's shard (ring gap)
``timeout``          a fabric dispatch exceeded its per-request deadline
``internal``         unexpected server-side failure
==================== ====================================================

The last three belong to the distributed fabric (:mod:`repro.fabric`):
a single daemon never emits them, but the router daemon speaks this
exact protocol to clients, so they live in the shared taxonomy.  The
fabric's *control plane* — worker registration, heartbeats, and drain
notices — rides the same NDJSON framing with its own op set
(:data:`FABRIC_OPS`); those ops are only accepted by the router
(``parse_request(line, allowed_ops=...)``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.truth_table import TruthTable

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "REQUEST_OPS",
    "TABLE_OPS",
    "FABRIC_OPS",
    "ERROR_TYPES",
    "ProtocolError",
    "Request",
    "parse_request",
    "parse_table_payload",
    "parse_table_text",
    "ok_reply",
    "error_reply",
    "encode_line",
    "match_payload",
    "classify_payload",
    "http_response",
    "http_text_response",
    "HTTP_METHODS",
]

#: Hard cap on one NDJSON line / HTTP body (bytes); beyond it the
#: request is rejected with ``payload_too_large`` and the connection
#: closed (the framing cannot be trusted past an oversized line).
MAX_LINE_BYTES = 1 << 20

PROTOCOL_VERSION = 1

REQUEST_OPS = ("classify", "match", "stats", "ping")
#: Ops that carry a truth-table payload.
TABLE_OPS = ("classify", "match")
#: Control-plane ops of the distributed fabric (worker -> router).
FABRIC_OPS = ("register", "heartbeat", "drain")

ERROR_TYPES = (
    "bad_request",
    "payload_too_large",
    "overloaded",
    "shutting_down",
    "unavailable",
    "shard_unavailable",
    "timeout",
    "internal",
)

#: HTTP verbs whose request line identifies a connection as HTTP.
HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ", b"OPTIONS ")


class ProtocolError(Exception):
    """A request the service refuses, with a typed error category."""

    def __init__(self, error_type: str, message: str) -> None:
        if error_type not in ERROR_TYPES:
            raise ValueError(f"unknown error type {error_type!r}")
        super().__init__(message)
        self.error_type = error_type
        self.message = message


@dataclass(frozen=True)
class Request:
    """One validated NDJSON request.

    ``raw`` keeps the decoded JSON object for ops whose payload goes
    beyond ``op``/``id``/``table`` — the fabric control plane reads its
    worker descriptors from it.  It is deliberately excluded from
    equality so table requests compare by what they *mean*.
    """

    op: str
    id: object = None
    table: TruthTable | None = None
    raw: dict | None = field(default=None, compare=False, repr=False)


def parse_request(
    line: bytes | str, allowed_ops: tuple[str, ...] = REQUEST_OPS
) -> Request:
    """Validate one NDJSON line into a :class:`Request`.

    Raises :class:`ProtocolError` (``bad_request``) on malformed JSON,
    non-object payloads, unknown ops, or bad table payloads.  The router
    daemon widens ``allowed_ops`` with :data:`FABRIC_OPS` to accept the
    worker control plane; a plain serving daemon keeps rejecting those.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                "payload_too_large",
                f"request line exceeds {MAX_LINE_BYTES} bytes",
            )
        try:
            line = line.decode()
        except UnicodeDecodeError as exc:
            raise ProtocolError("bad_request", f"request is not UTF-8: {exc}")
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad_request", f"request is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise ProtocolError(
            "bad_request", f"request must be a JSON object, got {type(data).__name__}"
        )
    op = data.get("op")
    if op not in allowed_ops:
        raise ProtocolError(
            "bad_request",
            f"unknown op {op!r}; known ops: {', '.join(allowed_ops)}",
        )
    request_id = data.get("id")
    table = parse_table_payload(data) if op in TABLE_OPS else None
    return Request(op=op, id=request_id, table=table, raw=data)


def parse_table_payload(data: dict) -> TruthTable:
    """Extract the ``table`` (+ optional ``n``) fields of a request.

    Grammar mirrors the CLI: a binary string (MSB-first, length a power
    of two) or a hex string; hex needs ``n`` unless the digit count
    pins it (``0x`` prefix optional when ``n`` is given).
    """
    text = data.get("table")
    if not isinstance(text, str) or not text:
        raise ProtocolError(
            "bad_request", "request needs a non-empty string 'table' field"
        )
    n = data.get("n")
    if n is not None and (isinstance(n, bool) or not isinstance(n, int)):
        raise ProtocolError("bad_request", f"'n' must be an integer, got {n!r}")
    try:
        return parse_table_text(text, n)
    except ValueError as exc:
        raise ProtocolError("bad_request", str(exc))


def parse_table_text(text: str, n: int | None = None) -> TruthTable:
    """The canonical truth-table text grammar — shared with the CLI.

    ``repro.cli`` delegates here, so ``repro-npn query match TABLE`` and
    a raw protocol payload always denote the same function.
    """
    # Digit-only strings are binary first (the CLI convention) — unless
    # an explicit ``n`` contradicts that reading, in which case the text
    # is reinterpreted as hex ("10" with n=3 means 0x10, not x0).
    is_hex = text.startswith("0x") or any(c in "abcdefABCDEF" for c in text)
    if not is_hex and set(text) <= {"0", "1"} and len(text) >= 2:
        length = len(text)
        if not length & (length - 1):
            tt = TruthTable.from_binary(text)
            if n is None or tt.n == n:
                return tt
    if n is not None:
        return TruthTable.from_hex(n, text)
    if is_hex:
        bits = len(text.removeprefix("0x")) * 4
        if bits & (bits - 1):
            raise ValueError(
                f"cannot infer variable count from {text!r}; pass 'n'"
            )
        return TruthTable.from_hex(bits.bit_length() - 1, text)
    raise ValueError(f"cannot parse truth table {text!r}")


# ----------------------------------------------------------------------
# Replies
# ----------------------------------------------------------------------


def ok_reply(request_id: object, op: str, result: dict) -> dict:
    """A successful reply envelope."""
    reply = {"ok": True, "op": op, "result": result}
    if request_id is not None:
        reply["id"] = request_id
    return reply


def error_reply(
    request_id: object, error_type: str, message: str
) -> dict:
    """A typed error reply envelope."""
    if error_type not in ERROR_TYPES:
        raise ValueError(f"unknown error type {error_type!r}")
    reply = {"ok": False, "error": {"type": error_type, "message": message}}
    if request_id is not None:
        reply["id"] = request_id
    return reply


def encode_line(reply: dict) -> bytes:
    """One reply as a newline-terminated JSON line."""
    return json.dumps(reply, sort_keys=True).encode() + b"\n"


def match_payload(query: TruthTable, match, cached: bool) -> dict:
    """Result body of a ``match`` op (``match`` is a LibraryMatch or None)."""
    if match is None:
        return {"hit": False, "n": query.n, "cached": cached}
    return {
        "hit": True,
        "n": query.n,
        "class_id": match.class_id,
        "representative": match.representative.to_hex(),
        "transform": match.transform.as_dict(),
        "cached": cached,
    }


def classify_payload(query: TruthTable, class_id: str, known: bool) -> dict:
    """Result body of a ``classify`` op.

    ``classify`` computes the signature class id without searching for a
    witness; ``known`` records whether the library stores that class.
    """
    return {"n": query.n, "class_id": class_id, "known": known}


# ----------------------------------------------------------------------
# HTTP front
# ----------------------------------------------------------------------

_HTTP_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    500: "Internal Server Error",
}

#: Error type -> HTTP status of the JSON-over-HTTP front.
HTTP_STATUS_BY_ERROR = {
    "bad_request": 400,
    "payload_too_large": 413,
    "overloaded": 503,
    "shutting_down": 503,
    "unavailable": 503,
    "shard_unavailable": 503,
    "timeout": 504,
    "internal": 500,
}


def http_response(status: int, body: dict) -> bytes:
    """A complete ``HTTP/1.0`` response with a JSON body."""
    payload = json.dumps(body, sort_keys=True).encode() + b"\n"
    head = (
        f"HTTP/1.0 {status} {_HTTP_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode() + payload


#: Content type of the Prometheus text exposition format served by
#: ``GET /metrics`` (the version tag is part of the scrape contract).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def http_text_response(
    status: int, text: str, content_type: str = PROMETHEUS_CONTENT_TYPE
) -> bytes:
    """A complete ``HTTP/1.0`` response with a plain-text body."""
    payload = text.encode()
    head = (
        f"HTTP/1.0 {status} {_HTTP_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode() + payload
