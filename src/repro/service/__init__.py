"""Online classification service: the repo's traffic-serving layer.

Everything before this package answers queries *offline* — build a
batch, run an engine, write an artifact.  :mod:`repro.service` is the
piece that serves traffic: a dependency-free asyncio daemon that loads a
:class:`~repro.library.ClassLibrary` once and answers ``classify`` /
``match`` / ``stats`` requests over newline-delimited JSON (plus a
small HTTP/1.0 front for ``/healthz`` and one-shot queries).

The module map mirrors the request path:

* :mod:`~repro.service.protocol` — framing, limits, error taxonomy;
* :mod:`~repro.service.coalescer` — micro-batching: concurrent requests
  fold into one packed engine batch (the amortisation that makes the
  daemon as fast per function as the offline engines);
* :mod:`~repro.service.cache` — LRU cache of complete match outcomes;
* :mod:`~repro.service.metrics` — counters + latency quantiles;
* :mod:`~repro.service.server` — the daemon (sockets, drain, signals);
* :mod:`~repro.service.client` — blocking client, pipelining-capable;
* :mod:`~repro.service.runner` — in-process harness for tests/benches.

CLI: ``repro-npn serve`` / ``repro-npn query``.
"""

from repro.service.cache import MatchCache
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailableError,
    parse_address,
)
from repro.service.coalescer import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_PENDING,
    DEFAULT_MAX_WAIT_MS,
    SERVICE_ENGINES,
    Coalescer,
)
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.service.runner import ThreadedService
from repro.service.server import DEFAULT_PORT, ClassificationService

__all__ = [
    "ClassificationService",
    "Coalescer",
    "MatchCache",
    "ServiceMetrics",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailableError",
    "ThreadedService",
    "ProtocolError",
    "parse_address",
    "DEFAULT_PORT",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_WAIT_MS",
    "DEFAULT_MAX_PENDING",
    "SERVICE_ENGINES",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
]
