"""LRU match cache: repeated queries skip signature *and* witness search.

The engine-level :class:`~repro.engine.cache.SignatureCache` already
memoises MSV computation, but a served ``match`` still pays the witness
search per query.  Online traffic is heavily repetitive (cut functions
recur across circuits), so the service caches the *complete* match
outcome keyed on the raw table identity ``(n, bits)`` — including
negative outcomes, because a miss costs a full signature computation to
rediscover and misses repeat exactly like hits do.
"""

from __future__ import annotations

from collections import OrderedDict

from repro import obs
from repro.core.truth_table import TruthTable
from repro.engine.cache import CacheStats
from repro.library.store import LibraryMatch

__all__ = ["MatchCache"]

#: Distinguishes "not cached" from a cached negative match outcome.
_ABSENT = object()

_REG = obs.registry()
_LOOKUPS = _REG.counter(
    "repro_cache_match_lookups_total",
    "Match-cache lookups by result (hit or miss).",
    labels=("result",),
)
_EVICTIONS = _REG.counter(
    "repro_cache_match_evictions_total", "Match-cache LRU evictions."
)


class MatchCache:
    """Bounded LRU map from ``(n, bits)`` to a match outcome.

    Stored values are :class:`~repro.library.store.LibraryMatch` or
    ``None`` (a cached "no class matches" answer).  ``maxsize=0``
    disables caching; stats reuse the engine's :class:`CacheStats`
    counters so the service metrics report hit rates uniformly.
    """

    def __init__(self, maxsize: int = 1 << 16) -> None:
        if maxsize < 0:
            raise ValueError(f"cache size must be non-negative, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple[int, int], LibraryMatch | None] = (
            OrderedDict()
        )

    @staticmethod
    def key_of(tt: TruthTable) -> tuple[int, int]:
        return (tt.n, tt.bits)

    def get(self, tt: TruthTable):
        """``(found, outcome)`` — ``found`` is False on a cache miss."""
        entry = self._entries.get(self.key_of(tt), _ABSENT)
        if entry is _ABSENT:
            self.stats.misses += 1
            _LOOKUPS.inc(result="miss")
            return False, None
        self._entries.move_to_end(self.key_of(tt))
        self.stats.hits += 1
        _LOOKUPS.inc(result="hit")
        return True, entry

    def put(self, tt: TruthTable, outcome: LibraryMatch | None) -> None:
        """Record one match outcome (positive or negative)."""
        if self.maxsize == 0:
            return
        key = self.key_of(tt)
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = outcome
        while len(entries) > self.maxsize:
            entries.popitem(last=False)
            self.stats.evictions += 1
            _EVICTIONS.inc()

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MatchCache(size={len(self)}/{self.maxsize}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
