"""Blocking NDJSON client for scripts, tests, and the ``repro query`` CLI.

:class:`ServiceClient` keeps one persistent connection and speaks the
native line protocol.  Two calling styles:

* request/reply — :meth:`match`, :meth:`classify`, :meth:`stats`,
  :meth:`ping` each send one line and block for its reply;
* pipelined — :meth:`match_many` writes *all* request lines before
  reading any reply, which is what lets the daemon's coalescer fold a
  client's burst into a handful of engine batches.  Replies are
  re-associated by ``id``, so out-of-order replies (possible when some
  requests hit the match cache) are handled.

Errors come back as :class:`ServiceError` carrying the daemon's typed
category (``overloaded``, ``bad_request``, ...), so callers can retry
or fail per type.  Transport failures — refused dial, reset connection,
a daemon that hung up or stopped answering — surface as
:class:`ServiceUnavailableError` (type ``unavailable``), the signal
retry loops key on: it means *try again / try elsewhere*, unlike a
``bad_request`` which will fail identically forever.
"""

from __future__ import annotations

import json
import socket

from repro.core.transforms import NPNTransform
from repro.core.truth_table import TruthTable
from repro.service.protocol import MAX_LINE_BYTES

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailableError",
    "parse_address",
    "http_get",
]


class ServiceError(RuntimeError):
    """An error reply (or transport failure) from the daemon."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"[{error_type}] {message}")
        self.error_type = error_type
        self.message = message


class ServiceUnavailableError(ServiceError):
    """The daemon cannot be reached (refused, reset, hung up, timed out).

    A subclass so existing ``except ServiceError`` handlers still catch
    it; a distinct type so retry loops (``query ping --retries``, the
    fabric tests) can retry *only* transport failures.
    """

    def __init__(self, message: str) -> None:
        super().__init__("unavailable", message)


def parse_address(address: str) -> tuple[str, int]:
    """Parse ``host:port`` (the ``--addr`` grammar of the CLI)."""
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be host:port, got {address!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"port in {address!r} is not an integer") from None
    if not 0 < port < 65536:
        raise ValueError(f"port {port} out of range")
    return host, port


def http_get(
    address: str, path: str, timeout: float = 30.0
) -> tuple[int, str]:
    """One blocking HTTP/1.0 GET against a daemon: ``(status, body)``.

    The daemon serves one HTTP response per connection (it replies with
    ``Connection: close``), so a fresh socket per call is the protocol —
    this is how the CLI fetches ``/metrics`` text and ``/v1/trace/recent``
    JSON without an HTTP client dependency.
    """
    host, port = parse_address(address)
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode()
        )
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks)
    head, sep, body = raw.partition(b"\r\n\r\n")
    if not sep:
        raise ServiceError("internal", "malformed HTTP response (no header end)")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
    parts = status_line.split()
    if len(parts) < 2 or not parts[1].isdigit():
        raise ServiceError(
            "internal", f"malformed HTTP status line: {status_line!r}"
        )
    return int(parts[1]), body.decode()


class ServiceClient:
    """One blocking connection to a classification daemon.

    Usable as a context manager; connects lazily on first use.

    Args:
        timeout: read deadline per reply, seconds (``None`` blocks
            forever — only sensible in tests).
        connect_timeout: dial deadline, seconds; defaults to ``timeout``.
            Separate knobs because a healthy dial is milliseconds while
            a legitimate reply may trail a deep engine batch.

    Example:
        >>> with ServiceClient("127.0.0.1", 8355) as client:  # doctest: +SKIP
        ...     client.match("0xe8", n=3)["class_id"]
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8355,
        timeout: float | None = 30.0,
        connect_timeout: float | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = (
            timeout if connect_timeout is None else connect_timeout
        )
        self._sock: socket.socket | None = None
        self._file = None
        self._next_id = 0

    @classmethod
    def from_address(
        cls,
        address: str,
        timeout: float | None = 30.0,
        connect_timeout: float | None = None,
    ) -> "ServiceClient":
        host, port = parse_address(address)
        return cls(host, port, timeout, connect_timeout)

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
            except OSError as exc:
                raise ServiceUnavailableError(
                    f"cannot connect to {self.host}:{self.port}: {exc}"
                ) from None
            sock.settimeout(self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def match(self, table, n: int | None = None) -> dict:
        """Resolve one function to ``{hit, class_id, transform, ...}``."""
        return self._roundtrip(self._table_request("match", table, n))

    def classify(self, table, n: int | None = None) -> dict:
        """Signature class id of one function (no witness search)."""
        return self._roundtrip(self._table_request("classify", table, n))

    def stats(self) -> dict:
        """The daemon's :class:`ServiceMetrics` snapshot."""
        return self._roundtrip({"op": "stats", "id": self._take_id()})

    def ping(self) -> dict:
        return self._roundtrip({"op": "ping", "id": self._take_id()})

    def match_many(self, tables) -> list[dict]:
        """Pipelined matches: send every request, then collect replies.

        Results come back in *argument order* regardless of the order the
        daemon answered in.  Error replies surface as the first
        :class:`ServiceError` after all replies arrived, so one
        ``overloaded`` answer cannot strand the rest of the pipeline
        unread.
        """
        requests = [self._table_request("match", table) for table in tables]
        if not requests:
            return []
        self.connect()
        payload = b"".join(
            json.dumps(req, sort_keys=True).encode() + b"\n" for req in requests
        )
        self._send(payload)
        by_id: dict[object, dict] = {}
        for _ in requests:
            reply = self._read_reply()
            by_id[reply.get("id")] = reply
        results = []
        first_error: ServiceError | None = None
        for req in requests:
            reply = by_id.get(req["id"])
            if reply is None:
                raise ServiceError("internal", f"no reply for id {req['id']}")
            if not reply.get("ok"):
                error = reply.get("error", {})
                first_error = first_error or ServiceError(
                    error.get("type", "internal"), error.get("message", "")
                )
                results.append(None)
            else:
                results.append(reply["result"])
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------------
    # Result helpers
    # ------------------------------------------------------------------

    @staticmethod
    def transform_of(result: dict) -> NPNTransform:
        """The witness of a ``match`` hit as an :class:`NPNTransform`."""
        if not result.get("hit"):
            raise ValueError("match result is a miss; no witness to decode")
        return NPNTransform.from_dict(result["transform"])

    @staticmethod
    def representative_of(result: dict) -> TruthTable:
        """The stored representative of a ``match`` hit."""
        if not result.get("hit"):
            raise ValueError("match result is a miss; no representative")
        return TruthTable.from_hex(result["n"], result["representative"])

    @staticmethod
    def verify(result: dict, query: TruthTable) -> bool:
        """Offline re-check: the served witness maps rep onto ``query``."""
        rep = ServiceClient.representative_of(result)
        return rep.apply(ServiceClient.transform_of(result)) == query

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _table_request(self, op: str, table, n: int | None = None) -> dict:
        if isinstance(table, TruthTable):
            text, n = f"0x{table.to_hex()}", table.n
        elif isinstance(table, str):
            text = table
        else:
            raise TypeError(f"table must be TruthTable or str, got {type(table)}")
        request = {"op": op, "id": self._take_id(), "table": text}
        if n is not None:
            request["n"] = n
        return request

    def _roundtrip(self, request: dict) -> dict:
        self.connect()
        self._send(json.dumps(request, sort_keys=True).encode() + b"\n")
        reply = self._read_reply()
        if not reply.get("ok"):
            error = reply.get("error", {})
            raise ServiceError(
                error.get("type", "internal"), error.get("message", "")
            )
        return reply["result"]

    def _send(self, payload: bytes) -> None:
        try:
            self._file.write(payload)
            self._file.flush()
        except OSError as exc:
            self.close()
            raise ServiceUnavailableError(
                f"send to {self.host}:{self.port} failed: {exc}"
            ) from None

    def _read_reply(self) -> dict:
        try:
            line = self._file.readline(MAX_LINE_BYTES + 2)
        except socket.timeout:
            # The connection may still be fine (slow daemon); closing it
            # keeps this client's state simple: next call redials.
            self.close()
            raise ServiceUnavailableError(
                f"{self.host}:{self.port} sent no reply within "
                f"{self.timeout}s"
            ) from None
        except OSError as exc:
            self.close()
            raise ServiceUnavailableError(
                f"read from {self.host}:{self.port} failed: {exc}"
            ) from None
        if not line:
            self.close()
            raise ServiceUnavailableError(
                f"{self.host}:{self.port} closed the connection"
            )
        try:
            reply = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceError("internal", f"unparseable reply: {exc}") from None
        if not isinstance(reply, dict):
            raise ServiceError("internal", "reply is not a JSON object")
        return reply
