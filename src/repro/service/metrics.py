"""Service observability: request/batch/cache counters + latency quantiles.

One :class:`ServiceMetrics` instance lives for the daemon's lifetime.
Recording is **thread-safe**: most updates come from the event-loop
thread, but batch accounting and learn-on-miss minting run on the
coalescer's executor thread, so every mutation and the :meth:`snapshot`
readout take the instance lock.  ``stats`` requests and
``GET /v1/stats`` serialize a :meth:`snapshot`; the numbers the
coalescing design is judged by — mean batch size and cache hit rate —
come straight from here.

Each recording also mirrors into the process-global
:func:`repro.obs.registry`, which is what ``GET /metrics`` renders:
the snapshot stays the service's exact JSON contract, the registry
carries the same series in Prometheus form next to the engine, library,
canonical, and cache layers.

Latency quantiles use a bounded reservoir of the most recent
:data:`DEFAULT_RESERVOIR` per-request latencies (enqueue to reply).
A sliding window, not a sketch: exact quantiles over recent traffic beat
approximate quantiles over all of it for a long-running daemon, and the
memory bound is what lets the service run indefinitely.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque

from repro import obs

__all__ = ["ServiceMetrics", "LatencyWindow", "DEFAULT_RESERVOIR"]

#: Per-request latencies retained for quantile estimation.
DEFAULT_RESERVOIR = 4096

_REG = obs.registry()
_REQUESTS = _REG.counter(
    "repro_service_requests_total", "Accepted requests by op.", labels=("op",)
)
_ERRORS = _REG.counter(
    "repro_service_errors_total", "Error replies by type.", labels=("type",)
)
_REPLIES = _REG.counter(
    "repro_service_replies_total", "Successful replies written."
)
_LATENCY = _REG.histogram(
    "repro_service_request_seconds",
    "End-to-end request latency, protocol decode to reply write.",
)
_BATCHES = _REG.counter(
    "repro_service_batches_total", "Engine batches dispatched by the coalescer."
)
_BATCH_SIZE = _REG.histogram(
    "repro_service_batch_size",
    "Requests per dispatched engine batch.",
    buckets=obs.BATCH_SIZE_BUCKETS,
)
_MINTED = _REG.counter(
    "repro_service_classes_minted_total",
    "Classes learned on miss (the serve --learn path).",
)


class LatencyWindow:
    """Sliding window of recent latencies with exact quantile readout."""

    def __init__(self, maxlen: int = DEFAULT_RESERVOIR) -> None:
        if maxlen < 1:
            raise ValueError(f"latency window needs maxlen >= 1, got {maxlen}")
        self._samples: deque[float] = deque(maxlen=maxlen)
        self.observed = 0

    def observe(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.observed += 1

    def quantile(self, q: float) -> float | None:
        """Exact ``q``-quantile (nearest-rank) of the window, or ``None``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def __len__(self) -> int:
        return len(self._samples)


class ServiceMetrics:
    """Counters and gauges of one daemon run.

    Attributes:
        requests: per-op counts of accepted requests.
        errors: per-type counts of error replies.
        batches: number of engine batches the coalescer dispatched.
        batched_requests: requests that went through those batches
            (cache hits and stats/ping ops never reach a batch).
        latency: sliding window of request latencies (seconds).
    """

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR) -> None:
        self.started = time.monotonic()
        self.requests: Counter[str] = Counter()
        self.errors: Counter[str] = Counter()
        self.replies_ok = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_size = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.classes_minted = 0
        self.latency = LatencyWindow(reservoir)
        # Guards every mutation and the snapshot: record_batch and
        # record_minted arrive from the coalescer's executor thread
        # while the event loop records requests/replies concurrently.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_request(self, op: str) -> None:
        with self._lock:
            self.requests[op] += 1
        _REQUESTS.inc(op=op)

    def record_reply(self, latency_seconds: float) -> None:
        with self._lock:
            self.replies_ok += 1
            self.latency.observe(latency_seconds)
        _REPLIES.inc()
        _LATENCY.observe(latency_seconds)

    def record_error(self, error_type: str) -> None:
        with self._lock:
            self.errors[error_type] += 1
        _ERRORS.inc(type=error_type)

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self.max_batch_size = max(self.max_batch_size, size)
        _BATCHES.inc()
        _BATCH_SIZE.observe(size)

    def record_cache(self, hit: bool) -> None:
        # The registry-side cache series live with MatchCache itself
        # (repro_cache_*); this keeps the snapshot's hit-rate contract.
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_minted(self) -> None:
        """One class learned on a miss (the ``serve --learn`` path)."""
        with self._lock:
            self.classes_minted += 1
        _MINTED.inc()

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def snapshot(self) -> dict:
        """JSON-ready state for ``stats`` replies and the HTTP front."""
        with self._lock:
            p50 = self.latency.quantile(0.50)
            p99 = self.latency.quantile(0.99)
            return {
                "uptime_s": round(time.monotonic() - self.started, 3),
                "requests_total": sum(self.requests.values()),
                "requests_by_op": dict(sorted(self.requests.items())),
                "replies_ok": self.replies_ok,
                "errors_total": sum(self.errors.values()),
                "errors_by_type": dict(sorted(self.errors.items())),
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "mean_batch_size": round(self.mean_batch_size, 3),
                "max_batch_size": self.max_batch_size,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_hit_rate": round(self.cache_hit_rate, 4),
                "classes_minted": self.classes_minted,
                "latency_p50_ms": None if p50 is None else round(p50 * 1e3, 3),
                "latency_p99_ms": None if p99 is None else round(p99 * 1e3, 3),
                "latency_samples": len(self.latency),
            }
