"""Dependency-free ASCII line charts for terminal output.

Used by the CLI's ``fig5`` command to render the runtime-vs-functions
series the paper plots, without requiring matplotlib (unavailable in the
offline environment).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@"


def ascii_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Render one or more (x, y) series as an ASCII chart.

    Each series gets a marker from ``o x + * # @``; axes are annotated
    with the data ranges.  Points are plotted at nearest cells; no
    interpolation.
    """
    if not xs or not series:
        return "(no data)"
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length does not match xs")
    x_min, x_max = min(xs), max(xs)
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            column = round((x - x_min) / x_span * (width - 1))
            row = round((y - y_min) / y_span * (height - 1))
            grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:>10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_min:>10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(
        " " * 12 + f"{x_min:<12.6g}" + " " * max(0, width - 24) + f"{x_max:>12.6g}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
