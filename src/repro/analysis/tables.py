"""Paper-style table rendering for benches and the CLI.

Rows are dicts; columns are inferred from the first row unless given.
Formats as aligned plain text (for terminals / bench logs) or GitHub
markdown (for EXPERIMENTS.md).
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

__all__ = ["format_table", "write_markdown_table", "format_markdown_table"]


def _render_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[dict], columns: Sequence[str] | None = None, title: str = ""
) -> str:
    """Aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered = [[_render_cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(columns[k]), *(len(r[k]) for r in rendered))
        for k in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[k]) for k, c in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[k].ljust(widths[k]) for k in range(len(columns))))
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[dict], columns: Sequence[str] | None = None
) -> str:
    """GitHub-flavoured markdown table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    lines = ["| " + " | ".join(columns) + " |"]
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append(
            "| " + " | ".join(_render_cell(row.get(c, "")) for c in columns) + " |"
        )
    return "\n".join(lines)


def write_markdown_table(
    rows: Sequence[dict],
    path: str | Path,
    columns: Sequence[str] | None = None,
    title: str = "",
) -> None:
    """Write a markdown table (with optional heading) to a file."""
    content = format_markdown_table(rows, columns)
    if title:
        content = f"## {title}\n\n{content}\n"
    Path(path).write_text(content)
