"""Timing harness for classifier comparisons (Table III, Fig. 5).

Wall-clock measurement with per-chunk timestamps, so the Fig. 5 stability
analysis can compute not just totals but the *variance* of incremental
runtimes — the paper's point is that its classifier's runtime is linear in
the number of functions while canonical-form methods fluctuate.
"""

from __future__ import annotations

import statistics
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.truth_table import TruthTable

__all__ = [
    "TimedRun",
    "time_classifier",
    "incremental_times",
    "incremental_times_bulk",
]


@dataclass
class TimedRun:
    """Result of timing one classifier over one function set."""

    method: str
    functions: int
    classes: int
    seconds: float
    chunk_seconds: list[float] = field(default_factory=list)

    @property
    def per_function_us(self) -> float:
        return 1e6 * self.seconds / self.functions if self.functions else 0.0

    @property
    def chunk_stdev(self) -> float:
        """Spread of per-chunk runtimes — the Fig. 5 stability metric."""
        if len(self.chunk_seconds) < 2:
            return 0.0
        return statistics.stdev(self.chunk_seconds)

    @property
    def chunk_relative_spread(self) -> float:
        """stdev / mean of chunk times (dimensionless stability score)."""
        if len(self.chunk_seconds) < 2:
            return 0.0
        mean = statistics.mean(self.chunk_seconds)
        return self.chunk_stdev / mean if mean else 0.0


def time_classifier(
    classifier, tables: Sequence[TruthTable], chunks: int = 1
) -> TimedRun:
    """Time ``classifier.count_classes``-equivalent work over ``tables``.

    With ``chunks > 1`` the set is split into equal slices timed
    separately (classes are still counted globally), populating
    ``chunk_seconds`` for stability analysis.
    """
    name = getattr(classifier, "name", type(classifier).__name__)
    keys = set()
    chunk_times: list[float] = []
    slices = _split(tables, chunks)
    start_all = time.perf_counter()
    if hasattr(classifier, "key"):
        for chunk in slices:
            start = time.perf_counter()
            for tt in chunk:
                keys.add(classifier.key(tt))
            chunk_times.append(time.perf_counter() - start)
        classes = len(keys)
    else:
        # Stateful classifiers (the exact engine) classify in one shot.
        start = time.perf_counter()
        classes = classifier.classify(list(tables)).num_classes
        chunk_times.append(time.perf_counter() - start)
    total = time.perf_counter() - start_all
    return TimedRun(name, len(tables), classes, total, chunk_times)


def incremental_times(
    classifier, tables: Sequence[TruthTable], points: Sequence[int]
) -> list[tuple[int, float]]:
    """Cumulative runtime after classifying the first ``p`` functions.

    Produces the (x = #functions, y = seconds) series of the paper's
    Fig. 5 for one classifier.
    """
    def collect(chunk: Sequence[TruthTable], keys: set) -> None:
        for tt in chunk:
            keys.add(classifier.key(tt))

    return _incremental_series(collect, tables, points)


def incremental_times_bulk(
    classifier, tables: Sequence[TruthTable], points: Sequence[int]
) -> list[tuple[int, float]]:
    """:func:`incremental_times` for engines exposing bulk ``signatures``.

    The batched and sharded engines have no per-function ``key`` method —
    their unit of work is a whole batch — so each Fig. 5 increment feeds
    them the next slice in one ``signatures`` call.  Classes are still
    counted globally via the signature set.
    """
    def collect(chunk: Sequence[TruthTable], keys: set) -> None:
        if chunk:
            keys.update(classifier.signatures(chunk))

    return _incremental_series(collect, tables, points)


def _incremental_series(
    collect, tables: Sequence[TruthTable], points: Sequence[int]
) -> list[tuple[int, float]]:
    """Shared sorted-points / slice / cumulative-clock loop of Fig. 5."""
    series: list[tuple[int, float]] = []
    keys: set = set()
    done = 0
    elapsed = 0.0
    for point in sorted(points):
        chunk = tables[done:point]
        start = time.perf_counter()
        collect(chunk, keys)
        elapsed += time.perf_counter() - start
        done = point
        series.append((point, elapsed))
    return series


def _split(tables: Sequence[TruthTable], chunks: int) -> list[Sequence[TruthTable]]:
    if chunks <= 1:
        return [tables]
    size = max(1, len(tables) // chunks)
    return [tables[k : k + size] for k in range(0, len(tables), size)]
