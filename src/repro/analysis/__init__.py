"""Analysis helpers: accuracy stats, paper-style tables, timing harness."""

from repro.analysis.stats import (
    accuracy,
    class_count_matrix,
    refinement_holds,
)
from repro.analysis.tables import format_table, write_markdown_table
from repro.analysis.timing import TimedRun, time_classifier

__all__ = [
    "accuracy",
    "class_count_matrix",
    "refinement_holds",
    "format_table",
    "write_markdown_table",
    "TimedRun",
    "time_classifier",
]
