"""Classification accuracy metrics and refinement checks.

The paper's Tables II/III compare methods by *class count* against the
exact count.  For a sound signature classifier ``#classes <= #exact``
(collisions merge); for a heuristic canonical form ``#classes >= #exact``
(unresolved ties split).  Accuracy is reported as the ratio to exact.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.classifier import FacePointClassifier
from repro.core.truth_table import TruthTable

__all__ = [
    "accuracy",
    "class_count_matrix",
    "refinement_holds",
    "collision_examples",
]


def accuracy(claimed_classes: int, exact_classes: int) -> float:
    """``claimed / exact`` — 1.0 means exact classification.

    Sound signature methods give values <= 1 (they can only merge); the
    heuristic canonical forms give values >= 1 (they can only split).
    """
    if exact_classes <= 0:
        raise ValueError("exact class count must be positive")
    return claimed_classes / exact_classes


def class_count_matrix(
    tables: Sequence[TruthTable], part_selections: dict[str, Iterable[str]]
) -> dict[str, int]:
    """Class counts for several MSV part selections (Table II columns)."""
    return {
        label: FacePointClassifier(parts).count_classes(tables)
        for label, parts in part_selections.items()
    }


def refinement_holds(counts: Sequence[int]) -> bool:
    """True if the class-count sequence is non-decreasing.

    Feeding counts ordered from weaker to stronger part selections checks
    the refinement property adding signature parts can only split classes.
    """
    return all(a <= b for a, b in zip(counts, counts[1:]))


def collision_examples(
    tables: Sequence[TruthTable],
    parts: Iterable[str],
    max_examples: int = 5,
) -> list[tuple[TruthTable, TruthTable]]:
    """Pairs of NPN-*non*-equivalent functions sharing an MSV.

    These are exactly the classifier's inaccuracies (paper Section V-C:
    "our classifier cannot return exact matching solutions").  Expensive
    — calls the exact matcher inside shared buckets — so bounded by
    ``max_examples``.
    """
    from repro.baselines.matcher import are_npn_equivalent

    clf = FacePointClassifier(parts)
    examples: list[tuple[TruthTable, TruthTable]] = []
    for members in clf.classify(tables).groups.values():
        representative = members[0]
        for other in members[1:]:
            if len(examples) >= max_examples:
                return examples
            if not are_npn_equivalent(representative, other):
                examples.append((representative, other))
                break
    return examples
