"""Vectorized transform primitives on top of the gather tables.

Three primitives, all operating on batches and all exact:

* :func:`apply_transforms` — every table × every transform in one numpy
  gather (``[B, T]`` ``uint64`` images);
* :func:`orbit` / :func:`orbit_chunks` — the full exhaustive NPN orbit
  of one table, as one array for small arities and as streamed chunks
  for ``n = 5, 6`` where the intermediate bit matrices are what costs
  memory (the packed orbit itself is at most 92 160 words);
* :func:`canonical_min` — the batched exhaustive canonical minimum: the
  lexicographically smallest table over each input's whole orbit,
  byte-identical to
  :func:`repro.baselines.exact_enum.exact_npn_canonical`.

Everything routes through the same two moves: unpack tables to a
``[B, 2**n]`` bit matrix once, gather it through precomputed index maps,
and pack the gathered bits back to ``uint64`` rows.  Output negation is
a single XOR with the full table mask after packing.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

import numpy as np

from repro.core import bitops
from repro.core.transforms import NPNTransform
from repro.core.truth_table import TruthTable
from repro.kernels.gather import MAX_KERNEL_VARS, GatherTable, gather_table

__all__ = [
    "bit_matrix",
    "pack_rows",
    "transform_index_maps",
    "apply_transforms",
    "orbit",
    "orbit_chunks",
    "canonical_min",
    "canonical_min_table",
]

#: Soft cap on the number of ``uint8`` entries any gather materialises.
_ENTRY_BUDGET = 1 << 25


def _as_ints(tables) -> tuple[int | None, list[int]]:
    """Normalise a table batch to ``(n_or_None, raw integer list)``."""
    ints: list[int] = []
    n: int | None = None
    for item in tables:
        if isinstance(item, TruthTable):
            if n is None:
                n = item.n
            elif item.n != n:
                raise ValueError(f"mixed arities in batch: {item.n} != {n}")
            ints.append(item.bits)
        else:
            ints.append(int(item))
    return n, ints


def bit_matrix(n: int, ints: Sequence[int]) -> np.ndarray:
    """``[B, 2**n]`` ``uint8`` bit matrix of raw integer tables.

    Row ``b``, column ``m`` holds bit ``m`` of table ``b`` — the
    unpacked form every gather operates on.  One serialisation pass, no
    per-row numpy.
    """
    if n > MAX_KERNEL_VARS:
        raise ValueError(f"kernels serve n <= {MAX_KERNEL_VARS}, got n={n}")
    size = 1 << n
    raw = b"".join(value.to_bytes(8, "little") for value in ints)
    matrix = np.unpackbits(
        np.frombuffer(raw, dtype=np.uint8).reshape(-1, 8),
        axis=1,
        bitorder="little",
    )
    return matrix[:, :size]


def pack_rows(bits: np.ndarray) -> np.ndarray:
    """Pack a ``[..., 2**n]`` bit array back to ``uint64`` tables.

    The inverse of :func:`bit_matrix` along the last axis; works for any
    leading shape (the gather primitives pack ``[B, T, 2**n]`` blocks).
    """
    packed = np.packbits(bits, axis=-1, bitorder="little")
    if packed.shape[-1] < 8:
        pad = np.zeros(
            packed.shape[:-1] + (8 - packed.shape[-1],), dtype=np.uint8
        )
        packed = np.concatenate([packed, pad], axis=-1)
    return (
        np.ascontiguousarray(packed)
        .view("<u8")
        .reshape(packed.shape[:-1])
    )


def transform_index_maps(
    n: int,
    transforms: Sequence[NPNTransform],
    cache_dir: str | Path | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``([T, 2**n] uint8 gather maps, [T] uint8 output phases)``.

    Row ``t`` maps image minterms of ``transforms[t]`` to source
    minterms (input permutation and phase folded in); output negation is
    returned separately because it acts after packing.
    """
    table = gather_table(n, cache_dir)
    rows = np.fromiter(
        (table.row_of(t.perm) for t in transforms),
        dtype=np.intp,
        count=len(transforms),
    )
    phases = np.fromiter(
        (t.input_phase for t in transforms),
        dtype=np.uint8,
        count=len(transforms),
    )
    outputs = np.fromiter(
        (t.output_phase for t in transforms),
        dtype=np.uint8,
        count=len(transforms),
    )
    return table.index_maps(rows, phases), outputs


def apply_transforms(
    tables,
    transforms: Sequence[NPNTransform],
    n: int | None = None,
    cache_dir: str | Path | None = None,
) -> np.ndarray:
    """Image of every table under every transform: ``[B, T]`` ``uint64``.

    ``result[b, t] == transforms[t].apply_table(tables[b], n)`` for all
    pairs — many tables × many transforms in one gather.  ``tables`` may
    be :class:`TruthTable` objects or raw integers (then ``n`` is
    required); all transforms must act on the same arity.
    """
    transforms = list(transforms)
    batch_n, ints = _as_ints(tables)
    if batch_n is None:
        if n is None:
            raise ValueError("pass n when tables are raw integers")
        batch_n = n
    elif n is not None and n != batch_n:
        raise ValueError(f"explicit n={n} != batch arity {batch_n}")
    for t in transforms:
        if t.n != batch_n:
            raise ValueError(
                f"transform arity {t.n} != table arity {batch_n}"
            )
    size = 1 << batch_n
    bits = bit_matrix(batch_n, ints)
    out = np.empty((len(ints), len(transforms)), dtype=np.uint64)
    if not transforms:
        return out
    mask = np.uint64(bitops.table_mask(batch_n))
    chunk = max(1, _ENTRY_BUDGET // max(1, len(ints) * size))
    for start in range(0, len(transforms), chunk):
        stop = min(start + chunk, len(transforms))
        maps, outputs = transform_index_maps(
            batch_n, transforms[start:stop], cache_dir
        )
        packed = pack_rows(bits[:, maps])  # [B, chunk]
        flip = outputs.astype(bool)
        if flip.any():
            packed[:, flip] ^= mask
        out[:, start:stop] = packed
    return out


def orbit_chunks(
    table: TruthTable,
    include_output: bool = True,
    cache_dir: str | Path | None = None,
) -> Iterator[np.ndarray]:
    """Stream the exhaustive orbit of one table as ``uint64`` chunks.

    Concatenated, the chunks enumerate the images of *every* transform
    in :func:`repro.core.transforms.all_transforms` order (output phase
    slowest, then permutation, then input phase) — ``2**(n+1) * n!``
    entries with multiplicity, ``2**n * n!`` without output negation.
    Streaming bounds the live ``uint8`` gather intermediates; the packed
    chunks themselves are small.
    """
    n = table.n
    gt = gather_table(n, cache_dir)
    bits = bit_matrix(n, [table.bits])
    mask = np.uint64(bitops.table_mask(n))
    size = gt.table_size
    perm_block = max(1, _ENTRY_BUDGET // (size * size))
    outputs = (0, 1) if include_output else (0,)
    for output_phase in outputs:
        for start in range(0, gt.num_perms, perm_block):
            maps = gt.group_index_maps(slice(start, start + perm_block))
            packed = pack_rows(bits[:, maps])[0]
            yield packed ^ mask if output_phase else packed


def orbit(
    table: TruthTable,
    include_output: bool = True,
    cache_dir: str | Path | None = None,
) -> np.ndarray:
    """The full exhaustive orbit of one table as a ``uint64`` array.

    For ``n <= 4`` this is a single gather (at most 768 entries); for
    ``n = 5, 6`` the computation streams through :func:`orbit_chunks`
    and only the packed result (<= 92 160 words) is materialised.
    """
    return np.concatenate(
        list(orbit_chunks(table, include_output, cache_dir))
    )


def canonical_min(
    tables: Iterable,
    n: int | None = None,
    cache_dir: str | Path | None = None,
) -> np.ndarray:
    """Batched exhaustive canonical minimum: ``[B]`` ``uint64``.

    Entry ``b`` is the smallest truth table in the full NPN orbit of
    ``tables[b]`` — the canonical form of
    :func:`repro.baselines.exact_enum.exact_npn_canonical`, for the
    whole batch at once.  Work is chunked along both the batch and the
    permutation group so no intermediate exceeds the entry budget.
    """
    batch_n, ints = _as_ints(tables)
    if batch_n is None:
        if n is None:
            raise ValueError("pass n when tables are raw integers")
        batch_n = n
    elif n is not None and n != batch_n:
        raise ValueError(f"explicit n={n} != batch arity {batch_n}")
    gt = gather_table(batch_n, cache_dir)
    size = gt.table_size
    mask = np.uint64(bitops.table_mask(batch_n))
    best = np.empty(len(ints), dtype=np.uint64)
    per_row = gt.np_group_order * size  # full-group entries per table
    table_chunk = max(1, _ENTRY_BUDGET // max(1, per_row))
    perm_block = max(1, _ENTRY_BUDGET // (max(1, table_chunk) * size * size))
    for t_start in range(0, len(ints), table_chunk):
        chunk_ints = ints[t_start : t_start + table_chunk]
        bits = bit_matrix(batch_n, chunk_ints)
        running = np.full(len(chunk_ints), mask, dtype=np.uint64)
        for p_start in range(0, gt.num_perms, perm_block):
            maps = gt.group_index_maps(slice(p_start, p_start + perm_block))
            packed = pack_rows(bits[:, maps])  # [chunk, block * 2**n]
            np.minimum(running, packed.min(axis=1), out=running)
            np.minimum(running, (packed ^ mask).min(axis=1), out=running)
        best[t_start : t_start + len(chunk_ints)] = running
    return best


def canonical_min_table(
    tt: TruthTable, cache_dir: str | Path | None = None
) -> TruthTable:
    """Single-table convenience wrapper around :func:`canonical_min`."""
    return TruthTable(tt.n, int(canonical_min([tt], cache_dir=cache_dir)[0]))
