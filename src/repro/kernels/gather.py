"""Per-arity transform gather tables — the precomputed heart of the kernels.

For ``n <= 6`` a truth table fits one ``uint64``, and applying an NPN
transform is a *bit permutation* of that word: the image's bit ``m`` is
``output_phase XOR f(apply_index(m))`` (see
:meth:`repro.core.transforms.NPNTransform.apply_index`).  With the table
unpacked to a ``2**n``-entry bit vector, every transform application is
therefore a single numpy *gather* through a precomputed index array —
no shifts, no big-int arithmetic, no Python loop over assignments.

Two structural facts keep the precomputed state tiny:

* the index map of ``(perm, phase)`` is the index map of ``(perm, 0)``
  XOR ``phase`` (flipping input ``i`` flips bit ``i`` of the source
  index), so only the ``n!`` *permutation* maps are stored — input
  phases are derived by a vectorized XOR at gather time;
* output negation never touches the index map at all — it is one XOR
  with the full table mask *after* packing.

A :class:`GatherTable` therefore holds ``[n!, 2**n]`` ``uint8`` indices
(45 KiB at ``n = 6``).  Tables are built on first use, memory-cached per
process, and — when a cache directory is provided (the class library
passes ``<library dir>/kernels``) — lazily persisted to disk as an
``.npz`` so later processes skip the construction entirely.  A missing,
stale, or corrupted cache file is silently rebuilt; persistence is an
optimisation, never a correctness dependency.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from functools import lru_cache
from math import factorial
from pathlib import Path

import numpy as np

__all__ = [
    "MAX_KERNEL_VARS",
    "GatherTable",
    "gather_table",
    "clear_memory_cache",
]

#: Largest arity the gather kernels serve: ``2**6 = 64`` bits — one word.
MAX_KERNEL_VARS = 6

#: On-disk cache format version (bump on any layout change).
CACHE_FORMAT_VERSION = 1

_CACHE_FILE_TEMPLATE = "gather_n{n}.v{version}.npz"

#: Process-wide memory cache: ``n -> GatherTable``.
_TABLES: dict[int, "GatherTable"] = {}


@dataclass(frozen=True)
class GatherTable:
    """Precomputed permutation index maps for one arity.

    Attributes:
        n: arity the table serves (``0 <= n <= MAX_KERNEL_VARS``).
        perms: ``[n!, n]`` ``uint8`` — every permutation, in
            :func:`itertools.permutations` order (the order
            :func:`repro.core.transforms.all_transforms` enumerates).
        perm_maps: ``[n!, 2**n]`` ``uint8`` — row ``p`` maps image
            minterm ``m`` to the source minterm read under permutation
            ``perms[p]`` with zero input phase.
    """

    n: int
    perms: np.ndarray
    perm_maps: np.ndarray

    @property
    def num_perms(self) -> int:
        return self.perm_maps.shape[0]

    @property
    def table_size(self) -> int:
        return self.perm_maps.shape[1]

    @property
    def np_group_order(self) -> int:
        """Order of the NP (no output negation) group: ``2**n * n!``."""
        return self.num_perms << self.n

    def row_of(self, perm: tuple[int, ...]) -> int:
        """Row index of a permutation (O(1) dict lookup)."""
        return _perm_rows(self.n)[tuple(perm)]

    def index_maps(self, rows: np.ndarray, phases: np.ndarray) -> np.ndarray:
        """``[C, 2**n]`` gather maps for ``C`` (perm row, input phase) pairs.

        ``rows`` and ``phases`` are parallel integer arrays; the result's
        row ``c`` maps image minterms through ``(perms[rows[c]],
        phases[c])``.
        """
        rows = np.asarray(rows, dtype=np.intp)
        phases = np.asarray(phases, dtype=np.uint8)
        return self.perm_maps[rows] ^ phases[:, None]

    def group_index_maps(self, perm_slice: slice) -> np.ndarray:
        """All-phase maps for a block of permutations, phase-minor order.

        Returns ``[P_block * 2**n, 2**n]`` rows ordered exactly like
        :func:`repro.core.transforms.all_transforms` restricted to the
        block: permutation-major, input-phase-minor.
        """
        block = self.perm_maps[perm_slice]
        phases = np.arange(self.table_size, dtype=np.uint8)
        combined = block[:, None, :] ^ phases[None, :, None]
        return combined.reshape(-1, self.table_size)


def gather_table(n: int, cache_dir: str | Path | None = None) -> GatherTable:
    """The (memory-cached) gather table for arity ``n``.

    With ``cache_dir`` the table is additionally persisted under that
    directory on first construction and loaded from it on later cold
    starts.  Passing different ``cache_dir`` values for the same ``n``
    is safe — the content is a pure function of ``n``.
    """
    if not 0 <= n <= MAX_KERNEL_VARS:
        raise ValueError(
            f"gather kernels serve n <= {MAX_KERNEL_VARS}, got n={n}"
        )
    table = _TABLES.get(n)
    if table is None:
        table = _load_from_disk(n, cache_dir)
        if table is None:
            table = _build_table(n)
            _persist_to_disk(table, cache_dir)
        _TABLES[n] = table
    elif cache_dir is not None:
        # Memory hit: still make sure the on-disk copy exists (lazily).
        _persist_to_disk(table, cache_dir)
    return table


def clear_memory_cache() -> None:
    """Drop all memory-cached tables (test isolation helper)."""
    _TABLES.clear()
    _perm_rows.cache_clear()


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------


def _build_table(n: int) -> GatherTable:
    """Compute the ``[n!, 2**n]`` permutation maps in one vectorized pass."""
    size = 1 << n
    if n == 0:
        perms = np.zeros((1, 0), dtype=np.uint8)
        maps = np.zeros((1, 1), dtype=np.uint8)
        return _frozen_table(0, perms, maps)
    perms = np.array(
        list(itertools.permutations(range(n))), dtype=np.uint8
    )
    # m_bits[m, j] = bit j of minterm m; the source index under perm p is
    # src[p, m] = sum_i m_bits[m, perms[p, i]] << i (apply_index, phase 0).
    m_bits = (
        (np.arange(size)[:, None] >> np.arange(n)[None, :]) & 1
    ).astype(np.uint8)
    gathered = m_bits[:, perms.astype(np.intp)]  # [size, n!, n]
    pow2 = (1 << np.arange(n, dtype=np.uint32))
    maps = (
        (gathered.astype(np.uint32) * pow2).sum(axis=2).T.astype(np.uint8)
    )  # [n!, size]
    return _frozen_table(n, perms, maps)


def _frozen_table(n: int, perms: np.ndarray, maps: np.ndarray) -> GatherTable:
    perms = np.ascontiguousarray(perms)
    maps = np.ascontiguousarray(maps)
    perms.setflags(write=False)
    maps.setflags(write=False)
    return GatherTable(n=n, perms=perms, perm_maps=maps)


@lru_cache(maxsize=None)
def _perm_rows(n: int) -> dict[tuple[int, ...], int]:
    """Permutation tuple -> row index, in construction order."""
    return {
        perm: row
        for row, perm in enumerate(itertools.permutations(range(n)))
    }


# ----------------------------------------------------------------------
# Disk persistence
# ----------------------------------------------------------------------


def _cache_path(n: int, cache_dir: str | Path) -> Path:
    return Path(cache_dir) / _CACHE_FILE_TEMPLATE.format(
        n=n, version=CACHE_FORMAT_VERSION
    )


def _load_from_disk(n: int, cache_dir: str | Path | None) -> GatherTable | None:
    if cache_dir is None:
        return None
    path = _cache_path(n, cache_dir)
    if not path.exists():
        return None
    try:
        with np.load(path) as data:
            perms = data["perms"].astype(np.uint8)
            maps = data["perm_maps"].astype(np.uint8)
        if perms.shape == (factorial(n), n) and maps.shape == (
            factorial(n),
            1 << n,
        ):
            return _frozen_table(n, perms, maps)
    except Exception:  # corrupted cache: rebuild, never fail
        pass
    # A bad file would otherwise block persistence forever (the writer
    # skips existing paths) — drop it so the rebuild can be re-published.
    try:
        path.unlink()
    except OSError:
        pass
    return None


def _persist_to_disk(table: GatherTable, cache_dir: str | Path | None) -> None:
    if cache_dir is None:
        return
    path = _cache_path(table.n, cache_dir)
    if path.exists():
        return
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        # Per-writer temp name: concurrent cold starts (service workers,
        # the sharded engine) must not truncate each other's half-written
        # file before one of them atomically publishes it.
        temp = path.with_suffix(f".{os.getpid()}.tmp")
        with open(temp, "wb") as handle:
            np.savez(handle, perms=table.perms, perm_maps=table.perm_maps)
        temp.replace(path)  # atomic publish: readers never see partial files
    except OSError:
        pass  # read-only library dir: memory cache still serves everything
