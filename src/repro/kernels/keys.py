"""Batched NP-invariant variable keys — vectorized twin of the matcher's.

:func:`repro.baselines.matcher.variable_keys` computes, per variable,
``(influence, sorted cofactor-count pair, sorted pair of per-polarity
sensitivity histograms)``.  The scalar path costs a sensitivity profile
plus ``2n`` bincounts *per table*; on the library match path that is the
single largest per-query cost once signatures are batched.

This module computes the same information for a whole batch in a
handful of numpy passes over the ``[B, 2**n]`` bit matrix, and encodes
each variable's key as a fixed-width **int64 row** instead of a nested
tuple: ``(influence, cofactor min, cofactor max, lex-min histogram,
lex-max histogram)`` with each histogram packed MSB-first into one word
(counts are at most ``2**n <= 64``, so 7 bits per level suffice).  Two
variables have equal matcher keys **iff** their key rows are equal —
the parity suite pins this — which lets the matcher build its candidate
lists from plain integer comparisons with no per-variable Python
assembly.

The polarity handling is shared with the matcher: under output negation
the sensitivity profile (hence influence and both histograms) is
unchanged and only the cofactor counts complement within their face
size, so :func:`complement_key_matrices` derives the encoding of every
``~f`` in the batch without touching the tables again.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.kernels.gather import MAX_KERNEL_VARS
from repro.kernels.ops import bit_matrix

__all__ = ["KeyMatrices", "key_matrices", "complement_key_matrices", "KEY_WIDTH"]

#: Columns of a key row: influence, cofactor min/max, two packed histograms.
KEY_WIDTH = 5

#: Bits per histogram level in the packed encoding (counts fit 7 bits).
_HIST_LEVEL_BITS = 7

#: Rows per chunk for the ``[B, 2**n, n+1]`` histogram temporaries.
_KEYS_CHUNK = 8192


class KeyMatrices(NamedTuple):
    """Vectorized variable-key state for a same-arity batch.

    Attributes:
        counts: ``[B]`` satisfy counts.
        keys: ``[B, n, KEY_WIDTH]`` int64 key rows (equal rows <=> equal
            matcher variable keys).
        cofactors: ``[B, n, 2]`` oriented cofactor counts
            ``(count(x_i=0), count(x_i=1))`` — the orientation the
            sorted key columns deliberately forget; the per-(slot,
            variable) polarity pruning needs it.
    """

    counts: np.ndarray
    keys: np.ndarray
    cofactors: np.ndarray


def key_matrices(n: int, ints: list[int]) -> KeyMatrices:
    """Key rows for every table of a same-arity batch (see module doc)."""
    if n > MAX_KERNEL_VARS:
        raise ValueError(f"kernels serve n <= {MAX_KERNEL_VARS}, got n={n}")
    if not ints:
        return KeyMatrices(
            np.zeros(0, dtype=np.int64),
            np.zeros((0, n, KEY_WIDTH), dtype=np.int64),
            np.zeros((0, n, 2), dtype=np.int64),
        )
    parts = [
        _chunk_matrices(n, ints[start : start + _KEYS_CHUNK])
        for start in range(0, len(ints), _KEYS_CHUNK)
    ]
    if len(parts) == 1:
        return parts[0]
    return KeyMatrices(
        np.concatenate([p.counts for p in parts]),
        np.concatenate([p.keys for p in parts]),
        np.concatenate([p.cofactors for p in parts]),
    )


def complement_key_matrices(matrices: KeyMatrices, n: int) -> KeyMatrices:
    """Key state of every ``~f`` in the batch, derived without recompute.

    The sensitivity profile of ``~f`` equals that of ``f`` (XOR with the
    constant mask cancels), so influence and both histograms carry over;
    a cofactor count ``c`` complements to ``2**(n-1) - c`` within its
    half of the table.
    """
    half = 1 << (n - 1) if n else 1
    size = 1 << n
    keys = matrices.keys.copy()
    keys[:, :, 1] = half - matrices.keys[:, :, 2]
    keys[:, :, 2] = half - matrices.keys[:, :, 1]
    return KeyMatrices(
        size - matrices.counts, keys, half - matrices.cofactors
    )


def _chunk_matrices(n: int, ints: list[int]) -> KeyMatrices:
    size = 1 << n
    bits = bit_matrix(n, ints)  # [B, size]
    batch = bits.shape[0]
    counts = bits.sum(axis=1, dtype=np.int64)
    keys = np.zeros((batch, n, KEY_WIDTH), dtype=np.int64)
    cofactors = np.zeros((batch, n, 2), dtype=np.int64)
    if n == 0:
        return KeyMatrices(counts, keys, cofactors)

    minterms = np.arange(size)
    # varbits[i, m] = 1 iff bit i of minterm m — the var_mask bit arrays.
    varbits = ((minterms[None, :] >> np.arange(n)[:, None]) & 1).astype(
        np.int64
    )

    # Sensitivity words per variable (bits ^ x_i-flipped bits), influence
    # and the per-word sensitivity profile, all in one pass.
    profile = np.zeros((batch, size), dtype=np.int64)
    for i in range(n):
        sens = bits ^ bits[:, minterms ^ (1 << i)]
        keys[:, i, 0] = sens.sum(axis=1, dtype=np.int64) >> 1
        profile += sens

    ones_side = bits.astype(np.int64) @ varbits.T  # [B, n]
    neg_side = counts[:, None] - ones_side
    cofactors[:, :, 0] = neg_side
    cofactors[:, :, 1] = ones_side
    np.minimum(neg_side, ones_side, out=keys[:, :, 1])
    np.maximum(neg_side, ones_side, out=keys[:, :, 2])

    # hist[b, i, s] = |{m : varbit_i(m) = 1, profile[b, m] = s}| and the
    # zero-side complement — packed MSB-first so lexicographic order of
    # the histogram tuples is numeric order of the packed words.  The
    # contraction runs in float32 (exact: all counts are < 2**24) so it
    # goes through BLAS instead of the much slower integer loops.
    onehot = (profile[:, :, None] == np.arange(n + 1)).astype(np.float32)
    hist_pos = (
        np.tensordot(onehot, varbits.astype(np.float32), axes=([1], [1]))
        .astype(np.int64)
        .transpose(0, 2, 1)
    )
    hist_neg = onehot.sum(axis=1, dtype=np.int64)[:, None, :] - hist_pos
    shifts = (_HIST_LEVEL_BITS * np.arange(n, -1, -1)).astype(np.int64)
    packed_pos = (hist_pos << shifts).sum(axis=2)
    packed_neg = (hist_neg << shifts).sum(axis=2)
    np.minimum(packed_neg, packed_pos, out=keys[:, :, 3])
    np.maximum(packed_neg, packed_pos, out=keys[:, :, 4])
    return KeyMatrices(counts, keys, cofactors)
