"""Vectorized NPN transform kernels — the gather-table hot path.

For ``n <= 6`` a truth table fits one ``uint64`` and applying an NPN
transform is a precomputable *index gather*, not a loop.  This package
precomputes per-arity gather tables (memory-cached, lazily persisted
under the class-library directory) and exposes vectorized primitives on
top of them:

* :func:`apply_transforms` — many tables × many transforms in one gather;
* :func:`orbit` / :func:`orbit_chunks` — exhaustive orbit enumeration;
* :func:`canonical_min` — batched exhaustive canonical minima;
* :func:`key_matrices` — batched matcher variable keys in int64 rows.

The matcher (:mod:`repro.baselines.matcher`), the class library
(:mod:`repro.library`) and — through them — the online service all run
their exact-matching hot paths through these kernels; the scalar
implementations remain as oracles and as the ``n > 6`` fallback.
Depends on :mod:`repro.core` only.
"""

from repro.kernels.gather import (
    MAX_KERNEL_VARS,
    GatherTable,
    clear_memory_cache,
    gather_table,
)
from repro.kernels.keys import (
    KEY_WIDTH,
    KeyMatrices,
    complement_key_matrices,
    key_matrices,
)
from repro.kernels.ops import (
    apply_transforms,
    bit_matrix,
    canonical_min,
    canonical_min_table,
    orbit,
    orbit_chunks,
    pack_rows,
    transform_index_maps,
)

__all__ = [
    "MAX_KERNEL_VARS",
    "GatherTable",
    "gather_table",
    "clear_memory_cache",
    "KEY_WIDTH",
    "KeyMatrices",
    "key_matrices",
    "complement_key_matrices",
    "apply_transforms",
    "bit_matrix",
    "pack_rows",
    "transform_index_maps",
    "orbit",
    "orbit_chunks",
    "canonical_min",
    "canonical_min_table",
]
