"""LRU signature cache: repeated workloads skip recomputation.

Library matching evaluates the same cut functions against a library over
and over, and the Fig. 5 consecutive-table stress re-visits structurally
identical tables; both make signature computation cache-friendly.  The
cache is keyed on ``(table bits, n, parts)`` — everything that determines
a :class:`~repro.core.msv.MixedSignature` — so one cache instance can be
shared between classifiers with different part selections.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.msv import MixedSignature

__all__ = ["SignatureCache", "CacheStats"]

#: Cache key: ``(table bits, n, parts)``.
CacheKey = tuple[int, int, tuple[str, ...]]


@dataclass
class CacheStats:
    """Running hit/miss/eviction counters of one :class:`SignatureCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0


class SignatureCache:
    """Bounded LRU map from ``(bits, n, parts)`` to computed signatures.

    ``maxsize=0`` disables caching entirely (every lookup misses); any
    positive size evicts least-recently-used entries beyond the bound.
    """

    def __init__(self, maxsize: int = 1 << 16) -> None:
        if maxsize < 0:
            raise ValueError(f"cache size must be non-negative, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: OrderedDict[CacheKey, MixedSignature] = OrderedDict()

    def get(self, key: CacheKey) -> MixedSignature | None:
        """Look up a signature, refreshing its recency on a hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: CacheKey, signature: MixedSignature) -> None:
        """Insert (or refresh) one signature, evicting LRU overflow."""
        if self.maxsize == 0:
            return
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = signature
        while len(entries) > self.maxsize:
            entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters keep accumulating)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SignatureCache(size={len(self)}/{self.maxsize}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
