"""Packed truth-table batches: many functions in one ``uint64`` matrix.

A :class:`PackedTables` holds ``batch`` same-arity truth tables as a
``[batch, W]`` ``uint64`` array with ``W = max(1, 2**n / 64)`` — the
layout of :func:`repro.core.bitops.to_words` stacked row-wise.  Every
kernel in this module acts on *all rows at once*, which is what turns
Algorithm 1's per-function loop into a handful of NumPy passes.

The word-level tricks mirror the big-int kernel in
:mod:`repro.core.bitops` exactly:

* a variable ``i < 6`` lives *inside* each word, so flipping it is the
  same masked-shift trick, applied elementwise;
* a variable ``i >= 6`` spans words, so flipping it swaps word blocks at
  stride ``2**(i-6)`` — pure array reshuffling, no bit arithmetic.

Property tests assert each kernel against its big-int twin.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from functools import lru_cache

import numpy as np

from repro.core import bitops
from repro.core.truth_table import TruthTable

__all__ = [
    "PackedTables",
    "popcount_words",
    "popcount_rows",
    "masked_popcount_rows",
    "flip_input_packed",
    "sensitivity_words_packed",
    "unpack_bits",
]

_WORD_INDEX_BITS = 6  # log2(bitops.WORD_BITS)


class PackedTables:
    """An immutable batch of ``n``-variable truth tables in packed form.

    The canonical bulk representation of the batched engine: row ``b`` is
    :func:`repro.core.bitops.to_words` of function ``b``.
    """

    __slots__ = ("n", "words")

    def __init__(self, n: int, words: np.ndarray) -> None:
        expected = bitops.words_per_table(n)
        # Own a frozen little-endian copy: a caller-held alias mutated after
        # the overflow check could otherwise poison downstream signature
        # caches, and the byte-view kernels assume '<u8' word layout.
        words = np.array(words, dtype="<u8", order="C", copy=True)
        if words.ndim != 2 or words.shape[1] != expected:
            raise ValueError(
                f"packed batch for n={n} needs shape [batch, {expected}], "
                f"got {words.shape}"
            )
        if (1 << n) < bitops.WORD_BITS:
            overflow = words & ~np.uint64(bitops.table_mask(n))
            if overflow.any():
                raise ValueError(f"table value does not fit in 2^{n} bits")
        words.setflags(write=False)
        self.n = n
        self.words = words

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------

    @classmethod
    def wrap_readonly(cls, n: int, words: np.ndarray) -> "PackedTables":
        """Adopt an existing read-only ``'<u8'`` view without copying.

        The zero-copy escape hatch for the shared-memory transport: the
        sharded workers' rows already live in an arena the parent wrote
        and will not mutate, so the defensive copy in ``__init__`` would
        reintroduce exactly the per-shard copy the arena exists to
        avoid.  The view must already satisfy the ``__init__``
        invariants — C-contiguous ``'<u8'``, correct width, writeable
        flag off — anything else raises rather than being fixed up,
        because "fixing up" means copying.
        """
        expected = bitops.words_per_table(n)
        if words.ndim != 2 or words.shape[1] != expected:
            raise ValueError(
                f"packed batch for n={n} needs shape [batch, {expected}], "
                f"got {words.shape}"
            )
        if words.dtype != np.dtype("<u8"):
            raise ValueError(f"wrap_readonly needs '<u8' words, got {words.dtype}")
        if not words.flags.c_contiguous:
            raise ValueError("wrap_readonly needs a C-contiguous view")
        if words.flags.writeable:
            raise ValueError("wrap_readonly needs a read-only view")
        self = cls.__new__(cls)
        self.n = n
        self.words = words
        return self

    @classmethod
    def from_tables(cls, tables: Sequence[TruthTable]) -> "PackedTables":
        """Pack a homogeneous sequence of :class:`TruthTable` objects."""
        tables = list(tables)
        if not tables:
            raise ValueError("cannot pack an empty batch")
        n = tables[0].n
        for tt in tables:
            if tt.n != n:
                raise ValueError(f"mixed arities in batch: {tt.n} != {n}")
        return cls.from_ints(n, (tt.bits for tt in tables))

    @classmethod
    def from_ints(cls, n: int, bits: Iterable[int]) -> "PackedTables":
        """Pack raw big-int tables (one serialisation pass, no per-row numpy)."""
        nbytes = bitops.words_per_table(n) * 8
        buffer = b"".join(value.to_bytes(nbytes, "little") for value in bits)
        if not buffer:
            raise ValueError("cannot pack an empty batch")
        words = np.frombuffer(buffer, dtype="<u8").reshape(-1, nbytes // 8)
        return cls(n, words)

    def to_ints(self) -> list[int]:
        """Row tables as big ints (inverse of :meth:`from_ints`)."""
        nbytes = self.words.shape[1] * 8
        raw = self.words.astype("<u8", copy=False).tobytes()
        mask = bitops.table_mask(self.n)
        return [
            int.from_bytes(raw[off : off + nbytes], "little") & mask
            for off in range(0, len(raw), nbytes)
        ]

    def to_tables(self) -> list[TruthTable]:
        """Row tables as :class:`TruthTable` values."""
        n = self.n
        return [TruthTable(n, bits) for bits in self.to_ints()]

    def table(self, index: int) -> TruthTable:
        """One row as a :class:`TruthTable`."""
        return TruthTable(self.n, bitops.from_words(self.words[index], self.n))

    def __len__(self) -> int:
        return self.words.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PackedTables(n={self.n}, batch={len(self)})"


# ----------------------------------------------------------------------
# Word kernels
# ----------------------------------------------------------------------


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Elementwise popcount of a ``uint64`` array, as ``int64``."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).astype(np.int64)
    # Fallback for older NumPy: byte-wise lookup table (byte order is
    # irrelevant to the per-word sum, but the view needs contiguity).
    bytes_view = np.ascontiguousarray(words).view(np.uint8)
    return bitops.popcount_table(8)[bytes_view].reshape(*words.shape, 8).sum(
        axis=-1, dtype=np.int64
    )


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Satisfy count of every row of a ``[batch, W]`` packed array."""
    return popcount_words(words).sum(axis=-1)


def masked_popcount_rows(words: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Row popcounts under one or many masks.

    ``masks`` is ``[W]`` (one mask, result ``[batch]``) or ``[M, W]``
    (``M`` masks, result ``[batch, M]``) — the bulk form of the paper's
    masked-popcount cofactor counting.
    """
    if masks.ndim == 1:
        return popcount_rows(words & masks)
    return popcount_words(words[:, None, :] & masks[None, :, :]).sum(axis=-1)


def flip_input_packed(words: np.ndarray, n: int, i: int) -> np.ndarray:
    """Batched :func:`repro.core.bitops.flip_input` on a packed array."""
    if not 0 <= i < n:
        raise ValueError(f"variable index {i} out of range for n={n}")
    if i < _WORD_INDEX_BITS:
        mask_hi = _inword_var_mask(min(n, _WORD_INDEX_BITS), i)
        shift = np.uint64(1 << i)
        hi = words & mask_hi
        lo = words & ~mask_hi
        return (hi >> shift) | (lo << shift)
    stride = 1 << (i - _WORD_INDEX_BITS)
    batch, width = words.shape
    blocks = words.reshape(batch, width // (2 * stride), 2, stride)
    return blocks[:, :, ::-1, :].reshape(batch, width)


def sensitivity_words_packed(words: np.ndarray, n: int, i: int) -> np.ndarray:
    """Batched :func:`repro.core.bitops.sensitivity_word`."""
    return words ^ flip_input_packed(words, n, i)


def unpack_bits(packed: PackedTables) -> np.ndarray:
    """Unpack to a ``[batch, 2**n]`` ``uint8`` bit matrix (minterm order)."""
    return unpack_word_bits(packed.words, packed.n)


def unpack_word_bits(words: np.ndarray, n: int) -> np.ndarray:
    """Unpack a raw ``[batch, W]`` array to ``[batch, 2**n]`` bits.

    The byte view must see little-endian word layout for minterm order to
    hold on any host; ``astype('<u8')`` is a no-op on little-endian
    machines and a byteswap copy on big-endian ones.
    """
    bytes_view = np.ascontiguousarray(words.astype("<u8", copy=False)).view(np.uint8)
    bits = np.unpackbits(bytes_view, axis=1, bitorder="little")
    return bits[:, : 1 << n]


@lru_cache(maxsize=None)
def _inword_var_mask(n: int, i: int) -> np.uint64:
    """``var_mask(n, i)`` for a variable that fits inside one word."""
    return np.uint64(bitops.var_mask(n, i))
