"""Deterministic merging of sharded classification output.

The sharded engine's contract is bit-for-bit determinism: whatever the
worker count, shard boundaries, or the order in which the pool happens to
finish shards, the final :class:`~repro.core.classifier.ClassificationResult`
must be byte-identical to a single-process
:class:`~repro.engine.classifier.BatchedClassifier` run (checked with
``buckets_digest``).  That determinism is concentrated here, in two
order-restoring steps:

1. **Key placement** — workers return ``(index, key)`` pairs where
   ``index`` is the row's position in the original (deduplicated) miss
   list.  :func:`merge_shard_keys` places keys by index, so shard results
   may arrive in *any* order (``imap_unordered``) without affecting the
   output.  Every index must be covered exactly once; holes or duplicates
   mean a sharding bug and raise instead of silently corrupting buckets.

2. **Bucketing** — :func:`extend_buckets` inserts ``(signature, member)``
   pairs strictly in input order, reproducing the first-seen group order
   and member order of the single-process classifiers.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.classifier import ClassificationResult
from repro.core.msv import MixedSignature
from repro.core.truth_table import TruthTable

__all__ = [
    "merge_shard_keys",
    "check_span_coverage",
    "bucket_in_order",
    "extend_buckets",
]

#: Distinguishes "no key yet" from any legitimate key value.
_MISSING = object()


def merge_shard_keys(
    shard_results: Iterable[Sequence[tuple[int, tuple]]], total: int
) -> list[tuple]:
    """Reassemble per-shard ``(index, key)`` pairs into index order.

    ``shard_results`` may yield shards in any completion order; the
    result is ``keys[index]`` for every ``index`` in ``range(total)``.

    Raises:
        ValueError: if any index is out of range, reported twice, or
            never reported — the sharding layer must cover the input
            exactly.
    """
    keys: list = [_MISSING] * total
    filled = 0
    for pairs in shard_results:
        for index, key in pairs:
            if not 0 <= index < total:
                raise ValueError(
                    f"shard returned index {index}, outside 0..{total - 1}"
                )
            if keys[index] is not _MISSING:
                raise ValueError(f"shards returned index {index} twice")
            keys[index] = key
            filled += 1
    if filled != total:
        raise ValueError(
            f"shards covered {filled} of {total} rows; merge would be partial"
        )
    return keys


def check_span_coverage(
    spans: Iterable[tuple[int, int]], total: int
) -> None:
    """Verify ``(base, count)`` completion spans tile ``range(total)``.

    The shared-memory transport's counterpart to the index checks in
    :func:`merge_shard_keys`: workers write keys into the arena in place
    and report only the span they covered, so overlap or a hole here is
    the only evidence of a sharding bug before buckets silently corrupt.

    Raises:
        ValueError: if any span is out of range, spans overlap, or they
            fail to cover every row exactly once.
    """
    spans = list(spans)
    for base, count in spans:
        if count < 1 or base < 0 or base + count > total:
            raise ValueError(
                f"shard span ({base}, {count}) outside 0..{total}"
            )
    expected = 0
    for base, count in sorted(spans):
        if base != expected:
            raise ValueError(
                f"shard spans {'overlap' if base < expected else 'leave a hole'} "
                f"at row {min(base, expected)}"
            )
        expected = base + count
    if expected != total:
        raise ValueError(
            f"shard spans covered {expected} of {total} rows; merge would be partial"
        )


def extend_buckets(
    result: ClassificationResult,
    signatures: Sequence[MixedSignature],
    members: Sequence[TruthTable],
) -> ClassificationResult:
    """Append classified functions to ``result`` in input order.

    The same ``setdefault``-in-input-order loop the single-process
    classifiers run — group insertion order is first-seen, member order
    is arrival order — so streaming chunk-at-a-time accumulation yields
    the identical grouping a one-shot run would.
    """
    groups = result.groups
    for signature, tt in zip(signatures, members):
        groups.setdefault(signature, []).append(tt)
    return result


def bucket_in_order(
    parts: tuple[str, ...],
    signatures: Sequence[MixedSignature],
    members: Sequence[TruthTable],
) -> ClassificationResult:
    """A fresh :class:`ClassificationResult` bucketed in input order."""
    return extend_buckets(ClassificationResult(parts), signatures, members)
