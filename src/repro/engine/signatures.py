"""Batched signature computation: MSV raw pieces for a whole packed batch.

This is the vectorized twin of :func:`repro.core.msv.compute_pieces`.
Every face/point characteristic of Section II is computed for *all*
functions of a :class:`~repro.engine.packed.PackedTables` at once:

* cofactor satisfy counts are masked popcounts — one ``[batch, M, W]``
  AND-popcount pass per cofactor arity (Definitions 1-2);
* influence and the sensitivity profile come from per-variable
  sensitivity words, XOR-shifts applied to the full word matrix
  (Definitions 3-5);
* OSDV pair counting batches the Walsh-Hadamard XOR auto-correlation of
  :mod:`repro.spectral.walsh` along the minterm axis, so one transform
  handles every function simultaneously (Definitions 9-10).

The output is a list of :class:`repro.core.msv.SignaturePieces` — the
same container the scalar path fills — so key assembly (phase
canonicalisation, sorting, tuple layout) is shared code and the resulting
:class:`~repro.core.msv.MixedSignature` objects are byte-identical to the
per-function classifier's.  That equality is what makes the batched
engine inherit the never-split contract.
"""

from __future__ import annotations

import itertools
from functools import lru_cache

import numpy as np

from repro.core import bitops
from repro.core.msv import SignaturePieces
from repro.engine.packed import (
    PackedTables,
    masked_popcount_rows,
    popcount_rows,
    sensitivity_words_packed,
    unpack_word_bits,
)

__all__ = ["batched_pieces", "fwht_batch", "auto_chunk_size"]

#: Soft cap on the size of one int64 work matrix (entries, not bytes).
_CHUNK_BUDGET = 1 << 23


def auto_chunk_size(n: int, selected: tuple[str, ...] = ()) -> int:
    """Rows per chunk keeping the ``[chunk, 2**n]`` temporaries bounded.

    Cofactor mask stacks wider than the table itself are blocked along
    the mask axis separately (see ``_masked_counts``), so the row budget
    is driven by the profile/OSDV temporaries — of which roughly four
    (profile, ones mask, level indicator, FWHT spectrum) are alive at
    once when sensitivity parts are selected.
    """
    per_row = 1 << n
    if set(selected) & {"osv", "osv_full", "osdv", "osdv_full"}:
        per_row *= 4
    return max(1, min(8192, _CHUNK_BUDGET // per_row))


def batched_pieces(
    packed: PackedTables,
    selected: tuple[str, ...],
    chunk_size: int | None = None,
) -> list[SignaturePieces]:
    """Raw MSV pieces of every function in the batch, in row order."""
    if chunk_size is None:
        chunk_size = auto_chunk_size(packed.n, selected)
    pieces: list[SignaturePieces] = []
    for start in range(0, len(packed), chunk_size):
        words = packed.words[start : start + chunk_size]
        pieces.extend(_chunk_pieces(words, packed.n, selected))
    if "spectral" in selected:
        from repro.spectral.signatures import spectral_signature

        for index, piece in enumerate(pieces):
            piece.spectral = spectral_signature(packed.table(index))
    return pieces


def _chunk_pieces(
    words: np.ndarray, n: int, selected: tuple[str, ...]
) -> list[SignaturePieces]:
    batch = words.shape[0]
    need = set(selected)
    counts = popcount_rows(words)

    columns: dict[str, list] = {}
    # Cofactor tuples are pre-sorted vectorized: the key assembly sorts the
    # multiset anyway, and Timsort is O(length) on the sorted (phase 0) or
    # reverse-sorted (phase 1, complemented) runs it then receives.
    if "ocv1" in need:
        ones_side = masked_popcount_rows(words, _var_mask_stack(n))
        cof1 = np.empty((batch, 2 * n), dtype=np.int64)
        cof1[:, 1::2] = ones_side
        cof1[:, 0::2] = counts[:, None] - ones_side
        cof1.sort(axis=1)
        columns["cof1"] = cof1.tolist()
    if "ocv2" in need:
        cof2 = _masked_counts(words, _cofactor_masks(n, 2))
        cof2.sort(axis=1)
        columns["cof2"] = cof2.tolist()
    if "ocv3" in need:
        cof3 = _masked_counts(words, _cofactor_masks(n, 3))
        cof3.sort(axis=1)
        columns["cof3"] = cof3.tolist()

    need_profile = bool(need & {"osv", "osv_full", "osdv", "osdv_full"})
    profile = None
    if "oiv" in need or need_profile:
        influences = np.empty((batch, n), dtype=np.int64)
        if need_profile:
            profile = np.zeros((batch, 1 << n), dtype=np.int64)
        for i in range(n):
            sens = sensitivity_words_packed(words, n, i)
            if "oiv" in need:
                influences[:, i] = popcount_rows(sens) >> 1
            if need_profile:
                profile += unpack_word_bits(sens, n)
        if "oiv" in need:
            influences.sort(axis=1)
            columns["oiv"] = influences.tolist()

    if need_profile:
        ones = unpack_word_bits(words, n).astype(bool)
        if "osv" in need:
            columns["hist1"] = _level_counts(profile, ones, n).tolist()
            columns["hist0"] = _level_counts(profile, ~ones, n).tolist()
        if "osv_full" in need:
            columns["hist_full"] = _level_counts(profile, None, n).tolist()
        if "osdv" in need:
            columns["osdv1"] = _osdv_rows(profile, ones, n).tolist()
            columns["osdv0"] = _osdv_rows(profile, ~ones, n).tolist()
        if "osdv_full" in need:
            columns["osdv_full"] = _osdv_rows(profile, None, n).tolist()

    names = list(columns)
    rows = [columns[name] for name in names]
    out = []
    for index in range(batch):
        piece = SignaturePieces(n=n, count=int(counts[index]))
        for name, column in zip(names, rows):
            setattr(piece, name, tuple(column[index]))
        out.append(piece)
    return out


def _masked_counts(words: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Row popcounts under a mask stack, blocked along the mask axis.

    Wide stacks (``ocv3`` at large ``n``) would otherwise materialise a
    ``[chunk, M, W]`` AND matrix of many GB; blocking keeps every
    intermediate under the entry budget regardless of ``M``.
    """
    batch, width = words.shape
    total = masks.shape[0]
    block = max(1, _CHUNK_BUDGET // max(1, batch * width))
    if block >= total:
        return masked_popcount_rows(words, masks)
    out = np.empty((batch, total), dtype=np.int64)
    for start in range(0, total, block):
        stop = start + block
        out[:, start:stop] = masked_popcount_rows(words, masks[start:stop])
    return out


def _level_counts(
    profile: np.ndarray, keep: np.ndarray | None, n: int
) -> np.ndarray:
    """``[batch, n+1]`` histogram of the sensitivity profile over ``keep``.

    Level indicators are built one at a time (not materialised as a
    list), keeping peak memory at a couple of row-sized temporaries.
    """
    stacked = []
    for s in range(n + 1):
        level = profile == s
        stacked.append((level & keep if keep is not None else level).sum(axis=1))
    return np.stack(stacked, axis=1)


def _osdv_rows(
    profile: np.ndarray, keep: np.ndarray | None, n: int
) -> np.ndarray:
    """Flattened OSDV (Definition 10) for every row: ``[batch, (n+1)*n]``.

    For each sensitivity level the unordered-pair Hamming-distance
    histogram is a batched XOR auto-correlation, folded over minterm
    weights; levels with fewer than two members contribute zero rows
    (the convolution yields exactly that, so no special-casing).
    """
    batch = profile.shape[0]
    out = np.zeros((batch, (n + 1) * n), dtype=np.int64)
    if n == 0:
        return out
    size = 1 << n
    fold = _distance_fold(n)
    for s in range(n + 1):
        level = profile == s
        indicator = (level & keep) if keep is not None else level
        if not indicator.any():
            continue
        # Ordered pair counts by distance j:  sum_z [wt(z)=j] (H s^2)[z] / N
        # = s^2 @ (H @ onehot) / N  (H symmetric) — forward transform only.
        spectrum = _fwht_inplace(indicator.astype(np.int64))
        spectrum *= spectrum
        histogram = (spectrum @ fold) // size
        out[:, s * n : (s + 1) * n] = histogram >> 1  # unordered pairs
    return out


def fwht_batch(values: np.ndarray) -> np.ndarray:
    """Row-wise unnormalised fast Walsh-Hadamard transform.

    Same butterfly as :func:`repro.spectral.walsh.fwht`, applied along the
    last axis of a ``[batch, size]`` int64 matrix.  The input is never
    modified; the transform runs on a fresh copy.
    """
    return _fwht_inplace(np.array(values, dtype=np.int64, order="C"))


def _fwht_inplace(out: np.ndarray) -> np.ndarray:
    """Butterfly on a contiguous int64 array the caller owns (destroyed)."""
    size = out.shape[-1]
    if size == 0 or size & (size - 1):
        raise ValueError(f"FWHT length {size} is not a power of two")
    h = 1
    while h < size:
        shaped = out.reshape(-1, 2, h)
        left = shaped[:, 0, :]
        right = shaped[:, 1, :]
        temp = left - right
        left += right
        right[:] = temp
        h *= 2
    return out


@lru_cache(maxsize=8)  # [2**n, n] int64 — large at high n, keep a few live
def _distance_fold(n: int) -> np.ndarray:
    """``[2**n, n]`` matrix folding squared spectra to pair-distance counts.

    Column ``j-1`` is the Walsh transform of the weight-``j`` indicator
    (a Krawtchouk column): ``spectrum**2 @ fold // 2**n`` yields ordered
    pair counts at distances ``1..n``.  Magnitudes stay below ``8**n``,
    inside int64 for all supported ``n``.
    """
    weights = bitops.popcount_table(n)
    onehot = np.zeros((1 << n, n + 1), dtype=np.int64)
    onehot[np.arange(1 << n), weights] = 1
    folded = fwht_batch(onehot.T).T
    return _frozen(np.ascontiguousarray(folded[:, 1:]))


@lru_cache(maxsize=None)
def _var_mask_stack(n: int) -> np.ndarray:
    """``[n, W]`` stack of packed per-variable masks."""
    if n == 0:
        return _frozen(np.zeros((0, bitops.words_per_table(0)), dtype=np.uint64))
    return _frozen(np.stack([bitops.var_mask_words(n, i) for i in range(n)]))


@lru_cache(maxsize=8)  # [M, W] stacks grow combinatorially with n and ell
def _cofactor_masks(n: int, ell: int) -> np.ndarray:
    """``[C(n,ell) * 2**ell, W]`` packed masks in ``cofactor_counts`` order."""
    masks = []
    full = bitops.table_mask(n)
    for subset in itertools.combinations(range(n), ell):
        for values in range(1 << ell):
            mask = full
            for k, i in enumerate(subset):
                var = bitops.var_mask(n, i)
                mask &= var if (values >> k) & 1 else ~var
            masks.append(bitops.mask_words(mask, n))
    if not masks:
        return _frozen(np.zeros((0, bitops.words_per_table(n)), dtype=np.uint64))
    return _frozen(np.stack(masks))


def _frozen(array: np.ndarray) -> np.ndarray:
    """Mark a cached array read-only: lru_cache hands out shared objects."""
    array.setflags(write=False)
    return array
