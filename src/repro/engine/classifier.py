"""The batched NPN classifier: Algorithm 1 over packed batches.

:class:`BatchedClassifier` is a drop-in replacement for
:class:`repro.core.classifier.FacePointClassifier` that moves the
signature computation from one big-int at a time to whole
:class:`~repro.engine.packed.PackedTables` batches, and memoises results
in an LRU :class:`~repro.engine.cache.SignatureCache`.

Contract: for any input sequence the classifier produces *identical*
buckets to ``FacePointClassifier`` — same :class:`MixedSignature` keys,
same first-seen group order, same member order.  The never-split
invariant (NPN-equivalent functions always share a bucket) is therefore
inherited rather than re-proved: both paths assemble keys through
:func:`repro.core.msv.msv_from_pieces`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.classifier import ClassificationResult
from repro.core.msv import (
    DEFAULT_PARTS,
    MixedSignature,
    canonical_key,
    normalize_parts,
)
from repro.core.truth_table import TruthTable
from repro.engine.cache import CacheStats, SignatureCache
from repro.engine.packed import PackedTables
from repro.engine.signatures import batched_pieces

__all__ = ["BatchedClassifier"]


class BatchedClassifier:
    """NPN classifier with a vectorized hot path and a signature cache.

    Args:
        parts: which signature vectors make up the MSV (same selection as
            ``FacePointClassifier``).
        cache_size: LRU capacity of the signature cache; ``0`` disables
            caching.
        chunk_size: rows per vectorized chunk; ``None`` picks a size that
            keeps the ``[chunk, 2**n]`` temporaries cache-resident.

    Example:
        >>> from repro import TruthTable
        >>> from repro.engine import BatchedClassifier
        >>> clf = BatchedClassifier()
        >>> maj = TruthTable.majority(3)
        >>> clf.classify([maj, ~maj, maj.flip_input(1)]).num_classes
        1
    """

    def __init__(
        self,
        parts: Iterable[str] = DEFAULT_PARTS,
        cache_size: int = 1 << 16,
        chunk_size: int | None = None,
    ) -> None:
        self.parts = normalize_parts(parts)
        self.chunk_size = chunk_size
        self.cache = SignatureCache(maxsize=cache_size)

    # ------------------------------------------------------------------
    # Signatures
    # ------------------------------------------------------------------

    def signature(self, tt: TruthTable) -> MixedSignature:
        """The MSV of one function (cached)."""
        return self.signatures([tt])[0]

    def signatures(
        self, tables: Sequence[TruthTable] | PackedTables
    ) -> list[MixedSignature]:
        """MSVs of many functions, in input order.

        Accepts a sequence of :class:`TruthTable` (arities may be mixed —
        rows are grouped per ``n`` internally) or an already-packed
        :class:`PackedTables` batch.  Cached signatures are reused; only
        the misses go through the vectorized kernels.
        """
        if isinstance(tables, PackedTables):
            return self._signatures_one_arity(
                tables.n, tables.to_ints(), packed=tables
            )
        tables = list(tables)
        out: list[MixedSignature | None] = [None] * len(tables)
        by_arity: dict[int, list[int]] = {}
        for index, tt in enumerate(tables):
            by_arity.setdefault(tt.n, []).append(index)
        for n, indices in by_arity.items():
            sigs = self._signatures_one_arity(n, [tables[i].bits for i in indices])
            for index, sig in zip(indices, sigs):
                out[index] = sig
        return out  # type: ignore[return-value]

    def _signatures_one_arity(
        self, n: int, bits: list[int], packed: PackedTables | None = None
    ) -> list[MixedSignature]:
        parts = self.parts
        out: list[MixedSignature | None] = [None] * len(bits)
        misses: list[int] = []  # first position of each distinct missing table
        missing: set[int] = set()
        for index, value in enumerate(bits):
            cached = self.cache.get((value, n, parts))
            if cached is not None:
                out[index] = cached
            elif value not in missing:
                missing.add(value)
                misses.append(index)
        if misses:
            if packed is not None and len(misses) == len(bits):
                batch = packed
            else:
                batch = PackedTables.from_ints(n, (bits[i] for i in misses))
            pieces = batched_pieces(batch, parts, self.chunk_size)
            resolved: dict[int, MixedSignature] = {}
            for index, piece in zip(misses, pieces):
                sig = MixedSignature(n, parts, canonical_key(piece, parts))
                resolved[bits[index]] = sig
                self.cache.put((bits[index], n, parts), sig)
            for index, value in enumerate(bits):
                if out[index] is None:
                    out[index] = resolved[value]
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def classify(
        self, tables: Sequence[TruthTable] | PackedTables
    ) -> ClassificationResult:
        """Group functions into NPN classes by signature hashing."""
        if isinstance(tables, PackedTables):
            members = tables.to_tables()
            signatures = self._signatures_one_arity(
                tables.n, [tt.bits for tt in members], packed=tables
            )
        else:
            members = list(tables)
            signatures = self.signatures(members)
        result = ClassificationResult(self.parts)
        groups = result.groups
        for signature, tt in zip(signatures, members):
            groups.setdefault(signature, []).append(tt)
        return result

    def count_classes(
        self, tables: Sequence[TruthTable] | PackedTables
    ) -> int:
        """Number of classes without retaining group membership."""
        return len(set(self.signatures(tables)))

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the signature cache."""
        return self.cache.stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchedClassifier(parts={self.parts}, "
            f"cache={len(self.cache)}/{self.cache.maxsize})"
        )
