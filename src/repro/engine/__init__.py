"""Batched classification engine: packed batches, vectorized signatures.

The per-function classifier in :mod:`repro.core.classifier` computes each
Mixed Signature Vector on one big-int table at a time.  This package is
the bulk counterpart the Section V-C linearity claim deserves:

* :class:`~repro.engine.packed.PackedTables` — many truth tables as one
  ``[batch, 2**n / 64]`` ``uint64`` matrix;
* :mod:`repro.engine.signatures` — every MSV part computed vectorized
  across the whole batch;
* :class:`~repro.engine.cache.SignatureCache` — LRU memoisation keyed on
  ``(table, n, parts)`` for repeated workloads;
* :class:`~repro.engine.classifier.BatchedClassifier` — Algorithm 1 with
  buckets byte-identical to ``FacePointClassifier``'s;
* :class:`~repro.engine.sharded.ShardedClassifier` — the batched engine
  fanned out over a ``multiprocessing`` pool, with the deterministic
  shard merge of :mod:`repro.engine.merge`; buckets stay byte-identical
  for every worker count.
"""

from repro.engine.cache import CacheStats, SignatureCache
from repro.engine.classifier import BatchedClassifier
from repro.engine.merge import bucket_in_order, extend_buckets, merge_shard_keys
from repro.engine.packed import PackedTables
from repro.engine.sharded import DEFAULT_STREAM_CHUNK, ShardedClassifier
from repro.engine.signatures import batched_pieces

__all__ = [
    "BatchedClassifier",
    "ShardedClassifier",
    "PackedTables",
    "SignatureCache",
    "CacheStats",
    "batched_pieces",
    "bucket_in_order",
    "extend_buckets",
    "merge_shard_keys",
    "DEFAULT_STREAM_CHUNK",
]
