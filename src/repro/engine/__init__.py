"""Batched classification engine: packed batches, vectorized signatures.

The per-function classifier in :mod:`repro.core.classifier` computes each
Mixed Signature Vector on one big-int table at a time.  This package is
the bulk counterpart the Section V-C linearity claim deserves:

* :class:`~repro.engine.packed.PackedTables` — many truth tables as one
  ``[batch, 2**n / 64]`` ``uint64`` matrix;
* :mod:`repro.engine.signatures` — every MSV part computed vectorized
  across the whole batch;
* :class:`~repro.engine.cache.SignatureCache` — LRU memoisation keyed on
  ``(table, n, parts)`` for repeated workloads;
* :class:`~repro.engine.classifier.BatchedClassifier` — Algorithm 1 with
  buckets byte-identical to ``FacePointClassifier``'s;
* :class:`~repro.engine.sharded.ShardedClassifier` — the batched engine
  fanned out over a ``multiprocessing`` pool, with the deterministic
  shard merge of :mod:`repro.engine.merge`; buckets stay byte-identical
  for every worker count.
"""

from repro.core.classifier import FacePointClassifier
from repro.core.msv import DEFAULT_PARTS
from repro.engine.cache import CacheStats, SignatureCache
from repro.engine.classifier import BatchedClassifier
from repro.engine.merge import (
    bucket_in_order,
    check_span_coverage,
    extend_buckets,
    merge_shard_keys,
)
from repro.engine.packed import PackedTables
from repro.engine.sharded import (
    DEFAULT_STREAM_CHUNK,
    TRANSPORT_NAMES,
    ShardedClassifier,
)
from repro.engine.signatures import batched_pieces

#: Engine names accepted by :func:`make_classifier` (and the CLI flags).
ENGINE_NAMES = ("perfn", "batched", "sharded", "canonical")


def make_classifier(
    engine: str = "batched",
    parts=DEFAULT_PARTS,
    workers: int | None = None,
    transport: str | None = None,
):
    """One constructor for every engine, keyed by name.

    The three signature engines produce byte-identical buckets on the
    same input — the choice is purely a throughput knob.  ``canonical``
    is the exact engine: signatures as the pre-filter, the
    influence-aided canonical form as the decider, result groups keyed
    by true orbit minima (:mod:`repro.canonical`).  ``workers`` and
    ``transport`` are only meaningful for the sharded engine — passing
    either with any other engine raises, so a mis-wired CLI flag cannot
    be silently ignored.
    """
    if engine not in ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {engine!r}; known: {', '.join(ENGINE_NAMES)}"
        )
    if workers is not None and engine != "sharded":
        raise ValueError(
            f"workers only applies to the sharded engine, not {engine!r}"
        )
    if transport is not None and engine != "sharded":
        raise ValueError(
            f"transport only applies to the sharded engine, not {engine!r}"
        )
    if engine == "perfn":
        return FacePointClassifier(parts)
    if engine == "batched":
        return BatchedClassifier(parts)
    if engine == "canonical":
        # Lazy import: repro.canonical.engine builds on this package.
        from repro.canonical.engine import CanonicalClassifier

        return CanonicalClassifier(parts)
    return ShardedClassifier(parts, workers=workers, transport=transport)


__all__ = [
    "BatchedClassifier",
    "ShardedClassifier",
    "ENGINE_NAMES",
    "TRANSPORT_NAMES",
    "make_classifier",
    "PackedTables",
    "SignatureCache",
    "CacheStats",
    "batched_pieces",
    "bucket_in_order",
    "check_span_coverage",
    "extend_buckets",
    "merge_shard_keys",
    "DEFAULT_STREAM_CHUNK",
]
