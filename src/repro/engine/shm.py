"""Zero-copy shared-memory transport for the sharded engine.

The original sharded dispatch pickled every shard's packed buffer into a
pipe on the way out and every worker's ``(index, key)`` list on the way
back — transport cost that grew with worker count and erased the
parallel speedup (the scale-out regression recorded in
``BENCH_sharded_engine.json``).  This module replaces both copies with
one ``multiprocessing.shared_memory`` **arena** per pool scope:

* the parent writes the whole miss batch into the arena's *input region*
  once; shard tasks carry only ``(shm name, base row, row count, …)``
  descriptors — a few dozen bytes each, whatever the shard size;
* workers attach to the arena by name (attachment cached per process),
  read their rows in place, and write each canonical key — flattened to
  a fixed-width ``int64`` row by :func:`key_codec` — into the arena's
  *result region*, returning only a ``(base, count)`` completion span;
* the parent checks the spans tile the batch, bulk-converts the result
  region, and rebuilds the key tuples.

Arena layout (all offsets 8-byte aligned)::

    ┌──────────────────────────────┬──────────────────────────────────┐
    │ input region                 │ result region                    │
    │ [rows, words] '<u8'          │ [rows, key_width] '<i8'          │
    │ packed truth tables          │ flattened canonical keys         │
    └──────────────────────────────┴──────────────────────────────────┘
    offset 0                        offset rows * words * 8

**Ownership and cleanup.**  The parent that creates an arena owns it and
is the only process that unlinks it.  Every live arena is tracked in a
module registry keyed by owner pid; disposal runs from (in order of
preference) the pool scope's ``finally``, the process's ``atexit`` hook,
or a lazily installed SIGTERM chain handler — so a normal exit, a worker
crash (the scope unwinds through the pool error) and a terminated parent
all leave ``/dev/shm`` clean, with no ``resource_tracker`` warnings.
Workers never unlink: an attachment to an already-unlinked segment stays
valid until closed, so the unlink/attach order cannot race.

The key flattening is possible because, for a fixed ``(n, parts)``
selection, every canonical MSV key has the *same* nested tuple shape —
only the integer leaves vary (all signature parts are fixed-size
per-arity vectors).  :func:`key_codec` derives that shape once from a
template function and round-trips keys through flat ``int64`` rows
byte-exactly; a shape mismatch raises instead of corrupting buckets.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
from collections import OrderedDict
from functools import lru_cache
from itertools import count

try:  # pragma: no cover - import guard for exotic builds only
    from multiprocessing import shared_memory as _shared_memory

    SHM_AVAILABLE = True
except ImportError:  # pragma: no cover
    _shared_memory = None
    SHM_AVAILABLE = False

from repro import obs
from repro.core.msv import canonical_key, compute_pieces, normalize_parts
from repro.core.truth_table import TruthTable

__all__ = [
    "SHM_AVAILABLE",
    "ARENA_PREFIX",
    "KeyCodec",
    "key_codec",
    "ShmArena",
    "attach_segment",
    "live_arena_names",
]

#: Every arena this engine creates is named ``repro-shm-<pid>-<seq>`` —
#: greppable in ``/dev/shm`` so tests and CI can assert zero leaks.
ARENA_PREFIX = "repro-shm-"

_ARENA_SEQ = count()

_REG = obs.registry()
_ARENAS_CREATED = _REG.counter(
    "repro_shm_arenas_created_total", "Shared-memory arenas created."
)
_ARENAS_DISPOSED = _REG.counter(
    "repro_shm_arenas_disposed_total", "Shared-memory arenas unlinked."
)
_ARENA_LIVE_BYTES = _REG.gauge(
    "repro_shm_arena_live_bytes",
    "Bytes of shared-memory arena capacity currently owned by this process.",
)

#: Live arenas owned by *this* process: name -> (SharedMemory, owner pid).
#: The pid guards forked children (pool workers inherit a copy of this
#: dict but must never unlink the parent's segments).
_LIVE: dict[str, tuple] = {}
_CLEANUP_INSTALLED = False

#: Worker-side attachment cache: arenas are recycled across shards and
#: chunks, so one attach per (process, arena) suffices.  Bounded LRU —
#: a parent that reallocates a grown arena leaves at most a few stale
#: (closed-on-evict) attachments behind.
_ATTACHMENTS: "OrderedDict[str, object]" = OrderedDict()
_ATTACH_CACHE_SIZE = 4


# ----------------------------------------------------------------------
# Key codec: canonical key tuple <-> fixed-width int64 row
# ----------------------------------------------------------------------


class KeyCodec:
    """Flattens/rebuilds canonical keys of one ``(n, parts)`` space.

    ``width`` is the number of ``int64`` slots one key occupies;
    ``structure`` is the nested-tuple template (``None`` marks an integer
    leaf) every key of this space must match.
    """

    __slots__ = ("n", "parts", "structure", "width")

    def __init__(self, n: int, parts: tuple[str, ...]) -> None:
        self.n = n
        self.parts = parts
        template = canonical_key(
            compute_pieces(TruthTable(n, 0), parts), parts
        )
        self.structure = _structure_of(template)
        self.width = _leaf_count(self.structure)

    def flatten(self, key: tuple) -> list[int]:
        """``key`` as a flat leaf list; raises on any shape mismatch."""
        out: list[int] = []
        _flatten_into(key, self.structure, out)
        return out

    def unflatten(self, values) -> tuple:
        """Rebuild the key tuple from one flat row (list of ints)."""
        built, consumed = _build(self.structure, values, 0)
        if consumed != len(values):
            raise ValueError(
                f"key row holds {len(values)} leaves, structure consumes "
                f"{consumed}"
            )
        return built


@lru_cache(maxsize=None)
def key_codec(n: int, parts: tuple[str, ...]) -> KeyCodec:
    """The (cached) codec of one signature space.

    Pure function of ``(n, parts)``: parent and workers derive identical
    codecs independently, so no layout metadata crosses the process
    boundary beyond the descriptor's ``key_width`` sanity field.
    """
    return KeyCodec(n, normalize_parts(parts))


def _structure_of(value):
    if isinstance(value, tuple):
        return tuple(_structure_of(item) for item in value)
    if isinstance(value, int):
        return None
    raise TypeError(f"canonical keys hold ints and tuples, got {type(value)}")


def _leaf_count(structure) -> int:
    if structure is None:
        return 1
    return sum(_leaf_count(item) for item in structure)


def _flatten_into(value, structure, out: list) -> None:
    if structure is None:
        if not isinstance(value, int):
            raise ValueError(f"expected an int leaf, got {type(value)}")
        out.append(value)
        return
    if not isinstance(value, tuple) or len(value) != len(structure):
        raise ValueError(
            f"key shape mismatch: expected a {len(structure)}-tuple, "
            f"got {value!r}"
        )
    for item, sub in zip(value, structure):
        _flatten_into(item, sub, out)


def _build(structure, values, pos: int):
    if structure is None:
        return values[pos], pos + 1
    items = []
    for sub in structure:
        item, pos = _build(sub, values, pos)
        items.append(item)
    return tuple(items), pos


# ----------------------------------------------------------------------
# Arena lifecycle (parent side)
# ----------------------------------------------------------------------


class ShmArena:
    """One shared-memory block owned by the creating process.

    Create with :meth:`create`; always :meth:`dispose` from the owner —
    the pool scope's ``finally`` in normal operation, the module's
    atexit/SIGTERM hooks as the safety net.
    """

    __slots__ = ("shm", "name", "capacity")

    def __init__(self, shm) -> None:
        self.shm = shm
        self.name = shm.name
        self.capacity = shm.size

    @classmethod
    def create(cls, nbytes: int) -> "ShmArena":
        if not SHM_AVAILABLE:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        if nbytes < 1:
            raise ValueError(f"arena size must be positive, got {nbytes}")
        while True:
            name = f"{ARENA_PREFIX}{os.getpid()}-{next(_ARENA_SEQ)}"
            shm = None
            try:
                # Create-and-register is atomic: any exception past the
                # point the segment may exist on disk (shm_open succeeds,
                # then e.g. ftruncate/mmap dies with ENOMEM inside the
                # SharedMemory constructor — which does *not* unlink the
                # file it just created) unlinks it on the way out, so no
                # unregistered repro-shm-* orphan survives the raise.
                try:
                    shm = _shared_memory.SharedMemory(
                        name=name, create=True, size=nbytes
                    )
                except FileExistsError:  # stale segment from a recycled pid
                    continue
                _LIVE[shm.name] = (shm, os.getpid())
            except BaseException:
                if shm is not None:
                    _LIVE.pop(shm.name, None)
                    _dispose_segment(shm)
                else:
                    _unlink_orphan(name)
                raise
            break
        _install_cleanup_hooks()
        _ARENAS_CREATED.inc()
        _ARENA_LIVE_BYTES.inc(shm.size)
        return cls(shm)

    def dispose(self) -> None:
        """Unlink and close; idempotent, never raises on double-dispose."""
        entry = _LIVE.pop(self.name, None)
        if entry is None:
            return
        _dispose_segment(entry[0])
        _ARENAS_DISPOSED.inc()
        _ARENA_LIVE_BYTES.dec(self.capacity)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShmArena({self.name!r}, {self.capacity} bytes)"


def live_arena_names() -> list[str]:
    """Arenas currently owned by this process (for tests/leak checks)."""
    pid = os.getpid()
    return sorted(name for name, (_, owner) in _LIVE.items() if owner == pid)


def _dispose_segment(shm) -> None:
    try:
        shm.unlink()
    except FileNotFoundError:  # already gone (e.g. external cleanup)
        pass
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a live view pins the map;
        pass  # the segment is unlinked either way, so nothing leaks


def _unlink_orphan(name: str) -> None:
    """Best-effort unlink of a segment a *failed* constructor left behind.

    The constructor raised before handing back an object, so there is
    nothing to ``close``/``unlink`` through — remove the file by name.
    ``shm_unlink`` is preferred (no second mmap, which is exactly what
    may have just failed); attaching is the portable fallback.  Never
    raises: cleanup of a failure path must not mask the original error.
    """
    try:
        from _posixshmem import shm_unlink  # POSIX fast path
    except ImportError:  # pragma: no cover - non-POSIX platform
        shm_unlink = None
    if shm_unlink is not None:
        try:
            shm_unlink("/" + name)
        except OSError:
            pass
        return
    try:  # pragma: no cover - non-POSIX platform
        stale = _shared_memory.SharedMemory(name=name)
    except Exception:
        return
    _dispose_segment(stale)


def _cleanup_owned_arenas() -> None:
    """Unlink every arena this process owns (atexit / SIGTERM hook)."""
    pid = os.getpid()
    for name in list(_LIVE):
        entry = _LIVE.get(name)
        if entry is None or entry[1] != pid:
            continue
        _LIVE.pop(name, None)
        _dispose_segment(entry[0])


def _sigterm_chain(signum, frame):  # pragma: no cover - exercised via
    # a real subprocess in tests/engine/test_shm_transport.py
    _cleanup_owned_arenas()
    signal.signal(signum, signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def _install_cleanup_hooks() -> None:
    """Arm atexit + SIGTERM cleanup, once, on first arena creation.

    The SIGTERM hook chains to the *default* action and is only
    installed when no other handler is present — a host application with
    its own SIGTERM handling (the serve daemon's asyncio drain, say) is
    expected to exit normally, where the atexit hook takes over.
    """
    global _CLEANUP_INSTALLED
    if _CLEANUP_INSTALLED:
        return
    _CLEANUP_INSTALLED = True
    atexit.register(_cleanup_owned_arenas)
    if threading.current_thread() is not threading.main_thread():
        return
    try:
        if signal.getsignal(signal.SIGTERM) is signal.SIG_DFL:
            signal.signal(signal.SIGTERM, _sigterm_chain)
    except (ValueError, OSError):  # pragma: no cover - non-main contexts
        pass


# ----------------------------------------------------------------------
# Attachment (worker side)
# ----------------------------------------------------------------------


def attach_segment(name: str):
    """Attach to an arena by name, with a per-process LRU cache.

    Used by pool workers (and by the parent when a single-shard batch
    runs inline).  Attachments outlive the segment's unlink safely;
    evicted entries are closed.
    """
    shm = _ATTACHMENTS.pop(name, None)
    if shm is None:
        shm = _shared_memory.SharedMemory(name=name)
        while len(_ATTACHMENTS) >= _ATTACH_CACHE_SIZE:
            _, stale = _ATTACHMENTS.popitem(last=False)
            try:
                stale.close()
            except BufferError:  # pragma: no cover - view still alive
                pass
    _ATTACHMENTS[name] = shm
    return shm
