"""Sharded multi-process NPN classification: scale past one core.

:class:`ShardedClassifier` partitions a workload into packed shards, fans
them out to a ``multiprocessing`` pool, and deterministically merges the
per-shard results.  The paper's Section V-C linearity claim makes this
embarrassingly parallel: each function's Mixed Signature Vector depends on
that function alone, so shards never need to communicate.

Design decisions, all in service of the never-split contract:

* **Workers compute keys, the parent buckets.**  Workers run
  :func:`~repro.engine.signatures.batched_pieces`, so signatures go
  through the exact code path :class:`BatchedClassifier` uses.
* **Transport is zero-copy by default.**  The ``"shm"`` transport writes
  each miss batch once into a :class:`~repro.engine.shm.ShmArena` (one
  arena per pool scope, recycled across ``classify_iter`` chunks) and
  hands workers only ``(arena name, base, count, …)`` descriptors;
  workers attach, read their rows in place, and write flattened
  canonical keys into the arena's result region, returning a bare
  ``(base, count)`` span.  Dispatch cost is therefore independent of
  shard contents — the fix for the scale-out regression where pickling
  every shard buffer and result list made more workers *slower*.  The
  ``"pickle"`` transport (packed little-endian ``uint64`` byte buffers
  out, ``(index, key)`` lists back) remains as the escape hatch for
  hosts without POSIX shared memory (``--no-shm`` on the CLI).
* **Completion order cannot matter.**  Pickle results are merged by
  :func:`repro.engine.merge.merge_shard_keys`; shm spans are audited by
  :func:`repro.engine.merge.check_span_coverage` before the result
  region is decoded.  Both reject holes and overlaps, and buckets are
  byte-identical to ``BatchedClassifier`` for every worker count, shard
  size, and transport (``buckets_digest`` equality, enforced by tests
  and the ``bench_sharded_engine`` acceptance run).
* **The cache lives in the parent.**  Cache lookup and dedup run before
  sharding, exactly as in ``BatchedClassifier``, so only distinct misses
  cross the process boundary and :class:`SignatureCache` statistics are
  identical to the single-process driver's.
* **Streaming is bounded-memory.**  :meth:`ShardedClassifier.classify_iter`
  consumes any iterator chunk by chunk, holding one chunk of tables (plus
  one arena / the in-flight shard buffers) at a time, with one pool and
  one arena reused across chunks.
* **Failure is loud, cleanup is guaranteed.**  The pool is a
  ``concurrent.futures.ProcessPoolExecutor`` precisely because a killed
  worker raises ``BrokenProcessPool`` instead of hanging the dispatch
  loop the way ``multiprocessing.Pool`` does; the scope's ``finally``
  then disposes the arena, and :mod:`repro.engine.shm`'s atexit/SIGTERM
  hooks cover exits that bypass the scope.

``workers=1`` never forks: shards run inline in the parent (no arena,
no processes), which keeps single-core machines, debuggers and coverage
tools happy while exercising the identical shard/merge code path.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from itertools import islice
from multiprocessing import get_context

import numpy as np

from repro import obs
from repro.core import bitops
from repro.core.classifier import ClassificationResult
from repro.core.msv import (
    DEFAULT_PARTS,
    MixedSignature,
    canonical_key,
    normalize_parts,
)
from repro.core.truth_table import TruthTable
from repro.engine.cache import CacheStats, SignatureCache
from repro.engine.merge import (
    bucket_in_order,
    check_span_coverage,
    extend_buckets,
    merge_shard_keys,
)
from repro.engine.packed import PackedTables
from repro.engine.shm import SHM_AVAILABLE, ShmArena, attach_segment, key_codec
from repro.engine.signatures import batched_pieces

__all__ = ["ShardedClassifier", "DEFAULT_STREAM_CHUNK", "TRANSPORT_NAMES"]

#: Shard transports: zero-copy shared memory vs. pickled buffers.
TRANSPORT_NAMES = ("shm", "pickle")

#: Tables consumed per :meth:`ShardedClassifier.classify_iter` chunk.
DEFAULT_STREAM_CHUNK = 8192

#: Shards handed out per worker, so a slow shard cannot stall the pool.
_OVERSUBSCRIBE = 4

#: Upper bound on rows per shard task (bounds per-task buffer size).
_MAX_SHARD_SIZE = 8192

_REG = obs.registry()
_DISPATCH_SECONDS = _REG.histogram(
    "repro_sharded_dispatch_seconds",
    "Per batch: building shard tasks and handing them to the pool "
    "(shm: includes the arena write).",
    labels=("transport",),
)
_GATHER_SECONDS = _REG.histogram(
    "repro_sharded_gather_seconds",
    "Per batch: collecting shard results and decoding them into keys "
    "(shm: span coverage check + bulk result-region decode).",
    labels=("transport",),
)
_SHARD_ROWS = _REG.counter(
    "repro_sharded_rows_total",
    "Rows dispatched through the sharded engine.",
    labels=("transport",),
)
_SHARD_TASKS = _REG.counter(
    "repro_sharded_shards_total",
    "Shard tasks dispatched to the pool.",
    labels=("transport",),
)
_ARENA_GROWS = _REG.counter(
    "repro_shm_arena_grow_total",
    "Pool arenas replaced by a larger one (growth events).",
)


def _classify_shard(task: tuple) -> list[tuple[int, tuple]]:
    """Worker body: packed buffer in, ``(index, canonical key)`` pairs out.

    Module-level (not a closure) so every ``multiprocessing`` start
    method can pickle it; also runs inline in the parent when
    ``workers=1`` or a batch produces a single shard.
    """
    base, n, parts, chunk_size, buffer = task
    words = np.frombuffer(buffer, dtype="<u8").reshape(
        -1, bitops.words_per_table(n)
    )
    pieces = batched_pieces(PackedTables(n, words), parts, chunk_size)
    return [
        (base + row, canonical_key(piece, parts))
        for row, piece in enumerate(pieces)
    ]


def _classify_shard_shm(task: tuple) -> tuple[int, int]:
    """Worker body for the shm transport: descriptor in, span out.

    The descriptor names the arena and the shard's row range; tables are
    read in place from the arena's input region and every canonical key
    is flattened (see :func:`repro.engine.shm.key_codec`) straight into
    the arena's result region.  Nothing batch-sized crosses the process
    boundary in either direction.
    """
    name, n, parts, chunk_size, base, count, total, key_width = task
    words_w = bitops.words_per_table(n)
    segment = attach_segment(name)
    inputs = np.ndarray((total, words_w), dtype="<u8", buffer=segment.buf)
    rows = inputs[base : base + count]
    rows.setflags(write=False)
    codec = key_codec(n, parts)
    if codec.width != key_width:
        raise ValueError(
            f"arena descriptor carries key width {key_width}, but the "
            f"(n={n}, parts) codec derives {codec.width} — layout mismatch"
        )
    results = np.ndarray(
        (total, key_width),
        dtype="<i8",
        buffer=segment.buf,
        offset=total * words_w * 8,
    )
    pieces = batched_pieces(
        PackedTables.wrap_readonly(n, rows), parts, chunk_size
    )
    for row, piece in enumerate(pieces):
        results[base + row] = codec.flatten(canonical_key(piece, parts))
    return base, count


class _LazyPool:
    """A worker pool (and its arena) created on first use, torn down on
    scope exit.

    Cache-hot or tiny workloads never pay the startup cost; streaming
    runs start workers once and reuse pool *and* arena for every chunk.
    The pool is a ``ProcessPoolExecutor`` so a worker killed mid-shard
    surfaces as ``BrokenProcessPool`` instead of deadlocking the merge.
    """

    def __init__(self, workers: int, start_method: str | None) -> None:
        self.workers = workers
        self.start_method = start_method
        self._pool = None
        self._arena: ShmArena | None = None

    def get(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=get_context(self.start_method),
            )
        return self._pool

    def arena(self, nbytes: int) -> ShmArena:
        """An arena of at least ``nbytes``, grown by replacement.

        Only ever called between batches (all spans collected before the
        next call), so replacing a too-small arena cannot race a worker
        writing into the old one; workers re-attach by name on the next
        descriptor.
        """
        if self._arena is None or self._arena.capacity < nbytes:
            if self._arena is not None:
                self._arena.dispose()
                _ARENA_GROWS.inc()
            self._arena = ShmArena.create(nbytes)
        return self._arena

    def shutdown(self) -> None:
        pool, self._pool = self._pool, None
        arena, self._arena = self._arena, None
        try:
            if pool is not None:
                pool.shutdown(wait=True)
        finally:
            if arena is not None:
                arena.dispose()


class ShardedClassifier:
    """NPN classifier fanning packed shards out to a process pool.

    Args:
        parts: which signature vectors make up the MSV (same selection as
            the other classifiers).
        workers: worker processes; ``None`` means all CPUs.  ``1`` runs
            every shard inline (no processes are forked).
        shard_size: rows per shard task; ``None`` splits each batch into
            about ``4 * workers`` shards (capped at 8192 rows).
        cache_size: LRU capacity of the parent-side signature cache;
            ``0`` disables caching.
        chunk_size: rows per vectorized chunk *inside* each worker (the
            ``BatchedClassifier`` knob, forwarded to ``batched_pieces``).
        start_method: ``multiprocessing`` start method (``"fork"``,
            ``"spawn"``, ``"forkserver"``); ``None`` uses the platform
            default.
        transport: how shards cross the process boundary — ``"shm"``
            (zero-copy shared-memory arena, the default where
            available), ``"pickle"`` (packed buffers through the
            pipe), or ``None`` to auto-select.  Irrelevant when
            ``workers=1`` (everything runs inline).

    Example:
        >>> from repro import TruthTable
        >>> from repro.engine import ShardedClassifier
        >>> clf = ShardedClassifier(workers=2)
        >>> maj = TruthTable.majority(3)
        >>> clf.classify([maj, ~maj, maj.flip_input(1)]).num_classes
        1
    """

    def __init__(
        self,
        parts: Iterable[str] = DEFAULT_PARTS,
        workers: int | None = None,
        shard_size: int | None = None,
        cache_size: int = 1 << 16,
        chunk_size: int | None = None,
        start_method: str | None = None,
        transport: str | None = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(
                f"sharded classification needs at least 1 worker, got {workers}"
            )
        if shard_size is not None and shard_size < 1:
            raise ValueError(f"shard size must be positive, got {shard_size}")
        if transport is None:
            transport = "shm" if SHM_AVAILABLE else "pickle"
        elif transport not in TRANSPORT_NAMES:
            raise ValueError(
                f"unknown transport {transport!r}; known: "
                f"{', '.join(TRANSPORT_NAMES)}"
            )
        elif transport == "shm" and not SHM_AVAILABLE:
            raise ValueError(
                "the shm transport needs multiprocessing.shared_memory, "
                "which this platform does not provide; use transport='pickle'"
            )
        self.transport = transport
        self.parts = normalize_parts(parts)
        self.workers = workers
        self.shard_size = shard_size
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.cache = SignatureCache(maxsize=cache_size)
        self._held_pool: _LazyPool | None = None

    # ------------------------------------------------------------------
    # Signatures
    # ------------------------------------------------------------------

    def signature(self, tt: TruthTable) -> MixedSignature:
        """The MSV of one function (cached)."""
        return self.signatures([tt])[0]

    def signatures(
        self, tables: Sequence[TruthTable] | PackedTables
    ) -> list[MixedSignature]:
        """MSVs of many functions, in input order (mixed arities allowed)."""
        with self._pool_scope() as pool:
            return self._signatures(tables, pool)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def classify(
        self, tables: Sequence[TruthTable] | PackedTables
    ) -> ClassificationResult:
        """Group functions into NPN classes by signature hashing.

        Buckets are byte-identical to ``BatchedClassifier.classify`` (and
        hence to ``FacePointClassifier``) on the same input.
        """
        if isinstance(tables, PackedTables):
            members = tables.to_tables()
        else:
            members = list(tables)
        with self._pool_scope() as pool:
            signatures = self._signatures(members, pool)
        return bucket_in_order(self.parts, signatures, members)

    def classify_iter(
        self,
        tables: Iterable[TruthTable],
        stream_chunk: int = DEFAULT_STREAM_CHUNK,
    ) -> ClassificationResult:
        """Classify a stream in bounded-memory chunks.

        Consumes ``tables`` lazily, ``stream_chunk`` functions at a time,
        so the working set is one chunk plus the in-flight shard buffers
        regardless of stream length; the worker pool is forked once and
        reused across chunks.  Produces the identical result ``classify``
        would on the materialised stream.  (The returned
        :class:`ClassificationResult` still holds every classified
        function; for class *counting* over streams larger than RAM, drop
        the result per chunk and track signatures only.)
        """
        if stream_chunk < 1:
            raise ValueError(f"stream chunk must be positive, got {stream_chunk}")
        result = ClassificationResult(self.parts)
        stream = iter(tables)
        with self.open_pool():
            while True:
                chunk = list(islice(stream, stream_chunk))
                if not chunk:
                    break
                extend_buckets(result, self.signatures(chunk), chunk)
        return result

    def count_classes(
        self, tables: Iterable[TruthTable] | PackedTables
    ) -> int:
        """Number of classes without retaining group membership.

        Accepts any iterable (streamed in bounded chunks) or a packed
        batch; only the distinct signatures are held in memory.
        """
        if isinstance(tables, PackedTables):
            return len(set(self.signatures(tables)))
        distinct: set[MixedSignature] = set()
        stream = iter(tables)
        with self.open_pool():
            while True:
                chunk = list(islice(stream, DEFAULT_STREAM_CHUNK))
                if not chunk:
                    break
                distinct.update(self.signatures(chunk))
        return len(distinct)

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the parent-side signature cache."""
        return self.cache.stats

    @contextmanager
    def open_pool(self):
        """Keep one worker pool alive across multiple calls.

        Every ``classify``/``signatures`` call inside the scope reuses a
        single (lazily forked) pool instead of opening its own — the knob
        for callers that issue many small calls, such as the Fig. 5
        incremental-timing series.  Reentrant: nested scopes reuse the
        outermost pool.  With ``workers=1`` this is a no-op.
        """
        if self.workers == 1 or self._held_pool is not None:
            yield self
            return
        holder = _LazyPool(self.workers, self.start_method)
        self._held_pool = holder
        try:
            yield self
        finally:
            self._held_pool = None
            holder.shutdown()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @contextmanager
    def _pool_scope(self):
        """Scope owning at most one lazily created pool (inline if workers=1).

        Defers to an enclosing :meth:`open_pool` scope when one is
        active, so held pools are reused rather than shadowed.
        """
        if self.workers == 1:
            yield None
            return
        if self._held_pool is not None:
            yield self._held_pool
            return
        holder = _LazyPool(self.workers, self.start_method)
        try:
            yield holder
        finally:
            holder.shutdown()

    def _signatures(
        self, tables: Sequence[TruthTable] | PackedTables, pool
    ) -> list[MixedSignature]:
        if isinstance(tables, PackedTables):
            return self._resolve_one_arity(tables.n, tables.to_ints(), pool)
        tables = list(tables)
        out: list[MixedSignature | None] = [None] * len(tables)
        by_arity: dict[int, list[int]] = {}
        for index, tt in enumerate(tables):
            by_arity.setdefault(tt.n, []).append(index)
        for n, indices in by_arity.items():
            sigs = self._resolve_one_arity(
                n, [tables[i].bits for i in indices], pool
            )
            for index, sig in zip(indices, sigs):
                out[index] = sig
        return out  # type: ignore[return-value]

    def _resolve_one_arity(
        self, n: int, bits: list[int], pool
    ) -> list[MixedSignature]:
        """Cache lookup and dedup in the parent; only misses are sharded.

        Mirrors ``BatchedClassifier._signatures_one_arity`` lookup-for-
        lookup so cache statistics are identical to the single-process
        driver's on the same input.
        """
        parts = self.parts
        out: list[MixedSignature | None] = [None] * len(bits)
        misses: list[int] = []  # first position of each distinct missing table
        missing: set[int] = set()
        for index, value in enumerate(bits):
            cached = self.cache.get((value, n, parts))
            if cached is not None:
                out[index] = cached
            elif value not in missing:
                missing.add(value)
                misses.append(index)
        if misses:
            keys = self._sharded_keys(n, [bits[i] for i in misses], pool)
            resolved: dict[int, MixedSignature] = {}
            for index, key in zip(misses, keys):
                sig = MixedSignature(n, parts, key)
                resolved[bits[index]] = sig
                self.cache.put((bits[index], n, parts), sig)
            for index, value in enumerate(bits):
                if out[index] is None:
                    out[index] = resolved[value]
        return out  # type: ignore[return-value]

    def _sharded_keys(self, n: int, bits: list[int], pool) -> list[tuple]:
        """Canonical keys of ``bits``, computed shard-parallel."""
        if pool is not None and self.transport == "shm":
            return self._sharded_keys_shm(n, bits, pool)
        with obs.timed(_DISPATCH_SECONDS, transport="pickle"):
            tasks = self._shard_tasks(n, bits)
            if pool is None or len(tasks) == 1:
                shard_results: Iterable = map(_classify_shard, tasks)
            else:
                shard_results = pool.get().map(_classify_shard, tasks)
        _SHARD_ROWS.inc(len(bits), transport="pickle")
        _SHARD_TASKS.inc(len(tasks), transport="pickle")
        with obs.timed(_GATHER_SECONDS, transport="pickle"):
            return merge_shard_keys(shard_results, len(bits))

    def _sharded_keys_shm(self, n: int, bits: list[int], pool) -> list[tuple]:
        """Shm-transport dispatch: one arena write, descriptor fan-out.

        The batch's tables are serialised into the pool arena's input
        region exactly once; workers cover ``(base, count)`` spans and
        write flattened keys into the result region.  After
        :func:`check_span_coverage` proves the spans tile the batch, the
        result region is bulk-decoded back into key tuples.
        """
        total = len(bits)
        words_w = bitops.words_per_table(n)
        codec = key_codec(n, self.parts)
        with obs.timed(_DISPATCH_SECONDS, transport="shm"):
            arena = pool.arena(total * (words_w + codec.width) * 8)
            payload = b"".join(
                value.to_bytes(words_w * 8, "little") for value in bits
            )
            arena.shm.buf[: len(payload)] = payload
            size = self._shard_rows(total)
            tasks = [
                (
                    arena.name,
                    n,
                    self.parts,
                    self.chunk_size,
                    base,
                    min(size, total - base),
                    total,
                    codec.width,
                )
                for base in range(0, total, size)
            ]
            if len(tasks) == 1:
                futures = None
            else:
                executor = pool.get()
                futures = [
                    executor.submit(_classify_shard_shm, t) for t in tasks
                ]
        _SHARD_ROWS.inc(total, transport="shm")
        _SHARD_TASKS.inc(len(tasks), transport="shm")
        with obs.timed(_GATHER_SECONDS, transport="shm"):
            if futures is None:
                spans = [_classify_shard_shm(tasks[0])]
            else:
                spans = [future.result() for future in as_completed(futures)]
            check_span_coverage(spans, total)
            flat = np.ndarray(
                (total, codec.width),
                dtype="<i8",
                buffer=arena.shm.buf,
                offset=total * words_w * 8,
            ).tolist()
            return [codec.unflatten(row) for row in flat]

    def _shard_rows(self, total: int) -> int:
        """Rows per shard task for a batch of ``total`` rows."""
        size = self.shard_size
        if size is None:
            per_worker = -(-total // (self.workers * _OVERSUBSCRIBE))
            size = max(1, min(_MAX_SHARD_SIZE, per_worker))
        return size

    def _shard_tasks(self, n: int, bits: list[int]) -> list[tuple]:
        """Split one arity's miss list into packed-buffer shard tasks."""
        size = self._shard_rows(len(bits))
        nbytes = bitops.words_per_table(n) * 8
        return [
            (
                base,
                n,
                self.parts,
                self.chunk_size,
                b"".join(
                    value.to_bytes(nbytes, "little")
                    for value in bits[base : base + size]
                ),
            )
            for base in range(0, len(bits), size)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedClassifier(parts={self.parts}, workers={self.workers}, "
            f"transport={self.transport!r}, "
            f"cache={len(self.cache)}/{self.cache.maxsize})"
        )
