"""Regenerate ``golden_classes.json`` — run only to bless an intended change.

    PYTHONPATH=src python tests/data/generate_golden_classes.py

The golden file pins class counts and order-sensitive bucket digests for
fixed seeds at n = 4..6.  ``tests/properties/test_golden_classes.py``
checks them against all three engines and the library match path; a
digest drift means buckets split, merged, or reordered — bless it here
only after confirming the change is intentional.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.classifier import FacePointClassifier
from repro.library import library_from_result
from repro.workloads.random_functions import (
    random_tables,
    seeded_equivalent_tables,
)

GOLDEN_PATH = Path(__file__).parent / "golden_classes.json"

#: The pinned workloads.  n=4 is a plain random set (rich bucket
#: structure at this arity); n=5/6 plant known NPN orbits so the library
#: match path has to recover non-trivial witnesses.
WORKLOADS = [
    {"n": 4, "kind": "random", "count": 1200, "seed": 44},
    {"n": 5, "kind": "orbits", "orbits": 300, "members": 3, "seed": 55},
    {"n": 6, "kind": "orbits", "orbits": 200, "members": 3, "seed": 66},
]


def workload_tables(spec: dict):
    if spec["kind"] == "random":
        return random_tables(spec["n"], spec["count"], spec["seed"])
    tables, _ = seeded_equivalent_tables(
        spec["n"], spec["orbits"], spec["members"], spec["seed"]
    )
    return tables


def main() -> None:
    entries = []
    for spec in WORKLOADS:
        tables = workload_tables(spec)
        result = FacePointClassifier().classify(tables)
        library = library_from_result(result)
        entries.append(
            spec
            | {
                "num_functions": result.num_functions,
                "num_classes": result.num_classes,
                "buckets_digest": result.buckets_digest(),
                # Library identity pins: class ids are a pure function of
                # the buckets, representatives additionally pin the
                # canonical-minimum (n<=4) / election (n>=5) rules.
                "classes": {
                    e.class_id: e.representative.to_hex()
                    for e in library.entries()
                },
            }
        )
        print(
            f"n={spec['n']}: {result.num_functions} functions, "
            f"{result.num_classes} classes, digest {result.buckets_digest()}"
        )
    GOLDEN_PATH.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
