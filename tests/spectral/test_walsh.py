"""Tests for the Walsh-Hadamard kernel and XOR pair counting."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.truth_table import TruthTable
from repro.spectral import walsh


def naive_fwht(values):
    size = len(values)
    n = size.bit_length() - 1
    out = []
    for z in range(size):
        total = 0
        for x in range(size):
            sign = -1 if bin(x & z).count("1") % 2 else 1
            total += sign * values[x]
        out.append(total)
    return out


class TestFWHT:
    @pytest.mark.parametrize("n", range(0, 6))
    def test_matches_naive(self, n):
        rng = random.Random(n)
        values = np.array([rng.randrange(-5, 6) for _ in range(1 << n)])
        assert walsh.fwht(values).tolist() == naive_fwht(values.tolist())

    def test_involution_up_to_scale(self):
        rng = random.Random(9)
        for n in range(1, 8):
            values = np.array([rng.randrange(-9, 10) for _ in range(1 << n)])
            twice = walsh.fwht(walsh.fwht(values))
            assert (twice == (1 << n) * values).all()

    def test_does_not_mutate_input(self):
        values = np.array([1, 2, 3, 4])
        walsh.fwht(values)
        assert values.tolist() == [1, 2, 3, 4]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            walsh.fwht(np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            walsh.fwht(np.array([]))


class TestWalshSpectrum:
    def test_constant_spectrum(self):
        spectrum = walsh.walsh_spectrum(0, 3)
        assert spectrum[0] == 8
        assert (spectrum[1:] == 0).all()

    def test_projection_spectrum(self):
        tt = TruthTable.projection(3, 1)
        spectrum = walsh.walsh_spectrum(tt.bits, 3)
        # (-1)^{x_1} correlates perfectly with z = index-bit-1 only.
        assert spectrum[0b010] == 8
        assert abs(spectrum).sum() == 8

    def test_dc_coefficient(self):
        rng = random.Random(10)
        for n in range(1, 7):
            tt = TruthTable.random(n, rng)
            spectrum = walsh.walsh_spectrum(tt.bits, n)
            assert spectrum[0] == (1 << n) - 2 * tt.count_ones()

    def test_parseval(self):
        rng = random.Random(11)
        for n in range(1, 7):
            tt = TruthTable.random(n, rng)
            spectrum = walsh.walsh_spectrum(tt.bits, n).astype(object)
            assert int(np.sum(spectrum * spectrum)) == 1 << (2 * n)

    def test_bent_function_flat_spectrum(self):
        # x0x1 ^ x2x3 is bent: all Walsh coefficients have magnitude 2^{n/2}.
        tt = TruthTable.from_function(4, lambda a, b, c, d: (a & b) ^ (c & d))
        spectrum = walsh.walsh_spectrum(tt.bits, 4)
        assert set(np.abs(spectrum).tolist()) == {4}


class TestPairCounting:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_fwht_matches_direct(self, n):
        rng = random.Random(n * 13)
        for _ in range(10):
            indicator = np.array(
                [rng.randrange(2) for _ in range(1 << n)], dtype=np.int64
            )
            via_fwht = walsh.xor_autocorrelation(indicator)
            indices = np.flatnonzero(indicator)
            direct = walsh.pair_distance_histogram_direct(indices, n)
            weights = np.array([bin(z).count("1") for z in range(1 << n)])
            histogram = np.zeros(n + 1, dtype=np.int64)
            np.add.at(histogram, weights, via_fwht)
            histogram[0] = 0
            assert (histogram // 2 == direct).all()

    @pytest.mark.parametrize("n", range(1, 7))
    def test_public_api_consistent(self, n):
        """The adaptive strategy equals the direct count for any density."""
        rng = random.Random(n * 29)
        for density in (0.1, 0.5, 0.9):
            indicator = np.array(
                [1 if rng.random() < density else 0 for _ in range(1 << n)],
                dtype=np.int64,
            )
            adaptive = walsh.pair_distance_histogram(indicator, n)
            direct = walsh.pair_distance_histogram_direct(
                np.flatnonzero(indicator), n
            )
            assert (adaptive == direct).all()

    def test_empty_and_singleton(self):
        zeros = np.zeros(8, dtype=np.int64)
        assert walsh.pair_distance_histogram(zeros, 3).sum() == 0
        one = zeros.copy()
        one[5] = 1
        assert walsh.pair_distance_histogram(one, 3).sum() == 0

    def test_full_cube(self):
        indicator = np.ones(8, dtype=np.int64)
        histogram = walsh.pair_distance_histogram(indicator, 3)
        # All pairs of Q3 vertices: C(8,2)=28, split 12/12/4 by distance.
        assert histogram.tolist() == [0, 12, 12, 4]

    def test_autocorrelation_diagonal(self):
        indicator = np.array([1, 0, 1, 1, 0, 0, 0, 1], dtype=np.int64)
        correlation = walsh.xor_autocorrelation(indicator)
        assert correlation[0] == indicator.sum()
        assert correlation.sum() == indicator.sum() ** 2

    def test_length_validation(self):
        with pytest.raises(ValueError):
            walsh.pair_distance_histogram(np.ones(6, dtype=np.int64), 3)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=7), st.randoms(use_true_random=False))
def test_property_pair_total(n, rng):
    """Sum over distances equals C(m, 2) for a size-m set."""
    indicator = np.array([rng.randrange(2) for _ in range(1 << n)], dtype=np.int64)
    m = int(indicator.sum())
    histogram = walsh.pair_distance_histogram(indicator, n)
    assert int(histogram.sum()) == m * (m - 1) // 2
