"""Tests for spectral (Walsh) signatures."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable
from repro.spectral.signatures import (
    spectral_moments,
    spectral_signature,
    spectral_weight_signature,
)


class TestSpectralSignature:
    def test_known_values(self):
        maj = TruthTable.majority(3)
        assert spectral_signature(maj) == (0, 0, 0, 0, 4, 4, 4, 4)
        xor3 = TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c)
        # XOR is a single Walsh character: one coefficient of magnitude 8.
        assert spectral_signature(xor3) == (0,) * 7 + (8,)

    def test_npn_invariance(self):
        rng = random.Random(0)
        for n in range(1, 6):
            for _ in range(10):
                tt = TruthTable.random(n, rng)
                image = tt.apply(random_transform(n, rng))
                assert spectral_signature(image) == spectral_signature(tt)

    def test_weight_signature_refines(self):
        rng = random.Random(1)
        for _ in range(10):
            tt = TruthTable.random(4, rng)
            flat = tuple(
                sorted(c for group in spectral_weight_signature(tt) for c in group)
            )
            assert flat == spectral_signature(tt)

    def test_weight_signature_npn_invariance(self):
        rng = random.Random(2)
        for _ in range(15):
            tt = TruthTable.random(4, rng)
            image = tt.apply(random_transform(4, rng))
            assert spectral_weight_signature(image) == spectral_weight_signature(tt)

    def test_weight_signature_discriminates_where_flat_cannot(self):
        """Two functions with equal sorted |spectrum| but different
        weight-class layout exist; the weight signature splits them."""
        found = None
        rng = random.Random(3)
        seen = {}
        for _ in range(4000):
            tt = TruthTable.random(4, rng)
            key = spectral_signature(tt)
            if key in seen and spectral_weight_signature(seen[key]) != (
                spectral_weight_signature(tt)
            ):
                found = (seen[key], tt)
                break
            seen.setdefault(key, tt)
        assert found is not None

    def test_moments(self):
        rng = random.Random(4)
        for n in range(1, 6):
            tt = TruthTable.random(n, rng)
            order2, order4 = spectral_moments(tt, orders=(2, 4))
            assert order2 == 1 << (2 * n)  # Parseval self-check
            assert order4 >= 0


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.randoms(use_true_random=False))
def test_property_spectral_never_splits(n, rng):
    tt = TruthTable(n, rng.getrandbits(1 << n))
    image = tt.apply(random_transform(n, rng))
    assert spectral_signature(tt) == spectral_signature(image)
