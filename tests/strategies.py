"""Hypothesis strategies for truth tables and NPN transforms.

One strategy module, parametric over the arity, reused by every property
suite — the same write-once-template-over-n idiom cairo-integer-types
uses for BIT_LENGTH.  Each strategy takes either a fixed ``n`` or an
``(min_n, max_n)`` range to draw the arity itself, so a suite written as

    @given(data=st.data())
    def test_...(data):
        tt = data.draw(truth_tables())

covers n = 3..6 with shrinking: a failing example minimises first the
arity, then the table bits, then the transform — the smallest
counterexample instead of whichever seeded draw happened to trip.

Strategies:

* :func:`arities` — variable counts in a range;
* :func:`truth_tables` — :class:`TruthTable` values, uniform over the
  ``2^(2^n)`` functions of the drawn arity;
* :func:`truth_table_batches` — same-arity lists (packed-engine input);
* :func:`npn_transforms` — :class:`NPNTransform` group elements;
* :func:`tables_with_transforms` — ``(table, [transforms...])`` tuples
  sharing one arity, the shape the group-law and witness suites consume;
* :func:`npn_orbits` — ``(seed table, [NPN images...])`` built through
  truth-table primitives only (never the transform algebra), the
  never-split invariant's input.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.transforms import NPNTransform
from repro.core.truth_table import TruthTable

__all__ = [
    "MIN_FUZZ_VARS",
    "MAX_FUZZ_VARS",
    "arities",
    "truth_tables",
    "truth_table_batches",
    "npn_transforms",
    "tables_with_transforms",
    "npn_orbits",
]

#: Default arity range of the fuzz suites: n=3 is the smallest arity
#: with a non-trivial permutation group *and* input-phase interplay,
#: n=6 the largest single-uint64 table the gather kernels cover.
MIN_FUZZ_VARS = 3
MAX_FUZZ_VARS = 6


def arities(min_n: int = MIN_FUZZ_VARS, max_n: int = MAX_FUZZ_VARS):
    """Variable counts drawn from ``[min_n, max_n]`` (shrinks downward)."""
    return st.integers(min_value=min_n, max_value=max_n)


def _resolve_arity(draw, n, min_n, max_n) -> int:
    return draw(arities(min_n, max_n)) if n is None else n


@st.composite
def truth_tables(
    draw,
    n: int | None = None,
    min_n: int = MIN_FUZZ_VARS,
    max_n: int = MAX_FUZZ_VARS,
) -> TruthTable:
    """A uniform ``n``-variable function (arity drawn when ``n`` is None)."""
    arity = _resolve_arity(draw, n, min_n, max_n)
    bits = draw(st.integers(min_value=0, max_value=(1 << (1 << arity)) - 1))
    return TruthTable(arity, bits)


@st.composite
def truth_table_batches(
    draw,
    n: int | None = None,
    min_n: int = MIN_FUZZ_VARS,
    max_n: int = MAX_FUZZ_VARS,
    min_size: int = 0,
    max_size: int = 16,
) -> list[TruthTable]:
    """A same-arity list of tables — the packed engines' batch shape."""
    arity = _resolve_arity(draw, n, min_n, max_n)
    return draw(
        st.lists(truth_tables(n=arity), min_size=min_size, max_size=max_size)
    )


@st.composite
def npn_transforms(
    draw,
    n: int | None = None,
    min_n: int = MIN_FUZZ_VARS,
    max_n: int = MAX_FUZZ_VARS,
) -> NPNTransform:
    """One element of the NPN group on the (possibly drawn) arity."""
    arity = _resolve_arity(draw, n, min_n, max_n)
    perm = tuple(draw(st.permutations(range(arity))))
    input_phase = draw(st.integers(min_value=0, max_value=(1 << arity) - 1))
    output_phase = draw(st.integers(min_value=0, max_value=1))
    return NPNTransform(perm, input_phase, output_phase)


@st.composite
def tables_with_transforms(
    draw,
    transforms: int = 1,
    n: int | None = None,
    min_n: int = MIN_FUZZ_VARS,
    max_n: int = MAX_FUZZ_VARS,
) -> tuple[TruthTable, list[NPNTransform]]:
    """``(table, [transform, ...])`` all sharing one drawn arity."""
    arity = _resolve_arity(draw, n, min_n, max_n)
    table = draw(truth_tables(n=arity))
    return table, [draw(npn_transforms(n=arity)) for _ in range(transforms)]


@st.composite
def npn_orbits(
    draw,
    n: int | None = None,
    min_n: int = MIN_FUZZ_VARS,
    max_n: int = MAX_FUZZ_VARS,
    min_images: int = 1,
    max_images: int = 5,
) -> tuple[TruthTable, list[TruthTable]]:
    """A seed function plus NPN images built from table primitives only.

    Images apply input negations, an input permutation, and optionally
    the output complement *directly* through :class:`TruthTable`
    methods — deliberately bypassing :class:`NPNTransform` — so a bug in
    the transform algebra cannot mask a signature bug, or vice versa.
    """
    arity = _resolve_arity(draw, n, min_n, max_n)
    seed_function = draw(truth_tables(n=arity))
    images = []
    for _ in range(draw(st.integers(min_images, max_images))):
        image = seed_function.flip_inputs(
            draw(st.integers(0, (1 << arity) - 1))
        )
        image = image.permute(tuple(draw(st.permutations(range(arity)))))
        if draw(st.booleans()):
            image = ~image
        images.append(image)
    return seed_function, images
