"""WorkerChannel transport semantics against in-process asyncio peers.

The router's retry loop leans on exactly three channel behaviours —
typed timeout, typed death-of-everything-in-flight, transparent redial —
so each gets a direct test against a scripted asyncio server rather than
a real worker.
"""

import asyncio
import json

import pytest

from repro.fabric.channel import ChannelClosed, DispatchTimeout, WorkerChannel


class ScriptedPeer:
    """An asyncio server whose per-line behaviour a test chooses."""

    def __init__(self, answer):
        self.answer = answer  # coroutine(reply_dict) -> bytes | None
        self.server = None
        self.connections = 0

    async def __aenter__(self):
        self.server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        self.port = self.server.sockets[0].getsockname()[1]
        self.address = f"127.0.0.1:{self.port}"
        return self

    async def __aexit__(self, *exc_info):
        self.server.close()
        await self.server.wait_closed()

    async def _handle(self, reader, writer):
        self.connections += 1
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                out = await self.answer(json.loads(line), writer)
                if out is not None:
                    writer.write(out)
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()


async def echo_ok(request, _writer):
    reply = {"ok": True, "id": request["id"], "result": {"echo": request}}
    return json.dumps(reply).encode() + b"\n"


class TestRoundTrips:
    def test_pipelined_requests_reassociate_by_id(self):
        async def scenario():
            async with ScriptedPeer(echo_ok) as peer:
                channel = WorkerChannel("w0", peer.address)
                replies = await asyncio.gather(
                    *(
                        channel.request({"op": "ping", "seq": i}, 5.0)
                        for i in range(16)
                    )
                )
                await channel.close()
                return peer.connections, replies

        connections, replies = asyncio.run(scenario())
        assert connections == 1  # one persistent connection, not 16 dials
        for i, reply in enumerate(replies):
            assert reply["ok"]
            assert reply["result"]["echo"]["seq"] == i

    def test_junk_lines_are_skipped_not_fatal(self):
        async def junk_then_ok(request, writer):
            writer.write(b"not json at all\n[1, 2, 3]\n")
            return await echo_ok(request, writer)

        async def scenario():
            async with ScriptedPeer(junk_then_ok) as peer:
                channel = WorkerChannel("w0", peer.address)
                reply = await channel.request({"op": "ping"}, 5.0)
                await channel.close()
                return reply

        assert asyncio.run(scenario())["ok"]


class TestFailureSemantics:
    def test_unanswered_request_times_out_typed(self):
        async def black_hole(_request, _writer):
            return None  # accept, parse, never answer

        async def scenario():
            async with ScriptedPeer(black_hole) as peer:
                channel = WorkerChannel("w0", peer.address)
                with pytest.raises(DispatchTimeout):
                    await channel.request({"op": "ping"}, 0.2)
                assert channel.inflight == 0  # abandoned, not leaked
                await channel.close()

        asyncio.run(scenario())

    def test_peer_death_fails_all_inflight(self):
        async def die_on_second(request, writer):
            if request.get("seq") == 1:
                writer.close()  # EOF for everyone
                return None
            return None  # park the first request forever

        async def scenario():
            async with ScriptedPeer(die_on_second) as peer:
                channel = WorkerChannel("w0", peer.address)
                first = asyncio.ensure_future(
                    channel.request({"op": "ping", "seq": 0}, 5.0)
                )
                await asyncio.sleep(0.05)  # first is parked in-flight
                with pytest.raises(ChannelClosed):
                    await channel.request({"op": "ping", "seq": 1}, 5.0)
                with pytest.raises(ChannelClosed):
                    await first
                await channel.close()

        asyncio.run(scenario())

    def test_redials_after_teardown(self):
        async def scenario():
            async with ScriptedPeer(echo_ok) as peer:
                channel = WorkerChannel("w0", peer.address)
                assert (await channel.request({"op": "ping"}, 5.0))["ok"]
                # Simulate transport death without closing the channel.
                await channel._teardown(ChannelClosed("test-induced"))
                assert not channel.connected
                assert (await channel.request({"op": "ping"}, 5.0))["ok"]
                await channel.close()
                return peer.connections

        assert asyncio.run(scenario()) == 2

    def test_connect_refused_is_channel_closed(self):
        async def scenario():
            import socket

            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
            probe.close()
            channel = WorkerChannel("w0", f"127.0.0.1:{port}")
            with pytest.raises(ChannelClosed):
                await channel.request({"op": "ping"}, 1.0)

        asyncio.run(scenario())

    def test_closed_channel_refuses_new_requests(self):
        async def scenario():
            channel = WorkerChannel("w0", "127.0.0.1:1")
            await channel.close()
            with pytest.raises(ChannelClosed):
                await channel.request({"op": "ping"}, 1.0)

        asyncio.run(scenario())
