"""Shared fixtures of the fabric tests.

The same exhaustive n<=3 library the service tests use — small enough
that every routed answer can be re-verified against the offline match
path, which is what makes the chaos soak a correctness test and not
just a liveness test.
"""

import pytest

from repro.library import build_exhaustive_library


@pytest.fixture(scope="session")
def tiny_library():
    library = build_exhaustive_library(2).merged_with(
        build_exhaustive_library(3)
    )
    assert library.num_classes == 4 + 14
    return library


@pytest.fixture(scope="session")
def library_dir(tiny_library, tmp_path_factory):
    """The tiny library saved to disk, for subprocess fleets."""
    path = tmp_path_factory.mktemp("fabric") / "lib"
    tiny_library.save(path)
    return path
