"""RetryPolicy schedule semantics + the blocking retry_call helper."""

import random

import pytest

from repro.fabric.backoff import RetryPolicy, retry_call


class TestRetryPolicy:
    def test_deterministic_schedule_without_jitter(self):
        policy = RetryPolicy(
            attempts=5, base_ms=10.0, cap_ms=45.0, jitter=False
        )
        assert list(policy.delays()) == [0.010, 0.020, 0.040, 0.045]

    def test_jitter_stays_within_ceiling(self):
        policy = RetryPolicy(attempts=8, base_ms=10.0, cap_ms=80.0)
        rng = random.Random(7)
        for retry_index in range(7):
            ceiling = min(80.0, 10.0 * 2**retry_index)
            for _ in range(50):
                delay = policy.delay_ms(retry_index, rng)
                assert 0.0 <= delay <= ceiling

    def test_single_attempt_sleeps_never(self):
        assert list(RetryPolicy(attempts=1).delays()) == []

    def test_worst_case_bounds_sleep_plus_wait(self):
        policy = RetryPolicy(
            attempts=3, base_ms=100.0, cap_ms=150.0, timeout_ms=1000.0
        )
        # sleeps: 100 + 150 ms; waits: 3 * 1000 ms
        assert policy.worst_case_s() == pytest.approx(0.25 + 3.0)

    def test_timeout_seconds_conversion(self):
        assert RetryPolicy(timeout_ms=2500.0).timeout_s == 2.5
        assert RetryPolicy(timeout_ms=None).timeout_s is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_ms": -1.0},
            {"cap_ms": -1.0},
            {"timeout_ms": 0.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestRetryCall:
    def test_returns_first_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ConnectionError("not yet")
            return "ok"

        sleeps = []
        result = retry_call(
            flaky,
            RetryPolicy(attempts=4, base_ms=5.0, jitter=False),
            (ConnectionError,),
            sleep=sleeps.append,
        )
        assert result == "ok"
        assert len(calls) == 3
        assert sleeps == [0.005, 0.010]

    def test_reraises_final_failure_unchanged(self):
        def always_down():
            raise ConnectionRefusedError("still down")

        with pytest.raises(ConnectionRefusedError, match="still down"):
            retry_call(
                always_down,
                RetryPolicy(attempts=3, base_ms=0.0, jitter=False),
                (ConnectionError,),
                sleep=lambda _s: None,
            )

    def test_unlisted_exceptions_propagate_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("logic bug, not transport")

        with pytest.raises(ValueError):
            retry_call(
                broken,
                RetryPolicy(attempts=5, base_ms=0.0, jitter=False),
                (ConnectionError,),
                sleep=lambda _s: None,
            )
        assert len(calls) == 1
