"""Chaos soak: a real subprocess fleet, hurt mid-stream.

These are the end-to-end robustness tests the fabric exists for.  A
router and three workers run as real ``python -m repro`` subprocesses
(the exact entry points operators use); a client streams queries while
:class:`ChaosFleet` injects faults.  The contract under every fault:

* every query **terminates** — a verified witness or a typed
  :class:`ServiceError`, never a hang (the client socket timeout is the
  hang detector: it failing the test means the router broke the
  never-hang promise);
* every answered witness verifies and names the same class the offline
  library does — failover must be *correct*, not merely live.
"""

import json
import time

import pytest

from repro.core.truth_table import TruthTable
from repro.fabric.chaos import ChaosFleet, wait_until
from repro.service import ServiceClient, ServiceError
from repro.service.client import http_get

pytestmark = [pytest.mark.slow, pytest.mark.integration]

RING = ("w0", "w1", "w2")

#: Aggressive failure-detection knobs so the soak converges in seconds.
ROUTER_KNOBS = {
    "heartbeat_interval_s": 0.2,
    "timeout_ms": 1000,
    "base_ms": 10,
    "cap_ms": 80,
}


@pytest.fixture()
def fleet(library_dir):
    with ChaosFleet(library_dir, RING) as fleet:
        fleet.start(**ROUTER_KNOBS)
        yield fleet


def stream_queries(fleet, values, fault_at=None, fault=None):
    """Drive ``values`` through the router, injecting ``fault()`` once.

    Returns ``(answered, failed)``: verified results by value, and the
    typed error codes of queries the router refused.  Anything else —
    a hang (socket timeout), an unverified witness, an untyped error —
    fails the test immediately.
    """
    answered: dict[int, dict] = {}
    failed: dict[int, str] = {}
    with ServiceClient(port=fleet.router.port, timeout=15.0) as client:
        for position, value in enumerate(values):
            if fault_at is not None and position == fault_at:
                fault()
            table = TruthTable(3, value)
            try:
                result = client.match(table)
            except ServiceError as exc:
                failed[value] = exc.error_type
                continue
            assert result["hit"], f"library is exhaustive; 0x{value:02x} must hit"
            assert ServiceClient.verify(result, table)
            answered[value] = result
    return answered, failed


def assert_matches_offline(answered, tiny_library):
    for value, result in answered.items():
        offline = tiny_library.match(TruthTable(3, value))
        assert result["class_id"] == offline.class_id


class TestKillSoak:
    def test_sigkill_one_worker_mid_stream(self, fleet, tiny_library):
        # Two full passes over every n=3 function, one worker SIGKILLed
        # a third of the way in.  Replication (R=2) means every shard
        # keeps a live holder, so the soak demands MORE than liveness:
        # every single query must come back verified.
        values = list(range(256)) * 2
        victim = fleet.workers["w1"]
        answered, failed = stream_queries(
            fleet,
            values,
            fault_at=len(values) // 3,
            fault=victim.kill,
        )
        assert not failed, f"replica held every shard, yet: {failed}"
        assert len(answered) == 256
        assert_matches_offline(answered, tiny_library)
        assert not victim.alive
        # The router must have noticed: the victim leaves the alive set.
        status, body = http_get(fleet.router.address, "/v1/stats")
        assert status == 200
        stats = json.loads(body)
        assert stats["registry"]["workers"]["w1"]["state"] != "alive"
        # Failing over took retries (dead channel) — they were counted.
        assert stats["fabric"]["retries"] >= 1

    def test_stalled_worker_times_out_then_recovers(self, fleet, tiny_library):
        # SIGSTOP is the gray failure: the socket accepts, nothing
        # answers.  Timeouts + replica retry must carry every query.
        victim = fleet.workers["w2"]
        values = list(range(0, 256, 3))
        answered, failed = stream_queries(
            fleet,
            values,
            fault_at=len(values) // 4,
            fault=victim.stall,
        )
        assert not failed
        assert_matches_offline(answered, tiny_library)
        victim.resume()
        assert victim.alive
        # After SIGCONT, heartbeats resume and the worker rejoins.
        assert wait_until(
            lambda: json.loads(
                http_get(fleet.router.address, "/v1/stats")[1]
            )["registry"]["workers"]["w2"]["state"] == "alive",
            timeout_s=15.0,
        ), "resumed worker never rejoined the alive set"


class TestDrainFailover:
    def test_sigterm_drains_politely_and_queries_keep_answering(
        self, fleet, tiny_library
    ):
        # SIGTERM is the polite death: drain notice first (router stops
        # routing new work there), backlog answered, clean exit 0.
        victim = fleet.workers["w0"]
        values = list(range(256))
        answered, failed = stream_queries(
            fleet,
            values,
            fault_at=64,
            fault=victim.term,
        )
        assert not failed
        assert len(answered) == 256
        assert_matches_offline(answered, tiny_library)
        # The drain must end in a clean exit, not a kill.
        assert victim.wait(timeout_s=30.0) == 0
        status, body = http_get(fleet.router.address, "/v1/stats")
        assert status == 200
        state = json.loads(body)["registry"]["workers"]["w0"]["state"]
        assert state in ("draining", "dead")


class TestFleetHygiene:
    def test_stop_all_leaves_no_processes(self, library_dir):
        fleet = ChaosFleet(library_dir, RING)
        fleet.start(**ROUTER_KNOBS)
        daemons = [fleet.router, *fleet.workers.values()]
        # Hurt one of everything first: teardown must cope with a
        # stalled worker (SIGCONT before SIGTERM) and a dead one.
        fleet.workers["w1"].stall()
        fleet.workers["w2"].kill()
        t0 = time.monotonic()
        fleet.stop_all()
        assert time.monotonic() - t0 < 30.0
        for daemon in daemons:
            assert not daemon.alive
        assert fleet.router is None and not fleet.workers
