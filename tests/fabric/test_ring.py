"""Consistent-hash ring: determinism, replication, shard partitioning."""

import random

import pytest

from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable
from repro.fabric.ring import (
    DEFAULT_REPLICAS,
    HashRing,
    parse_ring_spec,
    shard_key_of,
)


class TestRingSpec:
    def test_parse_ring_spec(self):
        assert parse_ring_spec("w0,w1,w2") == ("w0", "w1", "w2")
        assert parse_ring_spec(" a , b ") == ("a", "b")

    @pytest.mark.parametrize("bad", ["", ",,", "w0,w0", "w 0,w1"])
    def test_parse_ring_spec_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_ring_spec(bad)

    def test_spec_roundtrip(self):
        ring = HashRing(("w0", "w1", "w2"), vnodes=16, replicas=2)
        clone = HashRing.from_spec(ring.spec())
        for i in range(200):
            assert ring.owners(f"key-{i}") == clone.owners(f"key-{i}")

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ValueError):
            HashRing.from_spec({"nodes": ["w0"]})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nodes": ()},
            {"nodes": ("w0", "w0")},
            {"nodes": ("w0",), "vnodes": 0},
            {"nodes": ("w0",), "replicas": 0},
        ],
    )
    def test_constructor_rejects(self, kwargs):
        with pytest.raises(ValueError):
            HashRing(**kwargs)


class TestOwnership:
    def test_owners_are_distinct_and_replica_many(self):
        ring = HashRing(("w0", "w1", "w2", "w3"), replicas=3)
        for i in range(300):
            owners = ring.owners(f"key-{i}")
            assert len(owners) == 3
            assert len(set(owners)) == 3

    def test_replicas_clamped_to_membership(self):
        ring = HashRing(("w0", "w1"), replicas=5)
        assert ring.replicas == 2
        assert set(ring.owners("anything")) == {"w0", "w1"}

    def test_determinism_across_instances(self):
        a = HashRing(("w0", "w1", "w2"))
        b = HashRing(("w0", "w1", "w2"))
        assert [a.owner(f"k{i}") for i in range(100)] == [
            b.owner(f"k{i}") for i in range(100)
        ]

    def test_membership_change_moves_few_keys(self):
        # The property consistent hashing exists for: adding a node
        # remaps only the keys the new node takes over.
        before = HashRing(("w0", "w1", "w2"))
        after = HashRing(("w0", "w1", "w2", "w3"))
        keys = [f"key-{i}" for i in range(1000)]
        moved = sum(
            1
            for key in keys
            if before.owner(key) != after.owner(key)
            and after.owner(key) != "w3"
        )
        # Keys not claimed by w3 must keep their owner.
        assert moved == 0

    def test_balance_within_reason(self):
        ring = HashRing(("w0", "w1", "w2"))
        counts = {"w0": 0, "w1": 0, "w2": 0}
        for i in range(3000):
            counts[ring.owner(f"key-{i}")] += 1
        for count in counts.values():
            assert 500 < count < 1700  # no node starved or dominant


class TestShardKeys:
    def test_npn_equivalent_queries_share_a_shard(self, tiny_library):
        # The MSV is NPN-invariant: any transform of a function must
        # hash to the same shard its class representative lives on.
        rng = random.Random(2023)
        for value in (0xE8, 0x96, 0x1B, 0x80):
            table = TruthTable(3, value)
            key = shard_key_of(table, tiny_library.parts)
            for _ in range(10):
                transformed = table.apply(random_transform(3, rng))
                assert (
                    shard_key_of(transformed, tiny_library.parts) == key
                )

    def test_shard_filter_partitions_the_library(self, tiny_library):
        ring = HashRing(("w0", "w1", "w2"))
        shards = {
            node: tiny_library.subset(
                ring.shard_filter(node, tiny_library.parts)
            )
            for node in ring.nodes
        }
        # Every class is held by exactly `replicas` workers...
        holders = {class_id: 0 for class_id in tiny_library.classes}
        for shard in shards.values():
            for class_id in shard.classes:
                holders[class_id] += 1
        assert set(holders.values()) == {DEFAULT_REPLICAS}
        # ...and the shards' union is the whole library.
        union = set().union(*(s.classes for s in shards.values()))
        assert union == set(tiny_library.classes)

    def test_shard_filter_rejects_foreign_node(self):
        ring = HashRing(("w0", "w1"))
        with pytest.raises(ValueError):
            ring.shard_filter("intruder")

    def test_sharded_worker_answers_its_own_queries(self, tiny_library):
        # A query routed by shard key must hit a worker whose subset
        # still matches it — the property the router relies on.
        ring = HashRing(("w0", "w1", "w2"))
        shards = {
            node: tiny_library.subset(
                ring.shard_filter(node, tiny_library.parts)
            )
            for node in ring.nodes
        }
        rng = random.Random(7)
        for _ in range(50):
            table = TruthTable(3, rng.randrange(1 << 8))
            key = shard_key_of(table, tiny_library.parts)
            for owner in ring.owners(key):
                hit = shards[owner].match(table)
                assert hit is not None
                assert hit.verify(table)


class TestSubset:
    def test_subset_preserves_scheme_and_parts(self, tiny_library):
        subset = tiny_library.subset(lambda entry: entry.n == 2)
        assert subset.parts == tiny_library.parts
        assert subset.id_scheme == tiny_library.id_scheme
        assert subset.num_classes == 4
        assert all(entry.n == 2 for entry in subset.classes.values())

    def test_empty_subset_serves_misses(self, tiny_library):
        empty = tiny_library.subset(lambda entry: False)
        assert empty.num_classes == 0
        assert empty.match(TruthTable(3, 0xE8)) is None
