"""Worker trust-state machine, driven by an injected clock."""

import pytest

from repro.fabric.registry import (
    ALIVE,
    DEAD,
    DRAINING,
    SUSPECT,
    WorkerRegistry,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def registry(clock):
    return WorkerRegistry(
        heartbeat_interval_s=1.0,
        suspect_misses=3,
        evict_misses=8,
        clock=clock,
    )


class TestLadder:
    def test_fresh_worker_is_alive(self, registry):
        registry.register("w0", "127.0.0.1:9000")
        assert registry.state_of("w0") == ALIVE

    def test_missed_beats_suspect_then_evict(self, registry, clock):
        registry.register("w0", "127.0.0.1:9000")
        clock.advance(2.9)
        assert registry.sweep() == []
        clock.advance(0.2)  # 3.1 intervals missed
        assert registry.sweep() == [("w0", SUSPECT)]
        clock.advance(4.0)  # 7.1 missed — still suspect
        assert registry.sweep() == []
        assert registry.state_of("w0") == SUSPECT
        clock.advance(1.0)  # 8.1 missed — evicted
        assert registry.sweep() == [("w0", DEAD)]

    def test_heartbeat_revives_suspect(self, registry, clock):
        registry.register("w0", "127.0.0.1:9000")
        clock.advance(3.5)
        registry.sweep()
        assert registry.state_of("w0") == SUSPECT
        assert registry.heartbeat("w0") is True
        assert registry.state_of("w0") == ALIVE

    def test_heartbeat_does_not_revive_dead(self, registry, clock):
        registry.register("w0", "127.0.0.1:9000")
        clock.advance(9.0)
        registry.sweep()
        assert registry.state_of("w0") == DEAD
        assert registry.heartbeat("w0") is False
        assert registry.state_of("w0") == DEAD

    def test_unknown_heartbeat_asks_for_reregistration(self, registry):
        assert registry.heartbeat("ghost") is False

    def test_reregistration_revives_dead(self, registry, clock):
        registry.register("w0", "127.0.0.1:9000")
        clock.advance(9.0)
        registry.sweep()
        registry.register("w0", "127.0.0.1:9100")
        assert registry.state_of("w0") == ALIVE
        assert registry.address_of("w0") == "127.0.0.1:9100"


class TestDrain:
    def test_drain_is_one_way(self, registry, clock):
        registry.register("w0", "127.0.0.1:9000")
        assert registry.drain("w0") is True
        assert registry.state_of("w0") == DRAINING
        # Heartbeats keep arriving while the backlog drains — they must
        # NOT put the worker back into rotation.
        assert registry.heartbeat("w0") is True
        assert registry.state_of("w0") == DRAINING

    def test_drain_unknown_worker(self, registry):
        assert registry.drain("ghost") is False

    def test_silent_draining_worker_is_eventually_evicted(
        self, registry, clock
    ):
        registry.register("w0", "127.0.0.1:9000")
        registry.drain("w0")
        clock.advance(9.0)
        assert registry.sweep() == [("w0", DEAD)]


class TestRouting:
    def test_routable_prefers_alive_over_suspect(self, registry, clock):
        for worker_id in ("w0", "w1", "w2"):
            registry.register(worker_id, f"127.0.0.1:900{worker_id[-1]}")
        registry.mark_suspect("w0")
        assert registry.routable(["w0", "w1"]) == ["w1", "w0"]

    def test_routable_excludes_draining_and_dead(self, registry, clock):
        for worker_id in ("w0", "w1", "w2"):
            registry.register(worker_id, "127.0.0.1:9000")
        registry.drain("w1")
        clock.advance(9.0)
        registry.sweep()  # everyone dead except... all dead actually
        registry.register("w2", "127.0.0.1:9002")
        assert registry.routable(["w0", "w1", "w2"]) == ["w2"]

    def test_mark_suspect_only_demotes_alive(self, registry):
        registry.register("w0", "127.0.0.1:9000")
        registry.drain("w0")
        registry.mark_suspect("w0")
        assert registry.state_of("w0") == DRAINING

    def test_counts_and_snapshot(self, registry, clock):
        registry.register("w0", "127.0.0.1:9000", {"classes": 18})
        registry.register("w1", "127.0.0.1:9001")
        registry.drain("w1")
        counts = registry.counts()
        assert counts["alive"] == 1 and counts["draining"] == 1
        snapshot = registry.snapshot()
        assert snapshot["workers"]["w0"]["capabilities"] == {"classes": 18}
        assert snapshot["counts"] == counts


class TestValidation:
    def test_rejects_bad_intervals(self):
        with pytest.raises(ValueError):
            WorkerRegistry(heartbeat_interval_s=0.0)
        with pytest.raises(ValueError):
            WorkerRegistry(suspect_misses=5, evict_misses=5)
        with pytest.raises(ValueError):
            WorkerRegistry(suspect_misses=0, evict_misses=3)
