"""Router integration: control plane, shard routing, failure handling.

A real :class:`RouterService` and real :class:`FabricWorker` daemons run
on :class:`ThreadedService` loop threads; clients speak to the router
through the ordinary blocking :class:`ServiceClient` — nothing here is
mocked except where a test *needs* a pathological peer (the black-hole
worker that accepts connections and never answers).
"""

import json
import socket
import threading
import time

import pytest

from repro.core.truth_table import TruthTable
from repro.fabric.backoff import RetryPolicy
from repro.fabric.ring import HashRing, shard_key_of
from repro.fabric.router import RouterService
from repro.fabric.worker import FabricWorker
from repro.service import ServiceClient, ServiceError, ThreadedService
from repro.service.client import http_get

RING = ("w0", "w1")


def wait_for(predicate, timeout_s=15.0, message="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


def make_worker(tiny_library, worker_id, ring, router_address, **kwargs):
    shard = tiny_library.subset(
        ring.shard_filter(worker_id, tiny_library.parts)
    )
    return FabricWorker(
        shard,
        worker_id=worker_id,
        router_address=router_address,
        ring=ring,
        port=0,
        heartbeat_interval_s=0.1,
        **kwargs,
    )


@pytest.fixture()
def fabric(tiny_library):
    """A running router + two registered workers; yields (router, workers)."""
    ring = HashRing(RING)
    router = RouterService(
        port=0,
        policy=RetryPolicy(
            attempts=3, base_ms=5.0, cap_ms=20.0, timeout_ms=2000.0
        ),
        heartbeat_interval_s=0.1,
        trace_sample=1,
    )
    with ThreadedService(router) as router_host:
        workers = [
            make_worker(tiny_library, worker_id, ring, router_host.address)
            for worker_id in RING
        ]
        hosts = [ThreadedService(worker) for worker in workers]
        try:
            for host in hosts:
                host.start()
            wait_for(
                lambda: router.registry.counts()["alive"] == len(RING),
                message="workers to register",
            )
            yield router, workers
        finally:
            for host in hosts:
                host.stop()


class TestControlPlane:
    def test_registration_populates_registry_and_ring(self, fabric):
        router, workers = fabric
        assert router.ring is not None
        assert set(router.ring.nodes) == set(RING)
        snapshot = router.registry.snapshot()
        for worker in workers:
            info = snapshot["workers"][worker.worker_id]
            assert info["state"] == "alive"
            assert info["capabilities"]["classes"] == worker.library.num_classes
            assert info["capabilities"]["arities"] == [2, 3]

    def test_ring_mismatch_is_rejected(self, fabric):
        router, _ = fabric
        wrong = HashRing(("w0", "w1", "intruder"))
        with socket.create_connection(
            ("127.0.0.1", router.port), timeout=10
        ) as sock:
            sock.sendall(
                json.dumps(
                    {
                        "op": "register",
                        "id": 1,
                        "worker": {
                            "worker_id": "intruder",
                            "address": "127.0.0.1:1",
                            "ring": wrong.spec(),
                        },
                    }
                ).encode()
                + b"\n"
            )
            reply = json.loads(sock.makefile("rb").readline())
        assert not reply["ok"]
        assert reply["error"]["type"] == "bad_request"
        assert "ring mismatch" in reply["error"]["message"]

    def test_heartbeat_for_unknown_worker_says_so(self, fabric):
        router, _ = fabric
        with ServiceClient(port=router.port) as client:
            reply = client._roundtrip(
                {"op": "heartbeat", "id": 1, "worker_id": "ghost"}
            )
        assert reply == {"known": False}

    def test_drain_op_stops_routing(self, fabric):
        router, _ = fabric
        with ServiceClient(port=router.port) as client:
            reply = client._roundtrip(
                {"op": "drain", "id": 1, "worker_id": "w0"}
            )
            assert reply["draining"] is True
            # Replication means the other worker holds every shard: all
            # queries keep answering.
            for value in range(0, 256, 17):
                result = client.match(TruthTable(3, value))
                assert result["hit"]
        assert router.registry.counts()["draining"] == 1

    def test_worker_ops_rejected_on_plain_daemon(self, tiny_library):
        # FABRIC_OPS are router-only: a classification daemon must
        # reject them as unknown ops, not silently accept.
        with ThreadedService(tiny_library) as svc:
            with ServiceClient(port=svc.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client._roundtrip(
                        {"op": "register", "id": 1, "worker": {}}
                    )
        assert excinfo.value.error_type == "bad_request"


class TestRouting:
    def test_routed_answers_match_offline_library(self, fabric, tiny_library):
        router, _ = fabric
        with ServiceClient(port=router.port) as client:
            for value in range(256):
                table = TruthTable(3, value)
                result = client.match(table)
                assert result["hit"]
                assert ServiceClient.verify(result, table)
                offline = tiny_library.match(table)
                assert result["class_id"] == offline.class_id

    def test_pipelined_burst_through_router(self, fabric):
        router, _ = fabric
        tables = [TruthTable(3, value) for value in range(128)]
        with ServiceClient(port=router.port) as client:
            results = client.match_many(tables)
        for table, result in zip(tables, results):
            assert result["hit"]
            assert ServiceClient.verify(result, table)

    def test_classify_and_ping_and_stats(self, fabric):
        router, _ = fabric
        with ServiceClient(port=router.port) as client:
            pong = client.ping()
            assert pong["role"] == "router"
            assert pong["workers"]["alive"] == 2
            classified = client.classify(TruthTable(3, 0xE8))
            assert classified["known"]
            stats = client.stats()
            assert stats["identity"]["role"] == "router"
            assert stats["ring"]["nodes"] == list(RING)
            assert set(stats["registry"]["workers"]) == set(RING)

    def test_http_front_healthz_ring_metrics(self, fabric):
        router, _ = fabric
        status, body = http_get(router.address, "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["role"] == "router"
        status, body = http_get(router.address, "/v1/ring")
        assert status == 200
        assert json.loads(body)["ring"]["nodes"] == list(RING)
        status, body = http_get(router.address, "/metrics")
        assert status == 200
        assert "repro_fabric_requests_total" in body
        status, body = http_get(router.address, "/v1/stats")
        assert status == 200
        assert json.loads(body)["identity"]["role"] == "router"

    def test_http_post_routes_through_fabric(self, fabric):
        router, _ = fabric
        import urllib.request

        request = urllib.request.Request(
            f"http://{router.address}/v1/match",
            data=json.dumps({"table": "0xe8", "n": 3}).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            payload = json.loads(response.read())
        assert payload["ok"] and payload["result"]["hit"]

    def test_trace_spans_cover_route_dispatch_reply(self, fabric):
        router, _ = fabric
        with ServiceClient(port=router.port) as client:
            client.match(TruthTable(3, 0x96))

        def match_traces():
            # The trace finishes a beat after the reply flushes to the
            # client, so poll rather than read immediately.
            return [
                t for t in router.tracer.recent(50) if t["op"] == "match"
            ]

        wait_for(match_traces, message="the match trace to finish")
        span_names = {s["name"] for s in match_traces()[0]["spans"]}
        assert {"route", "dispatch", "reply"} <= span_names


class TestDegradedMode:
    def test_no_workers_means_typed_shard_unavailable(self):
        router = RouterService(port=0)
        with ThreadedService(router) as host:
            with ServiceClient(port=host.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.match(TruthTable(3, 0xE8))
        assert excinfo.value.error_type == "shard_unavailable"

    def test_all_owners_down_fails_fast_not_hanging(self, fabric):
        router, _ = fabric
        # Drain both workers: every shard's owner set becomes empty.
        with ServiceClient(port=router.port) as client:
            for worker_id in RING:
                client._roundtrip(
                    {"op": "drain", "id": worker_id, "worker_id": worker_id}
                )
            t0 = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.match(TruthTable(3, 0xE8))
            elapsed = time.monotonic() - t0
        assert excinfo.value.error_type == "shard_unavailable"
        assert elapsed < 2.0  # fail fast, no retry/timeout ladder


class TestTimeoutsAndHedging:
    def test_black_hole_worker_times_out_and_replica_answers(
        self, tiny_library
    ):
        # A listener that accepts and never replies: the gray failure.
        hole = socket.socket()
        hole.bind(("127.0.0.1", 0))
        hole.listen(8)
        hole_port = hole.getsockname()[1]
        accepted = []

        def accept_forever():
            try:
                while True:
                    conn, _ = hole.accept()
                    accepted.append(conn)  # keep open, never answer
            except OSError:
                pass

        thread = threading.Thread(target=accept_forever, daemon=True)
        thread.start()

        ring = HashRing(("real", "hole"))
        router = RouterService(
            port=0,
            policy=RetryPolicy(
                attempts=3, base_ms=5.0, cap_ms=20.0, timeout_ms=300.0
            ),
            heartbeat_interval_s=30.0,  # liveness driven by data plane here
        )
        try:
            with ThreadedService(router) as router_host:
                worker = make_worker(
                    tiny_library, "real", ring, router_host.address
                )
                with ThreadedService(worker):
                    wait_for(
                        lambda: router.registry.counts()["alive"] >= 1,
                        message="real worker to register",
                    )
                    # Hand-register the black hole so the ring routes
                    # half its keys there first.
                    with ServiceClient(port=router.port) as client:
                        client._roundtrip(
                            {
                                "op": "register",
                                "id": 0,
                                "worker": {
                                    "worker_id": "hole",
                                    "address": f"127.0.0.1:{hole_port}",
                                    "ring": ring.spec(),
                                },
                            }
                        )
                        for value in range(0, 256, 5):
                            table = TruthTable(3, value)
                            result = client.match(table)
                            assert result["hit"]
                            assert ServiceClient.verify(result, table)
                    stats = router._stats_snapshot()
                    # Some keys were owned by the hole first: the router
                    # must have timed out and retried onto the replica.
                    assert stats["fabric"]["retries"] >= 1
                    assert router.registry.state_of("hole") == "suspect"
                    # Once suspect, dispatches hedge to the successor.
                    assert stats["fabric"]["hedges"] >= 1
        finally:
            hole.close()
            for conn in accepted:
                conn.close()


class TestWorkerDaemon:
    def test_worker_healthz_reports_fabric_identity(self, fabric):
        _, workers = fabric
        worker = workers[0]
        status, body = http_get(worker.address, "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["worker_id"] == worker.worker_id
        assert health["registered"] is True
        assert health["ring"]["nodes"] == list(RING)

    def test_worker_serves_only_its_shard(self, fabric, tiny_library):
        router, workers = fabric
        assert router.ring is not None
        for worker in workers:
            expected = sum(
                1
                for entry in tiny_library.classes.values()
                if router.ring.covers(
                    shard_key_of(entry.representative, tiny_library.parts),
                    worker.worker_id,
                )
            )
            assert worker.library.num_classes == expected
