"""Exhaustive n=4 acceptance: batched canonical minima vs the library path.

The classical result pins the arity: the 65 536 four-variable functions
fall into exactly 222 NPN classes.  This test computes the canonical
minimum of *every* function through the gather kernel and cross-checks
the complete classification pipeline: every signature bucket is
canonical-minimum-pure, and the exhaustive library's exact
representatives are exactly those minima.
"""

import numpy as np

from repro.engine import BatchedClassifier
from repro.kernels import canonical_min
from repro.library import library_from_result
from repro.workloads import exhaustive_tables

N4_CLASS_COUNT = 222


def test_exhaustive_n4_canonical_minima_match_library_path():
    tables = list(exhaustive_tables(4))
    minima = canonical_min(tables)
    assert len(set(minima.tolist())) == N4_CLASS_COUNT

    result = BatchedClassifier().classify(tables)
    assert result.num_classes == N4_CLASS_COUNT

    minimum_of = dict(zip((t.bits for t in tables), minima.tolist()))
    library = library_from_result(result)
    assert library.num_classes == N4_CLASS_COUNT
    representative_bits = {
        entry.representative.bits for entry in library.classes.values()
    }
    assert representative_bits == set(minimum_of.values())

    for members in result.groups.values():
        bucket_minima = {minimum_of[tt.bits] for tt in members}
        # Never-split + exhaustive coverage: one orbit minimum per bucket.
        assert len(bucket_minima) == 1
        entry = library.lookup(members[0])
        assert entry is not None and entry.exact
        assert entry.representative.bits == bucket_minima.pop()
        assert entry.size == len(members)

    # The 222 orbits partition the space: orbit sizes sum to 2^16.
    assert sum(e.size for e in library.classes.values()) == 1 << 16
