"""Gather-table construction, caching, and on-disk persistence."""

import numpy as np
import pytest

from repro.core.transforms import NPNTransform, all_transforms
from repro.kernels import gather as gather_module
from repro.kernels.gather import (
    MAX_KERNEL_VARS,
    GatherTable,
    clear_memory_cache,
    gather_table,
)


@pytest.fixture(autouse=True)
def fresh_memory_cache():
    """Each test sees (and leaves behind) a clean process cache."""
    clear_memory_cache()
    yield
    clear_memory_cache()


class TestConstruction:
    @pytest.mark.parametrize("n", range(0, MAX_KERNEL_VARS + 1))
    def test_shapes(self, n):
        from math import factorial

        table = gather_table(n)
        assert table.perms.shape == (factorial(n), max(n, 0))
        assert table.perm_maps.shape == (factorial(n), 1 << n)
        assert table.np_group_order == factorial(n) << n

    @pytest.mark.parametrize("n", range(1, 5))
    def test_maps_agree_with_apply_index(self, n):
        """Row ``p``, phase ``q`` maps minterm ``m`` to apply_index(m)."""
        table = gather_table(n)
        for transform in all_transforms(n, include_output=False):
            row = table.row_of(transform.perm)
            maps = table.index_maps(
                np.array([row]), np.array([transform.input_phase])
            )[0]
            for m in range(1 << n):
                assert maps[m] == transform.apply_index(m)

    def test_row_of_every_permutation(self):
        table = gather_table(4)
        import itertools

        for row, perm in enumerate(itertools.permutations(range(4))):
            assert table.row_of(perm) == row
            assert tuple(table.perms[row]) == perm

    def test_group_index_maps_order(self):
        """Block enumeration is permutation-major, phase-minor."""
        n = 3
        table = gather_table(n)
        maps = table.group_index_maps(slice(0, table.num_perms))
        expected = [
            NPNTransform(perm_row, phase, 0)
            for perm_row in [tuple(p) for p in table.perms.tolist()]
            for phase in range(1 << n)
        ]
        assert maps.shape == (table.np_group_order, 1 << n)
        for row, transform in zip(maps, expected):
            for m in range(1 << n):
                assert row[m] == transform.apply_index(m)

    def test_rejects_out_of_range_arity(self):
        with pytest.raises(ValueError, match="n <= 6"):
            gather_table(MAX_KERNEL_VARS + 1)
        with pytest.raises(ValueError):
            gather_table(-1)

    def test_memory_cache_returns_same_object(self):
        assert gather_table(5) is gather_table(5)


class TestDiskPersistence:
    def test_lazy_write_and_reload(self, tmp_path):
        cache = tmp_path / "kernels"
        table = gather_table(4, cache_dir=cache)
        files = list(cache.glob("gather_n4.*.npz"))
        assert len(files) == 1
        # A cold process (simulated by clearing memory) loads from disk.
        clear_memory_cache()
        reloaded = gather_table(4, cache_dir=cache)
        assert np.array_equal(reloaded.perm_maps, table.perm_maps)
        assert np.array_equal(reloaded.perms, table.perms)

    def test_memory_hit_still_persists(self, tmp_path):
        gather_table(3)  # memory-only first
        cache = tmp_path / "kernels"
        gather_table(3, cache_dir=cache)  # same table, now persisted
        assert list(cache.glob("gather_n3.*.npz"))

    def test_corrupted_cache_is_rebuilt_and_repaired(self, tmp_path):
        cache = tmp_path / "kernels"
        gather_table(3, cache_dir=cache)
        path = next(cache.glob("gather_n3.*.npz"))
        path.write_bytes(b"not an npz archive")
        clear_memory_cache()
        table = gather_table(3, cache_dir=cache)  # silently rebuilt
        assert isinstance(table, GatherTable)
        assert table.perm_maps.shape == (6, 8)
        # The bad file was replaced, so the *next* cold start loads it.
        clear_memory_cache()
        reloaded = gather_table(3, cache_dir=cache)
        assert np.array_equal(reloaded.perm_maps, table.perm_maps)
        with np.load(path) as data:  # on-disk copy is valid again
            assert data["perm_maps"].shape == (6, 8)

    def test_wrong_shape_cache_is_rebuilt(self, tmp_path):
        cache = tmp_path / "kernels"
        cache.mkdir()
        wrong = gather_module._cache_path(3, cache)
        np.savez(
            wrong,
            perms=np.zeros((2, 3), dtype=np.uint8),
            perm_maps=np.zeros((2, 8), dtype=np.uint8),
        )
        table = gather_table(3, cache_dir=cache)
        assert table.perm_maps.shape == (6, 8)

    def test_unwritable_cache_dir_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("occupied")
        # cache_dir points *into* a file: mkdir fails, table still serves.
        table = gather_table(2, cache_dir=blocker / "sub")
        assert table.n == 2

    def test_no_write_without_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        gather_table(4)
        assert not any(tmp_path.rglob("*.npz"))
