"""Parity suite: every kernel primitive against its scalar oracle.

The acceptance contract of the kernels layer: ``apply_transforms``,
``orbit`` and ``canonical_min`` agree with the scalar
:meth:`NPNTransform.apply` / :func:`exact_npn_canonical` for **all**
transforms at ``n <= 3``, and under seeded fuzz at ``n = 5, 6``; the
batched key rows agree with the matcher's scalar ``variable_keys``
everywhere.
"""

import random

import numpy as np
import pytest

from repro import kernels
from repro.baselines.exact_enum import exact_npn_canonical
from repro.baselines.matcher import variable_keys
from repro.core.transforms import all_transforms, random_transform
from repro.core.truth_table import TruthTable


def _sample_tables(n, count, seed):
    rng = random.Random(seed)
    structured = [
        TruthTable.constant(n, 0),
        TruthTable.constant(n, 1),
    ]
    if n >= 1:
        structured.append(TruthTable.projection(n, 0))
    if n % 2 == 1:
        structured.append(TruthTable.majority(n))
    randoms = [TruthTable.random(n, rng) for _ in range(count)]
    return structured + randoms


class TestApplyTransformsAllTransformsSmallN:
    @pytest.mark.parametrize("n", range(0, 4))
    def test_every_transform_every_table(self, n):
        """Exhaustive group parity at n <= 3 (group order up to 96)."""
        tables = _sample_tables(n, 12, seed=n)
        transforms = list(all_transforms(n))
        images = kernels.apply_transforms(tables, transforms)
        assert images.shape == (len(tables), len(transforms))
        assert images.dtype == np.uint64
        for b, tt in enumerate(tables):
            for t, transform in enumerate(transforms):
                assert int(images[b, t]) == tt.apply(transform).bits

    def test_raw_ints_need_n(self):
        with pytest.raises(ValueError, match="pass n"):
            kernels.apply_transforms([5, 9], [])

    def test_raw_ints_with_n(self):
        transforms = list(all_transforms(2, include_output=False))
        images = kernels.apply_transforms([0b0110, 0b1000], transforms, n=2)
        for b, bits in enumerate((0b0110, 0b1000)):
            for t, transform in enumerate(transforms):
                assert int(images[b, t]) == transform.apply_table(bits, 2)

    def test_mixed_arity_batch_rejected(self):
        with pytest.raises(ValueError, match="mixed arities"):
            kernels.apply_transforms(
                [TruthTable(2, 3), TruthTable(3, 3)], []
            )

    def test_transform_arity_mismatch_rejected(self):
        from repro.core.transforms import NPNTransform

        with pytest.raises(ValueError, match="transform arity"):
            kernels.apply_transforms(
                [TruthTable(3, 7)], [NPNTransform.identity(2)]
            )

    def test_arity_above_kernel_range_rejected(self):
        with pytest.raises(ValueError, match="n <= 6"):
            kernels.apply_transforms([TruthTable(7, 1)], [])


class TestApplyTransformsFuzz:
    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_seeded_fuzz(self, n):
        rng = random.Random(1000 + n)
        tables = [TruthTable.random(n, rng) for _ in range(10)]
        transforms = [random_transform(n, rng) for _ in range(60)]
        images = kernels.apply_transforms(tables, transforms)
        for b, tt in enumerate(tables):
            for t, transform in enumerate(transforms):
                assert int(images[b, t]) == tt.apply(transform).bits


class TestOrbit:
    @pytest.mark.parametrize("n", range(0, 4))
    def test_orbit_matches_all_transforms_order(self, n):
        """The orbit enumerates images in all_transforms order."""
        for tt in _sample_tables(n, 4, seed=10 + n):
            reference = np.array(
                [tt.apply(t).bits for t in all_transforms(n)],
                dtype=np.uint64,
            )
            assert np.array_equal(kernels.orbit(tt), reference)

    @pytest.mark.parametrize("n", [5, 6])
    def test_orbit_fuzz_spot_checks(self, n):
        """Full order parity is n! * 2^(n+1) entries — check structure
        plus randomly sampled positions against the scalar apply."""
        rng = random.Random(20 + n)
        tt = TruthTable.random(n, rng)
        orbit = kernels.orbit(tt)
        transforms = list(all_transforms(n))
        assert len(orbit) == len(transforms)
        for position in rng.sample(range(len(transforms)), 50):
            assert int(orbit[position]) == tt.apply(transforms[position]).bits

    def test_chunks_concatenate_to_orbit(self):
        tt = TruthTable.random(5, random.Random(3))
        chunks = list(kernels.orbit_chunks(tt))
        assert len(chunks) >= 2  # streaming actually streams at n = 5
        assert np.array_equal(np.concatenate(chunks), kernels.orbit(tt))

    def test_np_only_orbit(self):
        tt = TruthTable.random(3, random.Random(4))
        np_orbit = kernels.orbit(tt, include_output=False)
        reference = np.array(
            [tt.apply(t).bits for t in all_transforms(3, include_output=False)],
            dtype=np.uint64,
        )
        assert np.array_equal(np_orbit, reference)

    def test_orbit_contains_canonical_minimum(self):
        tt = TruthTable.random(6, random.Random(5))
        assert int(kernels.orbit(tt).min()) == int(
            kernels.canonical_min([tt])[0]
        )


class TestCanonicalMin:
    @pytest.mark.parametrize("n", range(0, 4))
    def test_exhaustive_small_n(self, n):
        """Every table of the arity (256 at n = 3) vs the enum oracle."""
        tables = [TruthTable(n, bits) for bits in range(1 << (1 << n))]
        minima = kernels.canonical_min(tables)
        for tt, bits in zip(tables, minima):
            assert int(bits) == exact_npn_canonical(tt).representative.bits

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_seeded_fuzz(self, n):
        rng = random.Random(30 + n)
        count = {4: 64, 5: 24, 6: 8}[n]
        tables = [TruthTable.random(n, rng) for _ in range(count)]
        minima = kernels.canonical_min(tables)
        for tt, bits in zip(tables, minima):
            assert int(bits) == exact_npn_canonical(tt).representative.bits

    def test_invariant_over_orbit(self):
        rng = random.Random(40)
        tt = TruthTable.random(6, rng)
        images = [tt.apply(random_transform(6, rng)) for _ in range(12)]
        minima = set(kernels.canonical_min([tt] + images).tolist())
        assert len(minima) == 1

    def test_single_table_wrapper(self):
        tt = TruthTable.majority(3)
        assert (
            kernels.canonical_min_table(tt)
            == exact_npn_canonical(tt).representative
        )


class TestKeyMatrices:
    @pytest.mark.parametrize("n", range(0, 7))
    def test_row_equality_iff_scalar_key_equality(self, n):
        """Key rows are an exact encoding of the matcher's variable keys:
        two variables (of possibly different tables) compare equal in
        row form iff their scalar keys compare equal."""
        rng = random.Random(50 + n)
        tables = _sample_tables(n, 20, seed=50 + n)
        matrices = kernels.key_matrices(n, [t.bits for t in tables])
        rows = matrices.keys
        scalar = [variable_keys(tt) for tt in tables]
        for _ in range(200):
            a, b = rng.randrange(len(tables)), rng.randrange(len(tables))
            if n == 0:
                continue
            i, v = rng.randrange(n), rng.randrange(n)
            assert (scalar[a][i] == scalar[b][v]) == bool(
                (rows[a, i] == rows[b, v]).all()
            )

    def test_empty_batch(self):
        """An empty batch yields empty matrices, not a concat crash."""
        matrices = kernels.key_matrices(4, [])
        assert matrices.counts.shape == (0,)
        assert matrices.keys.shape == (0, 4, kernels.KEY_WIDTH)
        assert matrices.cofactors.shape == (0, 4, 2)

    @pytest.mark.parametrize("n", range(1, 7))
    def test_counts_and_cofactors(self, n):
        tables = _sample_tables(n, 15, seed=60 + n)
        matrices = kernels.key_matrices(n, [t.bits for t in tables])
        for b, tt in enumerate(tables):
            assert int(matrices.counts[b]) == tt.count_ones()
            for i in range(n):
                assert tuple(matrices.cofactors[b, i]) == (
                    tt.cofactor_count(i, 0),
                    tt.cofactor_count(i, 1),
                )

    @pytest.mark.parametrize("n", range(1, 7))
    def test_complement_matches_recomputation(self, n):
        """Derived ~f encodings equal the encodings computed from ~f."""
        tables = _sample_tables(n, 15, seed=70 + n)
        matrices = kernels.key_matrices(n, [t.bits for t in tables])
        derived = kernels.complement_key_matrices(matrices, n)
        recomputed = kernels.key_matrices(n, [(~t).bits for t in tables])
        assert np.array_equal(derived.counts, recomputed.counts)
        assert np.array_equal(derived.keys, recomputed.keys)
        assert np.array_equal(derived.cofactors, recomputed.cofactors)

    def test_np_invariance_of_rows(self):
        """Key row multisets are NP invariants, like the scalar keys."""
        rng = random.Random(80)
        from repro.core.transforms import NPNTransform

        for _ in range(10):
            tt = TruthTable.random(5, rng)
            t = random_transform(5, rng)
            image = tt.apply(NPNTransform(t.perm, t.input_phase, 0))
            matrices = kernels.key_matrices(5, [tt.bits, image.bits])
            original = sorted(map(tuple, matrices.keys[0].tolist()))
            transformed = sorted(map(tuple, matrices.keys[1].tolist()))
            assert original == transformed


class TestBitMatrixRoundTrip:
    @pytest.mark.parametrize("n", range(0, 7))
    def test_pack_unpack(self, n):
        rng = random.Random(90 + n)
        ints = [rng.getrandbits(1 << n) for _ in range(25)]
        bits = kernels.bit_matrix(n, ints)
        assert bits.shape == (25, 1 << n)
        packed = kernels.pack_rows(bits)
        assert packed.tolist() == ints
