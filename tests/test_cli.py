"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, parse_tables


class TestParsing:
    def test_parse_binary_lines(self):
        tables = parse_tables(["11101000", "", "# comment", "0110"])
        assert len(tables) == 2
        assert tables[0].n == 3
        assert tables[1].n == 2

    def test_parse_hex_with_prefix(self):
        tables = parse_tables(["0xe8"])
        assert tables[0].bits == 0xE8
        assert tables[0].n == 3

    def test_parse_hex_needs_inferable_width(self):
        with pytest.raises(ValueError):
            parse_tables(["0xe8a"])  # 12 bits: not a power of two

    def test_parse_garbage(self):
        with pytest.raises(ValueError):
            parse_tables(["zz"])


class TestCommands:
    def test_classify_file(self, tmp_path, capsys):
        path = tmp_path / "tables.txt"
        path.write_text("11101000\n00010111\n10000000\n")
        assert main(["classify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "functions: 3" in out
        assert "classes:   2" in out

    def test_classify_method_selection(self, tmp_path, capsys):
        path = tmp_path / "tables.txt"
        path.write_text("11101000\n00010111\n")
        assert main(["classify", str(path), "--method", "kitty"]) == 0
        assert "classes:   1" in capsys.readouterr().out

    def test_classify_batched_engine(self, tmp_path, capsys):
        path = tmp_path / "tables.txt"
        path.write_text("11101000\n00010111\n10000000\n")
        assert main(["classify", str(path), "--engine", "batched"]) == 0
        out = capsys.readouterr().out
        assert "classes:   2 (ours, batched engine)" in out

    def test_classify_batched_engine_requires_ours(self, tmp_path, capsys):
        path = tmp_path / "tables.txt"
        path.write_text("11101000\n")
        assert main(
            ["classify", str(path), "--method", "kitty", "--engine", "batched"]
        ) == 2
        assert "only applies" in capsys.readouterr().err

    def test_classify_sharded_engine(self, tmp_path, capsys):
        path = tmp_path / "tables.txt"
        path.write_text("11101000\n00010111\n10000000\n")
        assert main(
            ["classify", str(path), "--engine", "sharded", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "classes:   2 (ours, sharded engine, 2 workers, shm)" in out

    def test_classify_sharded_transport_flags(self, tmp_path, capsys):
        path = tmp_path / "tables.txt"
        path.write_text("11101000\n00010111\n10000000\n")
        assert main(
            ["classify", str(path), "--engine", "sharded", "--workers", "2",
             "--no-shm"]
        ) == 0
        assert "2 workers, pickle" in capsys.readouterr().out
        assert main(
            ["classify", str(path), "--engine", "sharded", "--workers", "2",
             "--shm"]
        ) == 0
        assert "2 workers, shm" in capsys.readouterr().out

    def test_classify_transport_requires_sharded_engine(
        self, tmp_path, capsys
    ):
        path = tmp_path / "tables.txt"
        path.write_text("11101000\n")
        assert main(["classify", str(path), "--no-shm"]) == 2
        assert "requires --engine sharded" in capsys.readouterr().err

    def test_classify_shm_flags_are_mutually_exclusive(self, tmp_path, capsys):
        path = tmp_path / "tables.txt"
        path.write_text("11101000\n")
        with pytest.raises(SystemExit):
            main(["classify", str(path), "--shm", "--no-shm"])

    def test_classify_sharded_engine_default_workers(self, tmp_path, capsys):
        path = tmp_path / "tables.txt"
        path.write_text("11101000\n00010111\n")
        assert main(["classify", str(path), "--engine", "sharded"]) == 0
        assert "sharded engine" in capsys.readouterr().out

    def test_classify_sharded_engine_matches_perfn(self, tmp_path, capsys):
        path = tmp_path / "tables.txt"
        path.write_text("11101000\n00010111\n10000000\n01100110\n")
        assert main(["classify", str(path)]) == 0
        perfn_out = capsys.readouterr().out
        assert main(
            ["classify", str(path), "--engine", "sharded", "--workers", "2"]
        ) == 0
        sharded_out = capsys.readouterr().out
        assert perfn_out.splitlines()[0] == sharded_out.splitlines()[0]
        assert perfn_out.split("(")[0] == sharded_out.split("(")[0]

    def test_classify_sharded_rejects_zero_workers(self, tmp_path, capsys):
        path = tmp_path / "tables.txt"
        path.write_text("11101000\n")
        assert main(
            ["classify", str(path), "--engine", "sharded", "--workers", "0"]
        ) == 2
        err = capsys.readouterr().err
        assert "at least 1 worker" in err
        assert "omit the flag" in err  # the error must say how to recover

    def test_classify_workers_requires_sharded_engine(self, tmp_path, capsys):
        path = tmp_path / "tables.txt"
        path.write_text("11101000\n")
        assert main(["classify", str(path), "--workers", "2"]) == 2
        assert "requires --engine sharded" in capsys.readouterr().err

    def test_classify_sharded_engine_requires_ours(self, tmp_path, capsys):
        path = tmp_path / "tables.txt"
        path.write_text("11101000\n")
        assert main(
            ["classify", str(path), "--method", "kitty", "--engine", "sharded"]
        ) == 2
        assert "only applies" in capsys.readouterr().err

    def test_classify_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("\n")
        assert main(["classify", str(path)]) == 1

    def test_signatures_command(self, capsys):
        assert main(["signatures", "11101000"]) == 0
        out = capsys.readouterr().out
        assert "OCV1  = (1, 1, 1, 3, 3, 3)" in out
        assert "OIV   = (2, 2, 2)" in out
        assert "MSV digest" in out

    def test_signatures_hex_with_n(self, capsys):
        assert main(["signatures", "0xe8", "--n", "3"]) == 0
        assert "balanced=True" in capsys.readouterr().out

    def test_suite_command(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "adder" in out
        assert "arithmetic" in out

    def test_extract_command(self, capsys):
        assert main(["extract", "--sizes", "3,4", "--limit", "50"]) == 0
        out = capsys.readouterr().out
        assert "Extracted cut functions" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "OSDV" in out
        assert "False" not in out  # every row matches the paper

    def test_fig34_command(self, capsys):
        assert main(["fig34"]) == 0
        out = capsys.readouterr().out
        assert "fig4-g" in out
        assert "False" not in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestLibraryCommands:
    @pytest.fixture(scope="class")
    def lib_dir(self, tmp_path_factory):
        """One n<=3 library built through the CLI, shared by the class."""
        path = tmp_path_factory.mktemp("library") / "lib3"
        assert main(
            ["library", "build", "--inputs", "1-3", "--out", str(path)]
        ) == 0
        return path

    def test_build_reports_classes(self, tmp_path, capsys):
        out_dir = tmp_path / "lib"
        assert main(
            ["library", "build", "--inputs", "3", "--out", str(out_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "saved 14 classes" in out
        assert (out_dir / "manifest.json").exists()
        assert (out_dir / "classes.npz").exists()

    def test_build_rejects_bad_arity_spec(self, tmp_path, capsys):
        assert main(
            ["library", "build", "--inputs", "0", "--out", str(tmp_path / "x")]
        ) == 2
        assert "no valid arity" in capsys.readouterr().err

    def test_build_rejects_unsupported_arity(self, tmp_path, capsys):
        assert main(
            ["library", "build", "--inputs", "21", "--out", str(tmp_path / "x")]
        ) == 2
        assert "supported arity range" in capsys.readouterr().err

    def test_build_rejects_garbage_arity_spec(self, tmp_path, capsys):
        assert main(
            ["library", "build", "--inputs", "3,x", "--out", str(tmp_path / "x")]
        ) == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_build_workers_requires_sharded(self, tmp_path, capsys):
        assert main(
            [
                "library", "build", "--inputs", "3",
                "--out", str(tmp_path / "x"), "--workers", "2",
            ]
        ) == 2
        assert "requires --engine sharded" in capsys.readouterr().err

    def test_build_rejects_unsampled_large_arity(self, tmp_path, capsys):
        assert main(
            [
                "library", "build", "--inputs", "5", "--samples", "0",
                "--out", str(tmp_path / "x"),
            ]
        ) == 2
        assert "--samples" in capsys.readouterr().err

    def test_stats(self, lib_dir, capsys):
        assert main(["library", "stats", "--library", str(lib_dir)]) == 0
        out = capsys.readouterr().out
        assert "classes" in out
        assert "14" in out

    def test_match_hit_prints_verified_witness(self, lib_dir, capsys):
        assert main(
            ["library", "match", "11101000", "--library", str(lib_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "class:     n3-" in out
        assert "witness:" in out
        assert '"perm"' in out
        assert "verified:  True" in out

    def test_match_miss_outside_library(self, lib_dir, capsys):
        assert main(
            [
                "library", "match", "0xe8e8e8e8", "--n", "5",
                "--library", str(lib_dir),
            ]
        ) == 1
        assert "NO MATCH" in capsys.readouterr().out

    def test_match_unreadable_library_says_how_to_build(self, tmp_path, capsys):
        assert main(
            ["library", "match", "11101000", "--library", str(tmp_path / "no")]
        ) == 2
        err = capsys.readouterr().err
        assert "cannot load library" in err
        assert "library build" in err  # recovery hint

    def test_cutmatch_end_to_end(self, lib_dir, capsys):
        assert main(
            [
                "cutmatch", "--library", str(lib_dir), "--sizes", "3",
                "--circuits", "adder,parity", "--top", "5",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Cut matching" in out
        assert "TOTAL" in out
        assert "Top 5 classes" in out
        assert "n3-" in out

    def test_cutmatch_rejects_bad_sizes(self, lib_dir, capsys):
        for spec in ("4,", "0", "zz"):
            assert main(
                ["cutmatch", "--library", str(lib_dir), "--sizes", spec]
            ) == 2
            assert "--sizes" in capsys.readouterr().err

    def test_extract_rejects_bad_sizes(self, capsys):
        assert main(["extract", "--sizes", "3,"]) == 2
        assert "--sizes" in capsys.readouterr().err

    def test_cutmatch_rejects_unknown_circuit(self, lib_dir, capsys):
        assert main(
            ["cutmatch", "--library", str(lib_dir), "--circuits", "nonesuch"]
        ) == 2
        assert "unknown circuits" in capsys.readouterr().err

    def test_cutmatch_requires_loadable_library(self, tmp_path, capsys):
        assert main(["cutmatch", "--library", str(tmp_path / "no")]) == 2
        assert "cannot load library" in capsys.readouterr().err


class TestServeAndQueryCommands:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        """A daemon on an exhaustive n<=3 library, shared by the class."""
        from repro.library import build_exhaustive_library
        from repro.service import ThreadedService

        library = build_exhaustive_library(3)
        with ThreadedService(library, max_wait_ms=1.0) as svc:
            yield svc

    def test_query_match_roundtrip(self, served, capsys):
        assert main(
            ["query", "match", "11101000", "--addr", served.address]
        ) == 0
        out = capsys.readouterr().out
        assert "class:     n3-" in out
        assert "witness json:" in out
        assert "verified:  True" in out

    def test_query_match_miss(self, served, capsys):
        assert main(
            ["query", "match", "0110", "--addr", served.address]
        ) == 1
        assert "NO MATCH" in capsys.readouterr().out

    def test_query_classify(self, served, capsys):
        assert main(
            ["query", "classify", "0xe8", "--n", "3", "--addr", served.address]
        ) == 0
        out = capsys.readouterr().out
        assert "class:     n3-" in out
        assert "known:     True" in out

    def test_query_stats_and_ping(self, served, capsys):
        assert main(["query", "ping", "--addr", served.address]) == 0
        assert '"pong": true' in capsys.readouterr().out
        assert main(["query", "stats", "--addr", served.address]) == 0
        assert '"mean_batch_size"' in capsys.readouterr().out

    def test_query_stats_prometheus(self, served, capsys):
        assert main(
            ["query", "stats", "--prometheus", "--addr", served.address]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_service_requests_total counter" in out
        assert "repro_service_request_seconds_bucket" in out

    def test_query_trace(self, served, capsys):
        # Prior tests in this class already generated traffic to trace.
        assert main(["query", "trace", "--addr", served.address]) == 0
        out = capsys.readouterr().out
        assert "trace(s)" in out
        assert "op=match" in out
        assert "decode" in out

    def test_query_trace_json_and_limit(self, served, capsys):
        assert main(
            ["query", "trace", "--json", "--limit", "1", "--addr", served.address]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["traces"]) == 1
        assert payload["tracer"]["finished_total"] >= 1

    def test_query_rejects_bad_address(self, capsys):
        assert main(["query", "ping", "--addr", "nope"]) == 2
        assert "host:port" in capsys.readouterr().err

    def test_query_reports_unreachable_daemon(self, capsys):
        # Port 1 on localhost: nothing listens there in the test sandbox.
        assert main(["query", "ping", "--addr", "127.0.0.1:1"]) == 2
        err = capsys.readouterr().err
        assert "cannot reach" in err
        assert "repro-npn serve" in err

    def test_query_bad_table_is_typed_error(self, served, capsys):
        assert main(
            ["query", "classify", "0xe8a", "--addr", served.address]
        ) == 2
        assert "cannot infer variable count" in capsys.readouterr().err

    def test_serve_requires_loadable_library(self, tmp_path, capsys):
        assert main(["serve", "--library", str(tmp_path / "absent")]) == 2
        assert "cannot load library" in capsys.readouterr().err

    def test_serve_rejects_bad_knobs(self, tmp_path, capsys):
        from repro.library import build_exhaustive_library

        lib_dir = tmp_path / "lib2"
        build_exhaustive_library(2).save(lib_dir)
        for flags, fragment in (
            (["--max-batch", "0"], "max_batch"),
            (["--max-wait-ms", "-1"], "max_wait_ms"),
            (["--max-pending", "0"], "max_pending"),
            (["--cache-size", "-1"], "cache_size"),
        ):
            assert main(["serve", "--library", str(lib_dir), *flags]) == 2
            assert fragment in capsys.readouterr().err

    def test_serve_validates_knobs_before_touching_the_library(
        self, tmp_path, capsys
    ):
        # The library path does not even exist: knob errors must win.
        assert main(
            ["serve", "--library", str(tmp_path / "absent"), "--max-batch", "0"]
        ) == 2
        err = capsys.readouterr().err
        assert "max_batch" in err
        assert "cannot load library" not in err


@pytest.mark.integration
class TestExperimentCommands:
    """End-to-end table/figure regeneration at smoke scale."""

    def test_table2_smoke(self, capsys):
        assert main(["table2", "--scale", "smoke", "--no-exact"]) == 0
        out = capsys.readouterr().out
        assert "OIV+OSV" in out
        assert "Table II" in out

    def test_table3_smoke(self, capsys):
        assert main(["table3", "--scale", "smoke", "--no-exact"]) == 0
        out = capsys.readouterr().out
        assert "ours_classes" in out

    def test_table3_smoke_sharded(self, capsys):
        assert main(
            ["table3", "--scale", "smoke", "--no-exact", "--sharded-workers", "2"]
        ) == 0
        assert "ours_sharded_classes" in capsys.readouterr().out

    def test_table3_rejects_zero_sharded_workers(self, capsys):
        assert main(
            ["table3", "--scale", "smoke", "--no-exact", "--sharded-workers", "0"]
        ) == 2
        assert "at least 1 worker" in capsys.readouterr().err

    def test_fig5_smoke(self, capsys):
        assert main(["fig5", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "cumulative seconds" in out
        assert "stability" in out

    def test_fig5_smoke_sharded(self, capsys):
        assert main(["fig5", "--scale", "smoke", "--sharded-workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "ours_sharded" in out
        assert "ours_sharded_stability" in out


class TestLearnAndCompactCli:
    def test_wal_flags_require_learn(self, capsys):
        for flags in (
            ["--wal-segment-bytes", "4096"],
            ["--wal-fsync", "never"],
        ):
            assert main(["serve", "--library", "x", *flags]) == 2
            assert "requires --learn" in capsys.readouterr().err

    def test_serve_learn_rejects_bad_segment_bytes(self, capsys):
        assert main(
            ["serve", "--library", "x", "--learn", "--wal-segment-bytes", "0"]
        ) == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_serve_learn_missing_library_says_how_to_build(
        self, tmp_path, capsys
    ):
        assert main(
            ["serve", "--library", str(tmp_path / "absent"), "--learn"]
        ) == 2
        assert "library build" in capsys.readouterr().err

    def test_compact_noop_on_fresh_library(self, tmp_path, capsys):
        lib = tmp_path / "lib"
        assert main(
            ["library", "build", "--inputs", "1-2", "--out", str(lib)]
        ) == 0
        capsys.readouterr()
        assert main(["library", "compact", "--library", str(lib)]) == 0
        assert "no write-ahead segments" in capsys.readouterr().out

    def test_compact_merges_leftover_segments(self, tmp_path, capsys):
        """A crashed learner's segment is absorbed by the CLI compaction."""
        import random

        from repro.core.truth_table import TruthTable
        from repro.library import LearningLibrary, list_segments

        lib = tmp_path / "lib"
        assert main(
            ["library", "build", "--inputs", "1-2", "--out", str(lib)]
        ) == 0
        learner = LearningLibrary.open(lib)
        learner.learn(TruthTable.random(5, random.Random(31)))
        learner.close_segment()  # "crash": segment left behind
        assert len(list_segments(lib)) == 1

        capsys.readouterr()
        assert main(["library", "compact", "--library", str(lib)]) == 0
        out = capsys.readouterr().out
        assert "compacted 1 WAL records (1 segments)" in out
        assert list_segments(lib) == []

        capsys.readouterr()
        assert main(["library", "stats", "--library", str(lib)]) == 0
        assert "5" in capsys.readouterr().out  # the minted n=5 row persists


class TestFabricCommands:
    """Argument validation of the fabric entry points + ping retries.

    The daemons themselves never start here (they would serve forever);
    the chaos tests exercise the full subprocess lifecycle.  This class
    pins the operator-facing contract: bad knobs exit 2 with a message,
    never a traceback or a half-started daemon.
    """

    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        from repro.library import build_exhaustive_library
        from repro.service import ThreadedService

        library = build_exhaustive_library(3)
        with ThreadedService(library, max_wait_ms=1.0) as svc:
            yield svc

    def test_router_rejects_bad_policy_knobs(self, capsys):
        for flags, fragment in (
            (["--attempts", "0"], "attempts"),
            (["--base-ms", "-1"], "base_ms"),
            (["--timeout-ms", "0"], "timeout_ms"),
            (["--heartbeat-interval-s", "0"], "heartbeat"),
            (["--suspect-misses", "9", "--evict-misses", "9"], "misses"),
            (["--trace-sample", "0"], "trace-sample"),
        ):
            assert main(["router", "--port", "0", *flags]) == 2
            assert fragment in capsys.readouterr().err

    def test_worker_rejects_bad_ring(self, capsys):
        assert main(
            ["worker", "--id", "w0", "--ring", "w0,w0", "--port", "0"]
        ) == 2
        assert "repeats a worker id" in capsys.readouterr().err

    def test_worker_must_be_on_its_ring(self, capsys):
        assert main(
            ["worker", "--id", "ghost", "--ring", "w0,w1", "--port", "0"]
        ) == 2
        assert "not on the ring" in capsys.readouterr().err

    def test_worker_rejects_bad_service_knobs(self, capsys):
        assert main(
            [
                "worker", "--id", "w0", "--ring", "w0,w1",
                "--max-batch", "0", "--port", "0",
            ]
        ) == 2
        assert "max_batch" in capsys.readouterr().err

    def test_worker_requires_loadable_library(self, tmp_path, capsys):
        assert main(
            [
                "worker", "--id", "w0", "--ring", "w0,w1",
                "--library", str(tmp_path / "absent"), "--port", "0",
            ]
        ) == 2
        assert "cannot load library" in capsys.readouterr().err

    def test_ping_with_retries_succeeds_first_try(self, served, capsys):
        assert main(
            [
                "query", "ping", "--retries", "3", "--backoff-ms", "1",
                "--addr", served.address,
            ]
        ) == 0
        assert '"pong": true' in capsys.readouterr().out

    def test_ping_retries_exhaust_against_dead_port(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        assert main(
            [
                "query", "ping", "--retries", "2", "--backoff-ms", "1",
                "--addr", f"127.0.0.1:{dead_port}",
            ]
        ) == 2
        err = capsys.readouterr().err
        assert "after 3 attempts" in err
        assert "cannot reach" in err

    def test_ping_rejects_negative_backoff(self, capsys):
        assert main(
            [
                "query", "ping", "--retries", "1", "--backoff-ms", "-5",
                "--addr", "127.0.0.1:1",
            ]
        ) == 2
        assert "base_ms" in capsys.readouterr().err
