"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.ascii_plot import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart(
            [1, 2, 3, 4],
            {"ours": [0.1, 0.2, 0.3, 0.4], "baseline": [0.1, 0.3, 0.2, 0.8]},
            title="demo",
        )
        assert "demo" in chart
        assert "o ours" in chart
        assert "x baseline" in chart
        assert "o" in chart.splitlines()[-1] or "o" in chart

    def test_markers_placed_monotone_series(self):
        chart = ascii_chart([0, 10], {"linear": [0.0, 1.0]}, width=20, height=5)
        lines = chart.splitlines()
        # Max y label on first plotted row, min y label near the bottom.
        assert lines[0].strip().startswith("1")
        assert any("0" in line for line in lines[-3:])

    def test_constant_series_does_not_crash(self):
        chart = ascii_chart([1, 2, 3], {"flat": [5, 5, 5]})
        assert "flat" in chart

    def test_empty_input(self):
        assert ascii_chart([], {}) == "(no data)"
        assert ascii_chart([1], {}) == "(no data)"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"bad": [1]})

    def test_multiple_series_distinct_markers(self):
        chart = ascii_chart(
            [1, 2],
            {"a": [1, 2], "b": [2, 1], "c": [1, 1]},
        )
        assert "o a" in chart and "x b" in chart and "+ c" in chart


class TestCliIntegration:
    def test_canonical_command(self, capsys):
        from repro.cli import main

        assert main(["canonical", "11101000"]) == 0
        out = capsys.readouterr().out
        assert "canonical:" in out
        assert "witness:" in out

    def test_match_command_positive(self, capsys):
        from repro.cli import main

        assert main(["match", "11101000", "00010111"]) == 0
        assert "NPN equivalent" in capsys.readouterr().out

    def test_match_command_negative(self, capsys):
        from repro.cli import main

        assert main(["match", "11101000", "01101001"]) == 1
        assert "NOT" in capsys.readouterr().out
