"""Tests for stats, table rendering, and the timing harness."""

import pytest

from repro.analysis.stats import (
    accuracy,
    class_count_matrix,
    collision_examples,
    refinement_holds,
)
from repro.analysis.tables import (
    format_markdown_table,
    format_table,
    write_markdown_table,
)
from repro.analysis.timing import TimedRun, incremental_times, time_classifier
from repro.baselines import get_classifier
from repro.workloads.random_functions import random_tables


class TestStats:
    def test_accuracy(self):
        assert accuracy(49, 49) == 1.0
        assert accuracy(251, 49) > 1
        assert accuracy(44, 49) < 1
        with pytest.raises(ValueError):
            accuracy(10, 0)

    def test_class_count_matrix(self):
        tables = random_tables(4, 100, seed=0)
        counts = class_count_matrix(
            tables,
            {"OIV": ["oiv"], "OIV+OSV": ["oiv", "osv"], "All": None or
             ["c0", "ocv1", "ocv2", "oiv", "osv", "osdv"]},
        )
        assert set(counts) == {"OIV", "OIV+OSV", "All"}
        assert refinement_holds([counts["OIV"], counts["OIV+OSV"], counts["All"]])

    def test_refinement_holds(self):
        assert refinement_holds([1, 2, 2, 5])
        assert not refinement_holds([3, 2])
        assert refinement_holds([])

    def test_collision_examples_on_weak_parts(self):
        """A weak key (c0 only) must exhibit non-equivalent collisions."""
        tables = random_tables(4, 120, seed=1)
        pairs = collision_examples(tables, parts=["c0"], max_examples=3)
        assert pairs  # |f| alone cannot separate much
        from repro.baselines.matcher import are_npn_equivalent

        for a, b in pairs:
            assert not are_npn_equivalent(a, b)


class TestTables:
    ROWS = [
        {"n": 4, "classes": 49, "time": 0.0013},
        {"n": 5, "classes": 312, "time": 0.0049},
    ]

    def test_format_table(self):
        text = format_table(self.ROWS, title="Table III")
        assert "Table III" in text
        assert "classes" in text
        assert "312" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_column_selection(self):
        text = format_table(self.ROWS, columns=["n", "classes"])
        assert "time" not in text

    def test_markdown(self):
        text = format_markdown_table(self.ROWS)
        assert text.startswith("| n | classes | time |")
        assert "| 4 | 49 |" in text

    def test_write_markdown(self, tmp_path):
        path = tmp_path / "table.md"
        write_markdown_table(self.ROWS, path, title="Table II")
        content = path.read_text()
        assert content.startswith("## Table II")
        assert "| 5 | 312 |" in content


class TestTiming:
    def test_time_keyed_classifier(self):
        tables = random_tables(4, 60, seed=2)
        run = time_classifier(get_classifier("ours"), tables, chunks=3)
        assert run.method == "ours"
        assert run.functions == 60
        assert run.classes >= 1
        assert run.seconds > 0
        assert len(run.chunk_seconds) >= 3
        assert run.per_function_us > 0

    def test_time_exact_classifier(self):
        tables = random_tables(4, 30, seed=3)
        run = time_classifier(get_classifier("exact"), tables)
        assert run.classes >= 1
        assert run.seconds > 0

    def test_counts_agree_with_direct(self):
        tables = random_tables(4, 50, seed=4)
        clf = get_classifier("huang13")
        run = time_classifier(clf, tables)
        assert run.classes == clf.count_classes(tables)

    def test_stability_metrics(self):
        run = TimedRun("x", 10, 5, 1.0, [0.1, 0.1, 0.1])
        assert run.chunk_stdev == pytest.approx(0.0)
        assert run.chunk_relative_spread == pytest.approx(0.0)
        spread = TimedRun("x", 10, 5, 1.0, [0.1, 0.3])
        assert spread.chunk_relative_spread > 0

    def test_incremental_times_monotone(self):
        tables = random_tables(4, 80, seed=5)
        series = incremental_times(
            get_classifier("ours"), tables, points=[20, 40, 80]
        )
        xs = [p for p, _ in series]
        ys = [t for _, t in series]
        assert xs == [20, 40, 80]
        assert ys == sorted(ys)
