"""Suite-wide pytest configuration: hypothesis profiles.

Two profiles, selected by the ``HYPOTHESIS_PROFILE`` environment
variable (the profile names double as its values):

* ``ci`` (the default): **derandomized** — every run draws the same
  examples, so tier-1 stays reproducible run-to-run and a red CI is a
  real regression, never fuzz luck.  ``deadline=None`` because shared
  runners stall arbitrarily; example counts stay at the hypothesis
  default so shrinking quality is unaffected.
* ``dev``: randomized with a bigger example budget — run locally
  (``HYPOTHESIS_PROFILE=dev``) to actually hunt new counterexamples;
  failures persist in hypothesis's example database and replay first.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
