"""Integration tests for the experiment drivers (smoke scale).

These are the structural claims the paper's evaluation rests on; the
benches then report magnitudes on bigger workloads.
"""

import pytest

from repro.analysis.stats import refinement_holds
from repro.experiments.fig34 import (
    find_fig3_witness,
    find_fig4_g_witness,
    find_fig4_h_witness,
    run_fig34,
)
from repro.experiments.fig5 import fig5_series
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import COLUMNS, table2_row
from repro.experiments.table3 import table3_row
from repro.experiments.workload_cache import (
    benchmark_functions,
    scale_settings,
)
from repro.workloads.random_functions import random_tables


@pytest.fixture(scope="module")
def smoke_functions():
    return benchmark_functions("smoke")


class TestScaleSettings:
    def test_presets(self):
        assert scale_settings("smoke").name == "smoke"
        assert scale_settings("paper").limit_per_size is None
        with pytest.raises(ValueError):
            scale_settings("huge")

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert scale_settings(None).name == "small"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert scale_settings(None).name == "smoke"

    def test_benchmark_functions_cached(self, smoke_functions):
        again = benchmark_functions("smoke")
        assert again is smoke_functions
        assert set(smoke_functions) == set(scale_settings("smoke").sizes)


class TestTable1:
    def test_all_rows_match_paper(self):
        rows = run_table1()
        assert len(rows) == 8
        assert all(row["matches_paper"] for row in rows)


class TestTable2:
    def test_row_structure_and_soundness(self, smoke_functions):
        n = 4
        row = table2_row(n, smoke_functions[n])
        assert row["n"] == n
        assert row["functions"] == len(smoke_functions[n])
        for label in COLUMNS:
            # Soundness: signature classes never exceed exact classes.
            assert row[label] <= row["exact"], label

    def test_refinement_chains(self, smoke_functions):
        row = table2_row(5, smoke_functions[5])
        assert refinement_holds([row["OIV"], row["OIV+OSV"], row["All"]])
        assert refinement_holds(
            [row["OCV1"], row["OCV1+OSV"], row["OCV1+OCV2+OSV"], row["All"]]
        )
        assert refinement_holds([row["OSV"], row["OIV+OSV"]])

    def test_full_msv_near_exact(self, smoke_functions):
        """Table II shape: 'All' lands within a whisker of exact."""
        row = table2_row(4, smoke_functions[4])
        assert row["All"] >= 0.98 * row["exact"]

    def test_skipping_exact(self, smoke_functions):
        row = table2_row(4, smoke_functions[4], exact=False)
        assert row["exact"] is None


class TestTable3:
    def test_row_shape(self, smoke_functions):
        row = table3_row(4, smoke_functions[4], kitty_max_n=4, kitty_limit=40)
        assert row["kitty_functions"] == 40
        assert row["kitty_classes"] is not None
        for method in ("huang13", "petkovska16", "zhou20", "ours"):
            assert row[f"{method}_classes"] >= 1
            assert row[f"{method}_seconds"] >= 0

    def test_accuracy_directions(self, smoke_functions):
        """Heuristics overcount, ours undercounts (or hits) exact."""
        row = table3_row(5, smoke_functions[5], kitty_max_n=0)
        exact = row["exact"]
        assert row["huang13_classes"] >= exact
        assert row["petkovska16_classes"] >= exact
        assert row["zhou20_classes"] >= exact
        assert row["ours_classes"] <= exact
        # Table III shape: huang13 is the least accurate baseline.
        assert row["huang13_classes"] >= row["petkovska16_classes"]
        assert row["huang13_classes"] >= row["zhou20_classes"]

    def test_kitty_skipped_beyond_limit(self, smoke_functions):
        row = table3_row(6, smoke_functions[6], kitty_max_n=5, exact=False)
        assert row["kitty_classes"] is None


class TestFig5:
    def test_series_shape(self):
        row = fig5_series(5, counts=(50, 100, 200), methods=("ours",), seed=1)
        assert row["points"] == [50, 100, 200]
        assert len(row["ours"]) == 3
        assert row["ours"] == sorted(row["ours"])  # cumulative


class TestFig34:
    def test_witnesses_exist(self):
        assert find_fig3_witness() is not None
        assert find_fig4_g_witness() is not None
        assert find_fig4_h_witness() is not None

    def test_all_claims_hold(self):
        rows = run_fig34()
        assert len(rows) == 3
        assert all(row["holds"] for row in rows)

    def test_fig4_pairs_defeat_weaker_signatures(self):
        """The reconstructed pairs collide under cofactor-only MSVs."""
        from repro.core.classifier import FacePointClassifier

        g1, g2 = find_fig4_g_witness()
        cofactor_only = FacePointClassifier(["c0", "ocv1", "ocv2"])
        assert cofactor_only.count_classes([g1, g2]) == 1
        with_oiv = FacePointClassifier(["c0", "ocv1", "ocv2", "oiv"])
        assert with_oiv.count_classes([g1, g2]) == 2

        h1, h2 = find_fig4_h_witness()
        with_influence = FacePointClassifier(["c0", "ocv1", "ocv2", "oiv"])
        assert with_influence.count_classes([h1, h2]) == 1
        with_osv = FacePointClassifier(["c0", "ocv1", "ocv2", "oiv", "osv"])
        assert with_osv.count_classes([h1, h2]) == 2


@pytest.mark.integration
class TestEndToEndSoundness:
    """The never-split invariant on circuit-derived functions."""

    def test_planted_orbits_in_cut_functions(self, smoke_functions):
        from repro.core.classifier import FacePointClassifier
        from repro.core.transforms import random_transform
        import random

        rng = random.Random(0)
        tables = list(smoke_functions[5])[:100]
        planted = [tt.apply(random_transform(5, rng)) for tt in tables]
        clf = FacePointClassifier()
        base = clf.count_classes(tables)
        assert clf.count_classes(tables + planted) == base

    def test_random_workload_matches_exact_at_n4(self):
        from repro.baselines.exact import ExactClassifier
        from repro.core.classifier import FacePointClassifier

        tables = random_tables(4, 500, seed=9)
        ours = FacePointClassifier().count_classes(tables)
        exact = ExactClassifier().count_classes(tables)
        assert ours <= exact
        assert ours >= 0.99 * exact
