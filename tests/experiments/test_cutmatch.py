"""Tests for the AIG cut-matching experiment and the cut-function stream."""

import pytest

from repro.aig import builders
from repro.aig.cuts import iter_cut_functions
from repro.core.truth_table import TruthTable
from repro.experiments.cutmatch import (
    class_hit_rows,
    cut_match_rows,
    run_cut_matching,
)
from repro.library import build_exhaustive_library, build_library


@pytest.fixture(scope="module")
def lib23():
    """Complete class inventory for arities 2 and 3."""
    lib2 = build_exhaustive_library(2)
    return lib2.merged_with(build_exhaustive_library(3))


class TestIterCutFunctions:
    def test_yields_only_wanted_sizes(self):
        aig = builders.ripple_adder(4)
        for _, cut, tt in iter_cut_functions(aig, sizes=(3,)):
            assert cut.size == 3
            assert tt.n == 3

    def test_function_matches_cut_arity(self):
        aig = builders.majority_voter(5)
        seen = 0
        for _, cut, tt in iter_cut_functions(aig, sizes=(2, 3)):
            assert tt.n == cut.size
            seen += 1
        assert seen > 0

    def test_deterministic_order(self):
        aig = builders.ripple_adder(4)
        first = [(v, c.leaves, t.bits) for v, c, t in iter_cut_functions(aig, (2, 3))]
        second = [(v, c.leaves, t.bits) for v, c, t in iter_cut_functions(aig, (2, 3))]
        assert first == second

    def test_rejects_bad_sizes_at_call_time(self):
        """The size check must fire eagerly, not at first iteration."""
        aig = builders.ripple_adder(2)
        with pytest.raises(ValueError):
            iter_cut_functions(aig, sizes=())
        with pytest.raises(ValueError):
            iter_cut_functions(aig, sizes=(0,))


class TestRunCutMatching:
    def test_complete_library_hits_every_cut(self, lib23):
        circuits = {
            "adder": builders.ripple_adder(4),
            "parity": builders.parity(6),
        }
        rows, class_hits = run_cut_matching(lib23, circuits, sizes=(2, 3))
        by_name = {row["circuit"]: row for row in rows}
        assert set(by_name) == {"adder", "parity", "TOTAL"}
        total = by_name["TOTAL"]
        assert total["cuts"] > 0
        assert total["matched"] == total["cuts"]
        assert total["hit_rate"] == 1.0
        assert total["unique_matched"] == total["unique_functions"]
        assert sum(class_hits.values()) == total["matched"]

    def test_total_row_aggregates_circuits(self, lib23):
        circuits = {
            "a": builders.ripple_adder(3),
            "b": builders.majority_voter(5),
        }
        rows, _ = run_cut_matching(lib23, circuits, sizes=(3,))
        by_name = {row["circuit"]: row for row in rows}
        assert by_name["TOTAL"]["cuts"] == by_name["a"]["cuts"] + by_name["b"]["cuts"]
        assert (
            by_name["TOTAL"]["matched"]
            == by_name["a"]["matched"] + by_name["b"]["matched"]
        )

    def test_partial_library_reports_misses(self):
        # A library holding only the AND class cannot cover an adder's
        # XOR-shaped cuts: the hit rate must drop below 1 and the missing
        # functions must be reported, not silently dropped.
        tiny = build_library([TruthTable.from_function(2, lambda a, b: a & b)])
        rows, class_hits = run_cut_matching(
            tiny, {"adder": builders.ripple_adder(4)}, sizes=(2,)
        )
        total = next(row for row in rows if row["circuit"] == "TOTAL")
        assert 0 < total["matched"] < total["cuts"]
        assert 0 < total["hit_rate"] < 1
        assert set(class_hits) == {entry.class_id for entry in tiny.entries()}

    def test_every_reported_hit_carries_verified_witness(self, lib23):
        aig = builders.ripple_adder(3)
        for _, _, tt in iter_cut_functions(aig, sizes=(2, 3)):
            hit = lib23.match(tt)
            assert hit is not None
            assert hit.verify(tt)


class TestReportRows:
    def test_class_hit_rows_are_ranked_and_capped(self, lib23):
        circuits = {"voter": builders.majority_voter(7)}
        _, class_hits = run_cut_matching(lib23, circuits, sizes=(2, 3))
        rows = class_hit_rows(lib23, class_hits, top=3)
        assert len(rows) == min(3, len(class_hits))
        hits = [row["hits"] for row in rows]
        assert hits == sorted(hits, reverse=True)
        for row in rows:
            assert row["class_id"] in lib23.classes

    def test_cut_match_rows_append_library_coverage(self, lib23):
        circuits = {"adder": builders.ripple_adder(3)}
        rows, class_hits = run_cut_matching(lib23, circuits, sizes=(3,))
        summary = cut_match_rows(lib23, rows, class_hits)
        coverage = summary[-1]
        assert coverage["circuit"] == "library classes hit"
        assert coverage["cuts"] == len(class_hits)
        assert 0 < coverage["hit_rate"] <= 1
