"""Tests for the ordered signature vectors, anchored on the paper's Table I.

``f1`` is the 3-majority of Fig. 1a; ``f3`` is the function of Fig. 1c
(the x3 projection — identified from its printed signature values).
Every assertion in ``TestTableOne`` is a number printed in the paper.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import signatures as sig
from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable

F1 = TruthTable.majority(3)
F3 = TruthTable.projection(3, 2)


class TestTableOne:
    """Exact reproduction of every cell of the paper's Table I."""

    def test_ocv1(self):
        assert sig.ocv1(F1) == (1, 1, 1, 3, 3, 3)
        assert sig.ocv1(F3) == (0, 2, 2, 2, 2, 4)

    def test_ocv2(self):
        assert sig.ocv2(F1) == (0, 0, 0, 1, 1, 1, 1, 1, 1, 2, 2, 2)
        assert sig.ocv2(F3) == (0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2)

    def test_oiv(self):
        assert sig.oiv(F1) == (2, 2, 2)
        assert sig.oiv(F3) == (0, 0, 4)

    def test_osv1(self):
        assert sig.osv1(F1) == (0, 2, 2, 2)
        assert sig.osv1(F3) == (1, 1, 1, 1)

    def test_osv0(self):
        assert sig.osv0(F1) == (0, 2, 2, 2)
        assert sig.osv0(F3) == (1, 1, 1, 1)

    def test_osv(self):
        assert sig.osv(F1) == (0, 0, 2, 2, 2, 2, 2, 2)
        assert sig.osv(F3) == (1, 1, 1, 1, 1, 1, 1, 1)

    def test_osdv1(self):
        assert sig.osdv1(F1) == (0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0)
        assert sig.osdv1(F3) == (0, 0, 0, 4, 2, 0, 0, 0, 0, 0, 0, 0)

    def test_osdv(self):
        assert sig.osdv(F1) == (0, 0, 1, 0, 0, 0, 6, 6, 3, 0, 0, 0)
        assert sig.osdv(F3) == (0, 0, 0, 12, 12, 4, 0, 0, 0, 0, 0, 0)


class TestVectorShapes:
    def test_ocv_lengths(self):
        rng = random.Random(0)
        tt = TruthTable.random(5, rng)
        assert len(sig.ocv1(tt)) == 10  # 2n
        assert len(sig.ocv2(tt)) == 40  # C(n,2) * 4
        assert len(sig.ocv(tt, 3)) == 80  # C(5,3) * 8

    def test_osv_lengths(self):
        rng = random.Random(1)
        tt = TruthTable.random(4, rng)
        assert len(sig.osv(tt)) == 16
        assert len(sig.osv1(tt)) == tt.count_ones()
        assert len(sig.osv0(tt)) == tt.count_zeros()

    def test_osdv_length(self):
        rng = random.Random(2)
        tt = TruthTable.random(4, rng)
        assert len(sig.osdv(tt)) == 4 * 5  # n * (n + 1)
        assert len(sig.osdv1(tt)) == 4 * 5

    def test_histogram_equals_sorted_multiset(self):
        rng = random.Random(3)
        for n in range(1, 7):
            tt = TruthTable.random(n, rng)
            hist = sig.osv_histogram(tt)
            rebuilt = tuple(
                level for level, count in enumerate(hist) for _ in range(count)
            )
            assert rebuilt == sig.osv(tt)

    def test_osv01_histograms_consistent(self):
        rng = random.Random(4)
        tt = TruthTable.random(5, rng)
        hist0, hist1 = sig.osv01_histograms(tt)
        merged = tuple(a + b for a, b in zip(hist0, hist1))
        assert merged == sig.osv_histogram(tt)


class TestDefinitionRelations:
    def test_osv_is_merge_of_osv0_osv1(self):
        """Definition 8: OSV = {OSV1, OSV0} as multisets."""
        rng = random.Random(5)
        for n in range(1, 7):
            tt = TruthTable.random(n, rng)
            assert tuple(sorted(sig.osv0(tt) + sig.osv1(tt))) == sig.osv(tt)

    def test_osdv_pair_totals(self):
        """Row i of OSDV sums to C(count_i, 2) where count_i = OSV hist."""
        rng = random.Random(6)
        for n in range(2, 6):
            tt = TruthTable.random(n, rng)
            hist = sig.osv_histogram(tt)
            flat = sig.osdv(tt)
            for level in range(n + 1):
                row = flat[level * n : (level + 1) * n]
                count = hist[level]
                assert sum(row) == count * (count - 1) // 2

    def test_osdv_naive_crosscheck(self):
        """Definition 10 computed by the naive O(4^n) pair scan."""
        rng = random.Random(7)
        from repro.core.characteristics import sensitivity_profile

        for n in range(1, 5):
            tt = TruthTable.random(n, rng)
            profile = sensitivity_profile(tt)
            expected = []
            for level in range(n + 1):
                row = [0] * n
                words = [m for m in range(1 << n) if profile[m] == level]
                for a in range(len(words)):
                    for b in range(a + 1, len(words)):
                        dist = bin(words[a] ^ words[b]).count("1")
                        row[dist - 1] += 1
                expected.extend(row)
            assert sig.osdv(tt) == tuple(expected)

    def test_constant_function_vectors(self):
        one = TruthTable.constant(3, 1)
        assert sig.oiv(one) == (0, 0, 0)
        assert sig.osv(one) == (0,) * 8
        assert sig.osv0(one) == ()
        # All 8 words share sensitivity level 0: 12/12/4 pairs by distance.
        assert sig.osdv(one)[:3] == (12, 12, 4)


class TestTheoremInvariance:
    """Theorems 1-4 as randomized checks (PN transforms preserve vectors)."""

    @pytest.mark.parametrize("n", range(1, 6))
    def test_pn_invariance_all_vectors(self, n):
        rng = random.Random(n * 37)
        for _ in range(15):
            tt = TruthTable.random(n, rng)
            transform = random_transform(n, rng)
            if transform.output_phase:
                transform = type(transform)(
                    transform.perm, transform.input_phase, 0
                )
            image = tt.apply(transform)
            assert sig.ocv1(image) == sig.ocv1(tt)
            assert sig.ocv2(image) == sig.ocv2(tt)
            assert sig.oiv(image) == sig.oiv(tt)  # Theorem 1
            assert sig.osv(image) == sig.osv(tt)  # Theorem 2
            assert sig.osv0(image) == sig.osv0(tt)
            assert sig.osv1(image) == sig.osv1(tt)
            assert sig.osdv(image) == sig.osdv(tt)  # Theorem 4
            assert sig.osdv0(image) == sig.osdv0(tt)
            assert sig.osdv1(image) == sig.osdv1(tt)

    @pytest.mark.parametrize("n", range(1, 6))
    def test_output_negation_swaps_split_vectors(self, n):
        """Theorem 3 mechanics: complementation swaps the 0/1 splits."""
        rng = random.Random(n * 41)
        for _ in range(15):
            tt = TruthTable.random(n, rng)
            neg = ~tt
            assert sig.osv0(neg) == sig.osv1(tt)
            assert sig.osv1(neg) == sig.osv0(tt)
            assert sig.osdv0(neg) == sig.osdv1(tt)
            assert sig.osdv1(neg) == sig.osdv0(tt)
            assert sig.osv(neg) == sig.osv(tt)
            assert sig.osdv(neg) == sig.osdv(tt)
            assert sig.oiv(neg) == sig.oiv(tt)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.randoms(use_true_random=False))
def test_property_npn_equivalents_share_invariant_vectors(n, rng):
    """Full NPN transforms preserve the output-polarity-free vectors."""
    tt = TruthTable(n, rng.getrandbits(1 << n))
    image = tt.apply(random_transform(n, rng))
    assert sig.oiv(image) == sig.oiv(tt)
    assert sig.osv(image) == sig.osv(tt)
    assert sig.osdv(image) == sig.osdv(tt)
    assert {sig.osv0(image), sig.osv1(image)} == {sig.osv0(tt), sig.osv1(tt)}
