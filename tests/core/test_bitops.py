"""Unit and property tests for the bit-level truth-table kernel."""

import itertools
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitops


def random_table(rng: random.Random, n: int) -> int:
    return rng.getrandbits(1 << n) if n > 0 else rng.getrandbits(1)


def eval_table(table: int, n: int, assignment: tuple[int, ...]) -> int:
    index = sum(bit << i for i, bit in enumerate(assignment))
    return (table >> index) & 1


tables = st.tuples(st.integers(min_value=1, max_value=6), st.data())


class TestMasks:
    def test_table_mask_widths(self):
        assert bitops.table_mask(0) == 0b1
        assert bitops.table_mask(1) == 0b11
        assert bitops.table_mask(3) == 0xFF
        assert bitops.table_mask(6) == (1 << 64) - 1

    def test_var_mask_small_patterns(self):
        assert bitops.var_mask(3, 0) == 0b10101010
        assert bitops.var_mask(3, 1) == 0b11001100
        assert bitops.var_mask(3, 2) == 0b11110000

    @pytest.mark.parametrize("n", range(1, 9))
    def test_var_mask_semantics(self, n):
        for i in range(n):
            mask = bitops.var_mask(n, i)
            for m in range(1 << n):
                assert ((mask >> m) & 1) == ((m >> i) & 1)

    def test_var_mask_bounds(self):
        with pytest.raises(ValueError):
            bitops.var_mask(3, 3)
        with pytest.raises(ValueError):
            bitops.var_mask(3, -1)
        with pytest.raises(ValueError):
            bitops.table_mask(bitops.MAX_VARS + 1)

    @pytest.mark.parametrize("n", range(1, 10))
    def test_var_mask_is_balanced(self, n):
        for i in range(n):
            assert bitops.popcount(bitops.var_mask(n, i)) == 1 << (n - 1)

    def test_all_var_masks(self):
        assert bitops.all_var_masks(3) == tuple(bitops.var_mask(3, i) for i in range(3))


class TestFlips:
    def test_flip_output(self):
        assert bitops.flip_output(0b11101000, 3) == 0b00010111

    def test_flip_output_involution(self):
        rng = random.Random(7)
        for n in range(1, 8):
            t = random_table(rng, n)
            assert bitops.flip_output(bitops.flip_output(t, n), n) == t

    @pytest.mark.parametrize("n", range(1, 7))
    def test_flip_input_semantics(self, n):
        rng = random.Random(n)
        t = random_table(rng, n)
        for i in range(n):
            flipped = bitops.flip_input(t, n, i)
            for m in range(1 << n):
                assert ((flipped >> m) & 1) == ((t >> (m ^ (1 << i))) & 1)

    def test_flip_input_involution(self):
        rng = random.Random(13)
        for n in range(1, 8):
            t = random_table(rng, n)
            for i in range(n):
                assert bitops.flip_input(bitops.flip_input(t, n, i), n, i) == t

    @pytest.mark.parametrize("n", range(1, 6))
    def test_flip_inputs_phase_word(self, n):
        rng = random.Random(n * 31)
        t = random_table(rng, n)
        for phase in range(1 << n):
            expected = t
            for i in range(n):
                if (phase >> i) & 1:
                    expected = bitops.flip_input(expected, n, i)
            assert bitops.flip_inputs(t, n, phase) == expected

    def test_flip_inputs_order_independent(self):
        # Input flips on distinct variables commute.
        rng = random.Random(5)
        t = random_table(rng, 5)
        a = bitops.flip_input(bitops.flip_input(t, 5, 1), 5, 3)
        b = bitops.flip_input(bitops.flip_input(t, 5, 3), 5, 1)
        assert a == b == bitops.flip_inputs(t, 5, 0b01010)


class TestSwapsAndPermutations:
    @pytest.mark.parametrize("n", range(2, 7))
    def test_swap_semantics(self, n):
        rng = random.Random(n * 17)
        t = random_table(rng, n)
        for i in range(n):
            for j in range(n):
                swapped = bitops.swap_inputs(t, n, i, j)
                for m in range(1 << n):
                    bi, bj = (m >> i) & 1, (m >> j) & 1
                    src = m & ~((1 << i) | (1 << j))
                    src |= (bj << i) | (bi << j)
                    assert ((swapped >> m) & 1) == ((t >> src) & 1)

    def test_swap_involution_and_identity(self):
        rng = random.Random(3)
        t = random_table(rng, 6)
        assert bitops.swap_inputs(t, 6, 2, 2) == t
        assert bitops.swap_inputs(bitops.swap_inputs(t, 6, 1, 4), 6, 4, 1) == t

    @pytest.mark.parametrize("n", range(1, 6))
    def test_permute_matches_reference_exhaustive(self, n):
        rng = random.Random(n * 101)
        t = random_table(rng, n)
        for perm in itertools.permutations(range(n)):
            assert bitops.permute_inputs(t, n, perm) == (
                bitops.permute_inputs_reference(t, n, perm)
            )

    def test_permute_identity(self):
        rng = random.Random(11)
        t = random_table(rng, 7)
        assert bitops.permute_inputs(t, 7, tuple(range(7))) == t

    def test_permute_composition(self):
        # permute(permute(f, sigma), tau) == permute(f, [tau[sigma[k]]]).
        rng = random.Random(23)
        n = 6
        t = random_table(rng, n)
        for _ in range(20):
            sigma = tuple(rng.sample(range(n), n))
            tau = tuple(rng.sample(range(n), n))
            left = bitops.permute_inputs(bitops.permute_inputs(t, n, sigma), n, tau)
            composed = tuple(tau[sigma[k]] for k in range(n))
            assert left == bitops.permute_inputs(t, n, composed)

    def test_permute_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            bitops.permute_inputs(0b1010, 2, (0, 0))
        with pytest.raises(ValueError):
            bitops.permute_inputs(0b1010, 2, (0, 1, 2))

    def test_permute_on_projection_function(self):
        # Moving variable x_0 into slot 2 turns the x_0 projection into x_2.
        n = 3
        proj_x0 = bitops.var_mask(n, 0)
        perm = (2, 0, 1)  # slot 0 reads old x_2, slot 1 reads x_0, slot 2 reads x_1
        moved = bitops.permute_inputs(proj_x0, n, perm)
        # g(x) = f(x_2, x_0, x_1) = x_2 for f = x_0-projection.
        assert moved == bitops.var_mask(n, 2)


class TestTransformReference:
    @pytest.mark.parametrize("n", range(1, 5))
    def test_reference_identity(self, n):
        rng = random.Random(n)
        t = random_table(rng, n)
        assert bitops.apply_transform_reference(t, n, tuple(range(n)), 0, 0) == t

    def test_reference_output_negation(self):
        t = 0b0110
        assert bitops.apply_transform_reference(t, 2, (0, 1), 0, 1) == 0b1001

    def test_reference_composes_flip_and_permute(self):
        # The transform semantics is: flip f's inputs first, then permute.
        rng = random.Random(77)
        n = 4
        t = random_table(rng, n)
        perm = (2, 0, 3, 1)
        phase = 0b0110
        via_parts = bitops.flip_inputs(t, n, phase)
        via_parts = bitops.permute_inputs(via_parts, n, perm)
        assert via_parts == bitops.apply_transform_reference(t, n, perm, phase, 0)


class TestCofactorProjection:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_project_semantics(self, n):
        rng = random.Random(n * 7)
        t = random_table(rng, n)
        for i in range(n):
            for v in (0, 1):
                sub = bitops.project_cofactor(t, n, i, v)
                for m in range(1 << (n - 1)):
                    low = m & ((1 << i) - 1)
                    high = (m >> i) << (i + 1)
                    full = low | (v << i) | high
                    assert ((sub >> m) & 1) == ((t >> full) & 1)

    def test_project_fits_width(self):
        rng = random.Random(19)
        for n in range(1, 7):
            t = random_table(rng, n)
            for i in range(n):
                for v in (0, 1):
                    sub = bitops.project_cofactor(t, n, i, v)
                    assert sub <= bitops.table_mask(max(n - 1, 0))

    def test_project_rejects_bad_args(self):
        with pytest.raises(ValueError):
            bitops.project_cofactor(0b1010, 2, 2, 0)
        with pytest.raises(ValueError):
            bitops.project_cofactor(0b1010, 2, 0, 2)

    @pytest.mark.parametrize("n", range(0, 6))
    def test_insert_then_project_roundtrip(self, n):
        rng = random.Random(n * 13)
        t = random_table(rng, n)
        for i in range(n + 1):
            widened = bitops.insert_variable(t, n, i)
            assert bitops.project_cofactor(widened, n + 1, i, 0) == t
            assert bitops.project_cofactor(widened, n + 1, i, 1) == t

    def test_insert_makes_variable_redundant(self):
        t = 0b0110  # XOR of two variables
        widened = bitops.insert_variable(t, 2, 1)
        assert bitops.flip_input(widened, 3, 1) == widened


class TestSensitivityWord:
    def test_majority_sensitivity_word(self):
        maj = 0b11101000  # 3-majority, f1 of the paper's Fig. 1a
        # Flipping x_0 changes the output exactly on words where the other
        # two variables disagree.
        word = bitops.sensitivity_word(maj, 3, 0)
        expected = 0
        for m in range(8):
            if ((maj >> m) & 1) != ((maj >> (m ^ 1)) & 1):
                expected |= 1 << m
        assert word == expected

    def test_sensitivity_word_even_popcount(self):
        rng = random.Random(29)
        for n in range(1, 8):
            t = random_table(rng, n)
            for i in range(n):
                assert bitops.popcount(bitops.sensitivity_word(t, n, i)) % 2 == 0

    def test_constant_is_insensitive(self):
        for n in range(1, 6):
            assert bitops.sensitivity_word(0, n, 0) == 0
            assert bitops.sensitivity_word(bitops.table_mask(n), n, n - 1) == 0


class TestNumpyBridge:
    @pytest.mark.parametrize("n", range(0, 9))
    def test_bit_array_roundtrip(self, n):
        rng = random.Random(n + 41)
        t = random_table(rng, n)
        bits = bitops.to_bit_array(t, n)
        assert bits.shape == (1 << n,)
        assert bitops.from_bit_array(bits) == t

    def test_bit_array_order(self):
        bits = bitops.to_bit_array(0b0001, 2)
        assert list(bits) == [1, 0, 0, 0]

    def test_popcount_table(self):
        table = bitops.popcount_table(4)
        for m in range(16):
            assert table[m] == bin(m).count("1")

    def test_indices_by_weight_partition(self):
        groups = bitops.indices_by_weight(5)
        assert len(groups) == 6
        combined = np.concatenate(groups)
        assert sorted(combined.tolist()) == list(range(32))
        for w, idx in enumerate(groups):
            assert all(bin(int(m)).count("1") == w for m in idx)

    def test_hamming_distance(self):
        assert bitops.hamming_distance(0b0110, 0b0101) == 2
        assert bitops.hamming_distance(7, 7) == 0


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=7), st.randoms(use_true_random=False))
def test_property_flip_permute_interchange(n, rng):
    """permute then flip == flip (relabelled) then permute."""
    t = rng.getrandbits(1 << n)
    perm = tuple(rng.sample(range(n), n))
    i = rng.randrange(n)
    # g(x) = f(x_perm[0], ...); flipping g's variable i negates the
    # f-input slot that reads it, i.e. f-variable perm^{-1}[i].
    left = bitops.flip_input(bitops.permute_inputs(t, n, perm), n, i)
    right = bitops.permute_inputs(bitops.flip_input(t, n, perm.index(i)), n, perm)
    assert left == right


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=7), st.randoms(use_true_random=False))
def test_property_popcount_split_by_variable(n, rng):
    """|f| = |f & x_i| + |f & ~x_i| for every variable."""
    t = rng.getrandbits(1 << n)
    total = bitops.popcount(t)
    for i in range(n):
        mask = bitops.var_mask(n, i)
        pos = bitops.popcount(t & mask)
        neg = bitops.popcount(t & ~mask & bitops.table_mask(n))
        assert pos + neg == total


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.randoms(use_true_random=False))
def test_property_projection_counts(n, rng):
    """Satisfy count of a projected cofactor equals the masked popcount."""
    t = rng.getrandbits(1 << n)
    for i in range(n):
        mask = bitops.var_mask(n, i)
        assert bitops.popcount(bitops.project_cofactor(t, n, i, 1)) == (
            bitops.popcount(t & mask)
        )
        assert bitops.popcount(bitops.project_cofactor(t, n, i, 0)) == (
            bitops.popcount(t & ~mask & bitops.table_mask(n))
        )
