"""Tests for face/point characteristics (paper Definitions 1-5)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import characteristics as chars
from repro.core.truth_table import TruthTable

MAJ3 = TruthTable.majority(3)  # paper f1
PROJ3 = TruthTable.projection(3, 2)  # paper f3 (the x3 projection)


class TestCofactorCounts:
    def test_zero_ary_is_satisfy_count(self):
        assert chars.cofactor_count(MAJ3, (), 0) == 4
        assert chars.cofactor_counts(MAJ3, 0) == (4,)

    def test_majority_one_ary(self):
        # MAJ3 | xi=1 = OR(others) -> 3;  | xi=0 = AND(others) -> 1.
        assert chars.cofactor_counts_1ary(MAJ3) == (1, 3, 1, 3, 1, 3)

    def test_one_ary_agrees_with_generic(self):
        rng = random.Random(0)
        for _ in range(10):
            tt = TruthTable.random(5, rng)
            generic = chars.cofactor_counts(tt, 1)
            # Generic order: subsets lexicographic = (x0), (x1), ...; values 0,1.
            assert generic == chars.cofactor_counts_1ary(tt)

    def test_two_ary_counts_naive(self):
        rng = random.Random(1)
        tt = TruthTable.random(4, rng)
        counts = chars.cofactor_counts(tt, 2)
        assert len(counts) == 6 * 4
        expected = []
        for i in range(4):
            for j in range(i + 1, 4):
                for v in range(4):
                    vi, vj = v & 1, (v >> 1) & 1
                    total = sum(
                        1
                        for m in range(16)
                        if tt.evaluate(m)
                        and (m >> i) & 1 == vi
                        and (m >> j) & 1 == vj
                    )
                    expected.append(total)
        assert sorted(counts) == sorted(expected)

    def test_full_arity_counts_are_bits(self):
        rng = random.Random(2)
        tt = TruthTable.random(3, rng)
        counts = chars.cofactor_counts(tt, 3)
        assert sorted(counts) == sorted(
            tt.evaluate(m) for m in range(8)
        )

    def test_arity_edges(self):
        assert chars.cofactor_counts(MAJ3, 4) == ()  # no 4-subsets of 3 vars
        with pytest.raises(ValueError):
            chars.cofactor_counts(MAJ3, -1)


class TestSensitivity:
    def test_is_sensitive_at_paper_example(self):
        # Paper Section II-C: f1 is sensitive at x2 for the word 100.
        # Word "100" in the paper is (x1, x2, x3) = (1, 0, 0) -> index 0b001.
        assert chars.is_sensitive_at(MAJ3, 0b001, 1)

    def test_local_sensitivity_majority(self):
        # sen(f1, 111) = 0 and sen = 2 on the other 1-words.
        assert chars.local_sensitivity(MAJ3, 0b111) == 0
        for word in (0b011, 0b101, 0b110):
            assert chars.local_sensitivity(MAJ3, word) == 2

    def test_profile_matches_pointwise(self):
        rng = random.Random(3)
        for n in range(1, 6):
            tt = TruthTable.random(n, rng)
            profile = chars.sensitivity_profile(tt)
            for m in range(1 << n):
                assert profile[m] == chars.local_sensitivity(tt, m)

    def test_global_sensitivity(self):
        assert chars.sensitivity(MAJ3) == 2
        assert chars.sensitivity(PROJ3) == 1
        xor3 = TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c)
        assert chars.sensitivity(xor3) == 3

    def test_sensitivity01(self):
        assert chars.sensitivity01(MAJ3) == (2, 2)
        assert chars.sensitivity01(PROJ3) == (1, 1)
        and3 = TruthTable.from_function(3, lambda a, b, c: a & b & c)
        # The lone 1-word 111 has sensitivity 3; best 0-word has 1.
        assert chars.sensitivity01(and3) == (1, 3)

    def test_constant_sensitivity(self):
        assert chars.sensitivity(TruthTable.constant(4, 0)) == 0
        assert chars.sensitivity01(TruthTable.constant(4, 1)) == (0, 0)


class TestInfluence:
    def test_majority_influences(self):
        # Each variable of MAJ3 is sensitive on 4 words -> integer inf 2.
        assert chars.influences(MAJ3) == (2, 2, 2)

    def test_projection_influences(self):
        assert chars.influences(PROJ3) == (0, 0, 4)

    def test_influence_fraction(self):
        assert chars.influence_fraction(MAJ3, 0) == pytest.approx(0.5)
        assert chars.influence_fraction(PROJ3, 2) == pytest.approx(1.0)
        assert chars.influence_fraction(PROJ3, 0) == 0.0

    def test_xor_has_maximal_influence(self):
        xor4 = TruthTable.from_function(4, lambda *xs: xs[0] ^ xs[1] ^ xs[2] ^ xs[3])
        assert chars.influences(xor4) == (8, 8, 8, 8)

    def test_total_influence(self):
        assert chars.total_influence(MAJ3) == 6
        assert chars.total_influence(PROJ3) == 4


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=7), st.randoms(use_true_random=False))
def test_property_influence_is_integer_halved(n, rng):
    """Footnote 1: the raw sensitive-word count is always even."""
    tt = TruthTable(n, rng.getrandbits(1 << n))
    for i in range(n):
        raw = sum(
            1 for m in range(1 << n) if tt.evaluate(m) != tt.evaluate(m ^ (1 << i))
        ) if n <= 5 else None
        if raw is not None:
            assert raw % 2 == 0
            assert chars.influence(tt, i) == raw // 2


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=8), st.randoms(use_true_random=False))
def test_property_total_influence_is_mean_sensitivity(n, rng):
    """sum_i inf(f,i) * 2 == sum_X sen(f,X) — influence vs sensitivity link."""
    tt = TruthTable(n, rng.getrandbits(1 << n))
    assert 2 * chars.total_influence(tt) == int(chars.sensitivity_profile(tt).sum())


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=7), st.randoms(use_true_random=False))
def test_property_characteristics_survive_output_negation(n, rng):
    """Sensitivity and influence ignore output polarity; cofactors complement."""
    tt = TruthTable(n, rng.getrandbits(1 << n))
    neg = ~tt
    assert chars.influences(tt) == chars.influences(neg)
    assert (chars.sensitivity_profile(tt) == chars.sensitivity_profile(neg)).all()
    face = 1 << (n - 1)
    ours = chars.cofactor_counts_1ary(tt)
    theirs = chars.cofactor_counts_1ary(neg)
    assert tuple(face - c for c in ours) == theirs


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.randoms(use_true_random=False))
def test_property_sensitivity_bounded_by_support(n, rng):
    """sen(f, X) never exceeds the essential-variable count."""
    tt = TruthTable(n, rng.getrandbits(1 << n))
    bound = len(tt.support())
    assert chars.sensitivity(tt) <= bound
