"""Tests for the face/point classifier (Algorithm 1)."""

import random

import pytest

from repro.core.classifier import ClassificationResult, FacePointClassifier
from repro.core.transforms import all_transforms, random_transform
from repro.core.truth_table import TruthTable


class TestBasicClassification:
    def test_orbit_collapses_to_one_class(self):
        maj = TruthTable.majority(3)
        orbit = {maj.apply(t) for t in all_transforms(3)}
        result = FacePointClassifier().classify(orbit)
        assert result.num_classes == 1
        assert result.num_functions == len(orbit)

    def test_distinct_functions_split(self):
        tables = [
            TruthTable.majority(3),
            TruthTable.projection(3, 0),
            TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c),
            TruthTable.constant(3, 0),
        ]
        result = FacePointClassifier().classify(tables)
        assert result.num_classes == 4

    def test_empty_input(self):
        result = FacePointClassifier().classify([])
        assert result.num_classes == 0
        assert result.num_functions == 0

    def test_count_classes_matches_classify(self):
        rng = random.Random(0)
        tables = [TruthTable.random(4, rng) for _ in range(200)]
        clf = FacePointClassifier()
        assert clf.count_classes(tables) == clf.classify(tables).num_classes

    def test_representatives_and_sizes(self):
        maj = TruthTable.majority(3)
        tables = [maj, ~maj, TruthTable.projection(3, 1)]
        result = FacePointClassifier().classify(tables)
        reps = result.representatives()
        assert len(reps) == 2
        assert result.class_sizes() == [2, 1]

    def test_class_of_lookup(self):
        maj = TruthTable.majority(3)
        result = FacePointClassifier().classify([maj, ~maj])
        assert set(result.class_of(maj.flip_input(0))) == {maj, ~maj}
        assert result.class_of(TruthTable.constant(3, 1)) == []

    def test_merged_with(self):
        clf = FacePointClassifier()
        maj = TruthTable.majority(3)
        left = clf.classify([maj])
        right = clf.classify([~maj, TruthTable.constant(3, 0)])
        merged = left.merged_with(right)
        assert merged.num_classes == 2
        assert merged.num_functions == 3

    def test_merged_with_rejects_other_parts(self):
        a = FacePointClassifier(["oiv"]).classify([])
        b = FacePointClassifier(["osv"]).classify([])
        with pytest.raises(ValueError):
            a.merged_with(b)


class TestPartAblations:
    def test_weaker_parts_give_fewer_or_equal_classes(self):
        """Refinement chain of Table II: more parts -> more classes."""
        rng = random.Random(7)
        tables = [TruthTable.random(4, rng) for _ in range(400)]
        count = lambda parts: FacePointClassifier(parts).count_classes(tables)
        full = count(["c0", "ocv1", "ocv2", "oiv", "osv", "osdv"])
        assert count(["oiv"]) <= count(["oiv", "osv"]) <= full
        assert count(["c0", "ocv1"]) <= count(["c0", "ocv1", "osv"]) <= full

    def test_never_split_across_parts(self):
        """Every part selection keeps NPN orbits together."""
        rng = random.Random(8)
        for parts in (["oiv"], ["osv"], ["c0", "ocv1", "ocv2"], ["osdv"]):
            clf = FacePointClassifier(parts)
            for _ in range(5):
                tt = TruthTable.random(4, rng)
                variants = [tt.apply(random_transform(4, rng)) for _ in range(6)]
                assert clf.classify([tt, *variants]).num_classes == 1


class TestKnownClassCounts:
    """Classifier accuracy against the known NPN class counts.

    Over ALL functions of n variables there are exactly 4 (n=2) and
    14 (n=3) NPN classes; the full MSV achieves both exactly.
    """

    def test_all_two_variable_functions(self):
        tables = [TruthTable(2, bits) for bits in range(16)]
        result = FacePointClassifier().classify(tables)
        assert result.num_classes == 4

    def test_all_three_variable_functions(self):
        tables = [TruthTable(3, bits) for bits in range(256)]
        result = FacePointClassifier().classify(tables)
        assert result.num_classes == 14

    def test_all_one_variable_functions(self):
        tables = [TruthTable(1, bits) for bits in range(4)]
        assert FacePointClassifier().classify(tables).num_classes == 2
