"""Tests for NPN class-library utilities."""

import pytest

from repro.core.classes import (
    KNOWN_CLASS_COUNTS,
    class_distribution,
    npn_class_representatives,
    orbit,
    orbit_size,
    stabilizer_order,
)
from repro.core.transforms import group_order
from repro.core.truth_table import TruthTable


class TestOrbits:
    def test_orbit_contains_function_and_complement(self):
        maj = TruthTable.majority(3)
        members = orbit(maj)
        assert maj in members
        assert ~maj in members

    def test_orbit_size_known_values(self):
        # XOR2's orbit is just {xor, xnor}.
        xor2 = TruthTable.from_binary("0110")
        assert orbit_size(xor2) == 2
        # AND2: 8 and-like functions.
        and2 = TruthTable.from_binary("1000")
        assert orbit_size(and2) == 8
        # Constants: {0, 1}.
        assert orbit_size(TruthTable.constant(3, 0)) == 2

    def test_orbit_size_divides_group_order(self):
        import random

        rng = random.Random(0)
        for n in (2, 3, 4):
            for _ in range(5):
                tt = TruthTable.random(n, rng)
                assert group_order(n) % orbit_size(tt) == 0

    def test_stabilizer_order(self):
        # XOR2 orbit 2, group order 16 -> stabiliser 8 (it is that symmetric).
        xor2 = TruthTable.from_binary("0110")
        assert stabilizer_order(xor2) == 8
        maj = TruthTable.majority(3)
        assert stabilizer_order(maj) * orbit_size(maj) == group_order(3)

    def test_orbit_rejects_large_n(self):
        with pytest.raises(ValueError):
            orbit(TruthTable.constant(6, 0))


class TestRepresentatives:
    def test_counts_match_known(self):
        for n in (0, 1, 2, 3):
            reps = npn_class_representatives(n)
            assert len(reps) == KNOWN_CLASS_COUNTS[n]

    @pytest.mark.slow
    def test_count_n4(self):
        assert len(npn_class_representatives(4)) == KNOWN_CLASS_COUNTS[4]

    def test_representatives_are_canonical_fixpoints(self):
        from repro.baselines.guided import guided_exact_canonical

        for rep in npn_class_representatives(3):
            assert guided_exact_canonical(rep) == rep

    def test_orbits_partition_the_space(self):
        """Sum of orbit sizes over representatives = all 2^2^n functions."""
        total = sum(orbit_size(rep) for rep in npn_class_representatives(3))
        assert total == 1 << (1 << 3)

    def test_rejects_large_n(self):
        with pytest.raises(ValueError):
            npn_class_representatives(5)


class TestDistribution:
    def test_distribution_over_circuit_cuts(self):
        from repro.aig.builders import ripple_adder
        from repro.workloads.extraction import extract_cut_functions

        cuts = extract_cut_functions(ripple_adder(6), sizes=[3])[3]
        distribution = class_distribution(cuts)
        assert sum(distribution.values()) == len(cuts)
        # The adder's cone logic concentrates on few classes.
        assert len(distribution) < len(cuts)

    def test_distribution_counts_orbit_members_together(self):
        maj = TruthTable.majority(3)
        distribution = class_distribution([maj, ~maj, maj.flip_input(0)])
        assert len(distribution) == 1
        assert next(iter(distribution.values())) == 3
