"""Tests for the NPN transformation group."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitops
from repro.core.transforms import (
    NPNTransform,
    all_transforms,
    group_order,
    random_transform,
)


def random_table(rng: random.Random, n: int) -> int:
    return rng.getrandbits(1 << n)


class TestValidation:
    def test_rejects_bad_perm(self):
        with pytest.raises(ValueError):
            NPNTransform((0, 0), 0, 0)

    def test_rejects_bad_phase(self):
        with pytest.raises(ValueError):
            NPNTransform((0, 1), 4, 0)
        with pytest.raises(ValueError):
            NPNTransform((0, 1), 0, 2)

    def test_identity_properties(self):
        t = NPNTransform.identity(4)
        assert t.is_identity
        assert t.n == 4
        assert not NPNTransform((0, 1), 1, 0).is_identity
        assert not NPNTransform((1, 0), 0, 0).is_identity
        assert not NPNTransform((0, 1), 0, 1).is_identity

    def test_from_parts_accepts_list(self):
        t = NPNTransform.from_parts([1, 0], 0b10, 1)
        assert t.perm == (1, 0)


class TestApply:
    @pytest.mark.parametrize("n", range(1, 6))
    def test_apply_matches_reference(self, n):
        rng = random.Random(n * 3 + 1)
        table = random_table(rng, n)
        for _ in range(25):
            t = random_transform(n, rng)
            expected = bitops.apply_transform_reference(
                table, n, t.perm, t.input_phase, t.output_phase
            )
            assert t.apply_table(table, n) == expected

    def test_identity_apply(self):
        rng = random.Random(0)
        for n in range(1, 7):
            table = random_table(rng, n)
            assert NPNTransform.identity(n).apply_table(table, n) == table

    def test_apply_rejects_arity_mismatch(self):
        with pytest.raises(ValueError):
            NPNTransform.identity(3).apply_table(0b0110, 2)

    def test_output_negation_only(self):
        t = NPNTransform((0, 1, 2), 0, 1)
        maj = 0b11101000
        assert t.apply_table(maj, 3) == 0b00010111

    def test_apply_index_consistent_with_apply_table(self):
        rng = random.Random(99)
        n = 4
        table = random_table(rng, n)
        for _ in range(20):
            t = random_transform(n, rng)
            image = t.apply_table(table, n)
            for m in range(1 << n):
                src = t.apply_index(m)
                expected = ((table >> src) & 1) ^ t.output_phase
                assert (image >> m) & 1 == expected


class TestGroupStructure:
    @pytest.mark.parametrize("n", range(1, 5))
    def test_compose_matches_sequential_apply(self, n):
        rng = random.Random(n * 7)
        table = random_table(rng, n)
        for _ in range(30):
            t1 = random_transform(n, rng)
            t2 = random_transform(n, rng)
            sequential = t1.apply_table(t2.apply_table(table, n), n)
            assert t1.compose(t2).apply_table(table, n) == sequential

    @pytest.mark.parametrize("n", range(1, 6))
    def test_inverse_roundtrip(self, n):
        rng = random.Random(n * 11)
        table = random_table(rng, n)
        for _ in range(30):
            t = random_transform(n, rng)
            assert t.inverse().apply_table(t.apply_table(table, n), n) == table
            assert t.apply_table(t.inverse().apply_table(table, n), n) == table

    def test_inverse_composes_to_identity(self):
        rng = random.Random(5)
        for _ in range(20):
            t = random_transform(5, rng)
            assert t.compose(t.inverse()).is_identity
            assert t.inverse().compose(t).is_identity

    def test_compose_associative(self):
        rng = random.Random(17)
        n = 4
        for _ in range(20):
            a, b, c = (random_transform(n, rng) for _ in range(3))
            assert a.compose(b).compose(c) == a.compose(b.compose(c))

    def test_compose_rejects_arity_mismatch(self):
        with pytest.raises(ValueError):
            NPNTransform.identity(2).compose(NPNTransform.identity(3))


class TestEnumeration:
    @pytest.mark.parametrize("n", range(1, 4))
    def test_group_order(self, n):
        transforms = list(all_transforms(n))
        assert len(transforms) == group_order(n)
        assert len(set(transforms)) == len(transforms)

    def test_np_subgroup_order(self):
        transforms = list(all_transforms(3, include_output=False))
        assert len(transforms) == group_order(3) // 2
        assert all(t.output_phase == 0 for t in transforms)

    def test_orbit_of_and2_under_group(self):
        """The NPN orbit of 2-input AND contains exactly the 8 'and-like' functions."""
        and2 = 0b1000
        orbit = {t.apply_table(and2, 2) for t in all_transforms(2)}
        # AND-type functions: exactly one or exactly three minterms set.
        expected = {t for t in range(16) if bin(t).count("1") in (1, 3)}
        assert orbit == expected

    def test_orbit_of_xor_is_small(self):
        xor2 = 0b0110
        orbit = {t.apply_table(xor2, 2) for t in all_transforms(2)}
        assert orbit == {0b0110, 0b1001}

    def test_majority_is_self_dual(self):
        """MAJ3 is invariant under complementing all inputs and the output."""
        maj = 0b11101000
        t = NPNTransform((0, 1, 2), 0b111, 1)
        assert t.apply_table(maj, 3) == maj


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.randoms(use_true_random=False))
def test_property_group_action(n, rng):
    """(t1*t2)(f) == t1(t2(f)) and inverses cancel, for random elements."""
    table = rng.getrandbits(1 << n)
    t1 = random_transform(n, rng)
    t2 = random_transform(n, rng)
    composed = t1.compose(t2)
    assert composed.apply_table(table, n) == t1.apply_table(
        t2.apply_table(table, n), n
    )
    assert composed.inverse().apply_table(composed.apply_table(table, n), n) == table


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.randoms(use_true_random=False))
def test_property_satisfy_count_orbit(n, rng):
    """|t(f)| equals |f| or 2^n - |f| depending on output negation."""
    table = rng.getrandbits(1 << n)
    t = random_transform(n, rng)
    image = t.apply_table(table, n)
    count = bitops.popcount(table)
    expected = (1 << n) - count if t.output_phase else count
    assert bitops.popcount(image) == expected
