"""Signature values of mathematically well-understood function families.

Independent ground truth: for thresholds, parities, bent functions and
read-once ANDs the characteristics have closed forms; these tests pin the
implementation to the mathematics rather than to itself.
"""

from math import comb

import pytest

from repro.core import characteristics as chars
from repro.core import signatures as sig
from repro.core.msv import compute_msv
from repro.core.truth_table import TruthTable


def threshold(n, k):
    """1 iff at least k inputs are set."""
    return TruthTable.from_function(n, lambda *xs: int(sum(xs) >= k))


def parity_fn(n):
    return TruthTable.from_function(n, lambda *xs: sum(xs) % 2)


class TestMajority:
    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_influence_closed_form(self, n):
        """Each MAJ_n variable is sensitive exactly when the others split
        evenly: 2 * C(n-1, (n-1)/2) words -> integer influence C(n-1, m)."""
        maj = TruthTable.majority(n)
        expected = comb(n - 1, (n - 1) // 2)
        assert chars.influences(maj) == (expected,) * n

    @pytest.mark.parametrize("n", [3, 5])
    def test_sensitivity_profile_structure(self, n):
        """sen(MAJ, X) = (n+1)/2 on split-by-one words, else smaller."""
        maj = TruthTable.majority(n)
        assert chars.sensitivity(maj) == (n + 1) // 2
        profile = chars.sensitivity_profile(maj)
        for m in range(1 << n):
            weight = bin(m).count("1")
            if weight in ((n - 1) // 2, (n + 1) // 2):
                assert profile[m] == (n + 1) // 2
            else:
                assert profile[m] == 0

    def test_majority_satisfy_count(self):
        maj5 = TruthTable.majority(5)
        assert maj5.count_ones() == sum(comb(5, k) for k in (3, 4, 5))


class TestParity:
    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_everything_maximally_sensitive(self, n):
        xor = parity_fn(n)
        assert chars.influences(xor) == (1 << (n - 1),) * n
        assert sig.osv(xor) == (n,) * (1 << n)
        assert chars.sensitivity01(xor) == (n, n)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_all_cofactors_balanced(self, n):
        """Restricting parity keeps it balanced at every arity below n."""
        xor = parity_fn(n)
        for ell in range(n):
            face = 1 << (n - ell)
            assert all(c == face // 2 for c in chars.cofactor_counts(xor, ell))

    def test_parity_osdv_concentrated(self):
        """All words share sensitivity n: one dense OSDV row."""
        xor = parity_fn(3)
        flat = sig.osdv(xor)
        # sigma_3 = pairs of all 8 words by distance: (12, 12, 4).
        assert flat[3 * 3 :] == (12, 12, 4)
        assert all(v == 0 for v in flat[: 3 * 3])


class TestThresholds:
    @pytest.mark.parametrize("n,k", [(4, 1), (4, 4), (5, 2)])
    def test_threshold_counts(self, n, k):
        tt = threshold(n, k)
        assert tt.count_ones() == sum(comb(n, j) for j in range(k, n + 1))

    def test_and_influence(self):
        """AND_n: each variable sensitive only on the two all-ones-ish
        words -> integer influence 1."""
        for n in (2, 3, 5):
            and_n = threshold(n, n)
            assert chars.influences(and_n) == (1,) * n

    def test_and_or_equivalent(self):
        """AND and OR are NPN equivalent (De Morgan): identical MSVs."""
        for n in (2, 3, 4):
            and_n = threshold(n, n)
            or_n = threshold(n, 1)
            assert compute_msv(and_n) == compute_msv(or_n)

    def test_threshold_chain_distinct(self):
        """Distinct thresholds of 5 inputs are NPN inequivalent...
        except the complementary pairs k and n+1-k (by De Morgan)."""
        msvs = [compute_msv(threshold(5, k)) for k in range(1, 6)]
        assert msvs[0] == msvs[4]  # OR5 ~ AND5
        assert msvs[1] == msvs[3]  # >=2 of 5 ~ >=4 of 5
        assert len({msvs[0], msvs[1], msvs[2]}) == 3


class TestBentFunctions:
    def test_bent_average_sensitivity_is_half_max(self):
        """Bent functions have average sensitivity exactly n/2: every
        variable's influence is 2^(n-2), half the parity maximum."""
        bent = TruthTable.from_function(4, lambda a, b, c, d: (a & b) ^ (c & d))
        assert chars.influences(bent) == (4, 4, 4, 4)
        assert chars.total_influence(bent) == 4 * (1 << 2)
        # ... but the LOCAL sensitivity is not flat (unlike parity).
        assert len(set(sig.osv(bent))) > 1

    def test_two_bent_classes_distinguished(self):
        """x0x1^x2x3 vs x0x1^x0x3^x2x3: same spectrum magnitudes, and the
        face/point MSV also separates them iff they are inequivalent."""
        from repro.baselines.matcher import are_npn_equivalent

        b1 = TruthTable.from_function(4, lambda a, b, c, d: (a & b) ^ (c & d))
        b2 = TruthTable.from_function(
            4, lambda a, b, c, d: (a & b) ^ (a & d) ^ (c & d)
        )
        equivalent = are_npn_equivalent(b1, b2)
        assert (compute_msv(b1) == compute_msv(b2)) == equivalent


class TestOcv3Part:
    def test_ocv3_invariance(self):
        import random

        from repro.core.transforms import random_transform

        rng = random.Random(0)
        for _ in range(15):
            tt = TruthTable.random(5, rng)
            image = tt.apply(random_transform(5, rng))
            assert compute_msv(tt, ["ocv3"]) == compute_msv(image, ["ocv3"])

    def test_ocv3_refines_ocv2(self):
        import random

        from repro.core.classifier import FacePointClassifier

        rng = random.Random(1)
        tables = [TruthTable.random(5, rng) for _ in range(300)]
        two = FacePointClassifier(["c0", "ocv1", "ocv2"]).count_classes(tables)
        three = FacePointClassifier(["c0", "ocv1", "ocv2", "ocv3"]).count_classes(
            tables
        )
        assert three >= two

    def test_ocv3_empty_below_arity(self):
        tt = TruthTable.majority(3)  # n=3: C(3,3)*8 = 8 entries
        assert len(compute_msv(tt, ["ocv3"]).key[0]) == 8
        small = TruthTable.from_binary("0110")  # n=2: no 3-subsets
        assert compute_msv(small, ["ocv3"]).key == ((),)
