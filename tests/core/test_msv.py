"""Tests for MSV assembly: canonicalisation, part selection, soundness."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.msv import (
    DEFAULT_PARTS,
    PART_NAMES,
    compute_msv,
    normalize_parts,
)
from repro.core.transforms import all_transforms, random_transform
from repro.core.truth_table import TruthTable


class TestPartSelection:
    def test_normalize_orders_canonically(self):
        assert normalize_parts(["osv", "c0", "oiv"]) == ("c0", "oiv", "osv")

    def test_normalize_dedupes(self):
        assert normalize_parts(["oiv", "oiv"]) == ("oiv",)

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            normalize_parts(["ocv9"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            normalize_parts([])

    def test_all_names_accepted(self):
        assert normalize_parts(PART_NAMES) == PART_NAMES

    def test_key_length_tracks_parts(self):
        tt = TruthTable.majority(3)
        small = compute_msv(tt, ["oiv"])
        full = compute_msv(tt, DEFAULT_PARTS)
        assert len(small.key) == 1
        assert len(full.key) == len(DEFAULT_PARTS)


class TestCanonicalisation:
    def test_output_negation_same_signature(self):
        rng = random.Random(0)
        for n in range(1, 7):
            for _ in range(10):
                tt = TruthTable.random(n, rng)
                assert compute_msv(tt) == compute_msv(~tt)

    def test_unbalanced_phase_is_minority(self):
        # AND3 has |f| = 1 < 4: phase 0 key starts with satisfy count 1.
        and3 = TruthTable.from_function(3, lambda a, b, c: a & b & c)
        msv = compute_msv(and3, ["c0"])
        assert msv.key == (1,)
        assert compute_msv(~and3, ["c0"]).key == (1,)

    def test_balanced_takes_lexicographic_min(self):
        rng = random.Random(1)
        balanced = [
            tt
            for tt in (TruthTable.random(4, rng) for _ in range(200))
            if tt.is_balanced
        ][:20]
        for tt in balanced:
            key = compute_msv(tt).key
            assert key == compute_msv(~tt).key

    def test_nullary_constants_merge(self):
        """n=0 edge: TRUE and FALSE are NPN equivalent (output negation)."""
        assert compute_msv(TruthTable(0, 0)) == compute_msv(TruthTable(0, 1))

    def test_digest_is_stable_and_distinct(self):
        maj = TruthTable.majority(3)
        proj = TruthTable.projection(3, 0)
        assert compute_msv(maj).digest() == compute_msv(maj).digest()
        assert compute_msv(maj).digest() != compute_msv(proj).digest()

    def test_spectral_part(self):
        maj = TruthTable.majority(3)
        msv = compute_msv(maj, ["spectral"])
        # MAJ3 correlates (|W| = 4) exactly with the odd-weight parities.
        assert msv.key == ((0, 0, 0, 0, 4, 4, 4, 4),)

    def test_full_variants(self):
        rng = random.Random(2)
        tt = TruthTable.random(4, rng)
        msv = compute_msv(tt, ["osv_full", "osdv_full"])
        assert compute_msv(~tt, ["osv_full", "osdv_full"]) == msv


class TestSoundness:
    """The never-split invariant: NPN-equivalent functions share an MSV."""

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_exhaustive_small_orbits(self, n):
        rng = random.Random(n)
        for _ in range(8):
            tt = TruthTable.random(n, rng)
            reference = compute_msv(tt)
            for transform in all_transforms(n):
                assert compute_msv(tt.apply(transform)) == reference

    @pytest.mark.parametrize("parts", [["oiv"], ["osv"], ["c0", "ocv1"], ["osdv"]])
    def test_part_subsets_are_invariants(self, parts):
        rng = random.Random(hash(tuple(parts)) & 0xFFFF)
        for n in range(2, 6):
            for _ in range(10):
                tt = TruthTable.random(n, rng)
                image = tt.apply(random_transform(n, rng))
                assert compute_msv(tt, parts) == compute_msv(image, parts)

    def test_discrimination_examples(self):
        # MAJ3 vs x-projection: different classes under every single part.
        maj, proj = TruthTable.majority(3), TruthTable.projection(3, 0)
        for parts in (["oiv"], ["osv"], ["c0", "ocv1"], ["osdv"]):
            assert compute_msv(maj, parts) != compute_msv(proj, parts)


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.randoms(use_true_random=False))
def test_property_msv_never_splits(n, rng):
    tt = TruthTable(n, rng.getrandbits(1 << n))
    image = tt.apply(random_transform(n, rng))
    assert compute_msv(tt) == compute_msv(image)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.randoms(use_true_random=False))
def test_property_subset_keys_refine(n, rng):
    """Adding parts can only split classes, never merge them."""
    a = TruthTable(n, rng.getrandbits(1 << n))
    b = TruthTable(n, rng.getrandbits(1 << n))
    if compute_msv(a) == compute_msv(b):
        assert compute_msv(a, ["oiv"]) == compute_msv(b, ["oiv"])
        assert compute_msv(a, ["osv"]) == compute_msv(b, ["osv"])
