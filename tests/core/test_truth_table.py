"""Tests for the TruthTable value type."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transforms import NPNTransform, random_transform
from repro.core.truth_table import TruthTable

MAJ3 = TruthTable.from_binary("11101000")  # paper Fig. 1a


class TestConstructors:
    def test_from_binary_majority(self):
        assert MAJ3.n == 3
        assert MAJ3.bits == 0xE8

    def test_from_binary_rejects_bad_input(self):
        with pytest.raises(ValueError):
            TruthTable.from_binary("101")  # not a power of two
        with pytest.raises(ValueError):
            TruthTable.from_binary("10a0")
        with pytest.raises(ValueError):
            TruthTable.from_binary("")

    def test_from_binary_allows_separators(self):
        assert TruthTable.from_binary("1110_1000") == MAJ3

    def test_from_hex_roundtrip(self):
        assert TruthTable.from_hex(3, "e8") == MAJ3
        assert TruthTable.from_hex(3, "0xE8") == MAJ3
        assert MAJ3.to_hex() == "e8"

    def test_from_hex_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            TruthTable.from_hex(4, "e8")

    def test_from_function(self):
        tt = TruthTable.from_function(3, lambda a, b, c: (a & b) | c)
        expected = (TruthTable.projection(3, 0) & TruthTable.projection(3, 1)) | (
            TruthTable.projection(3, 2)
        )
        assert tt == expected

    def test_from_minterms(self):
        assert TruthTable.from_minterms(3, [3, 5, 6, 7]) == MAJ3
        with pytest.raises(ValueError):
            TruthTable.from_minterms(2, [4])

    def test_constant(self):
        zero = TruthTable.constant(3, 0)
        one = TruthTable.constant(3, 1)
        assert zero.count_ones() == 0
        assert one.count_ones() == 8
        assert ~zero == one

    def test_projection(self):
        x1 = TruthTable.projection(3, 1)
        assert [x1.evaluate(m) for m in range(8)] == [0, 0, 1, 1, 0, 0, 1, 1]
        assert TruthTable.projection(3, 1, complemented=True) == ~x1

    def test_majority_factory(self):
        assert TruthTable.majority(3) == MAJ3
        with pytest.raises(ValueError):
            TruthTable.majority(4)

    def test_random_is_in_range(self):
        rng = random.Random(1)
        for n in range(1, 8):
            tt = TruthTable.random(n, rng)
            assert 0 <= tt.bits < (1 << (1 << n))

    def test_validation(self):
        with pytest.raises(ValueError):
            TruthTable(2, 16)
        with pytest.raises(ValueError):
            TruthTable(-1, 0)


class TestInspection:
    def test_evaluate_by_tuple_and_index(self):
        assert MAJ3.evaluate((1, 1, 0)) == 1
        assert MAJ3.evaluate((1, 0, 0)) == 0
        assert MAJ3.evaluate(0b011) == 1
        with pytest.raises(ValueError):
            MAJ3.evaluate((1, 1))
        with pytest.raises(ValueError):
            MAJ3.evaluate(8)

    def test_counts(self):
        assert MAJ3.count_ones() == 4
        assert MAJ3.count_zeros() == 4
        assert MAJ3.is_balanced
        assert not (MAJ3 & TruthTable.projection(3, 0)).is_balanced

    def test_is_constant(self):
        assert TruthTable.constant(4, 0).is_constant
        assert TruthTable.constant(4, 1).is_constant
        assert not MAJ3.is_constant

    def test_minterms(self):
        assert list(MAJ3.minterms()) == [3, 5, 6, 7]
        assert list(TruthTable.constant(2, 0).minterms()) == []

    def test_support_full(self):
        assert MAJ3.support() == (0, 1, 2)
        assert not MAJ3.is_degenerate

    def test_support_degenerate(self):
        # x0 AND x2 as a 3-var function ignores x1.
        tt = TruthTable.projection(3, 0) & TruthTable.projection(3, 2)
        assert tt.support() == (0, 2)
        assert tt.is_degenerate
        shrunk = tt.shrink_to_support()
        assert shrunk.n == 2
        assert shrunk == TruthTable.from_binary("1000")

    def test_shrink_constant(self):
        assert TruthTable.constant(4, 1).shrink_to_support() == TruthTable(0, 1)

    def test_symmetric_pairs(self):
        assert MAJ3.has_symmetric_pair(0, 1)
        assert MAJ3.has_symmetric_pair(1, 2)
        and_or = TruthTable.from_function(3, lambda a, b, c: (a & b) | c)
        assert and_or.has_symmetric_pair(0, 1)
        assert not and_or.has_symmetric_pair(0, 2)

    def test_skew_symmetric_pair(self):
        # f = x0 XOR x1 is invariant under swapping x0 with ~x1.
        xor = TruthTable.from_binary("0110")
        assert xor.has_skew_symmetric_pair(0, 1)
        and2 = TruthTable.from_binary("1000")
        assert not and2.has_skew_symmetric_pair(0, 1)


class TestAlgebra:
    def test_operators(self):
        a = TruthTable.projection(2, 0)
        b = TruthTable.projection(2, 1)
        assert (a & b) == TruthTable.from_binary("1000")
        assert (a | b) == TruthTable.from_binary("1110")
        assert (a ^ b) == TruthTable.from_binary("0110")
        assert ~(a & b) == TruthTable.from_binary("0111")

    def test_implies(self):
        a = TruthTable.projection(2, 0)
        assert (a & TruthTable.projection(2, 1)).implies(a)
        assert not a.implies(a & TruthTable.projection(2, 1))

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            TruthTable.projection(2, 0) & TruthTable.projection(3, 0)
        with pytest.raises(TypeError):
            TruthTable.projection(2, 0) & 3

    def test_ordering_and_hash(self):
        a = TruthTable.from_binary("1000")
        b = TruthTable.from_binary("1110")
        assert a < b
        assert len({a, b, TruthTable.from_binary("1000")}) == 2


class TestCofactorsAndTransforms:
    def test_cofactor_semantics(self):
        # MAJ3 | x2=1 is OR of the other two; | x2=0 is AND.
        assert MAJ3.cofactor(2, 1) == TruthTable.from_binary("1110")
        assert MAJ3.cofactor(2, 0) == TruthTable.from_binary("1000")

    def test_cofactor_count_matches_cofactor(self):
        rng = random.Random(2)
        for _ in range(20):
            tt = TruthTable.random(5, rng)
            for i in range(5):
                for v in (0, 1):
                    assert tt.cofactor_count(i, v) == tt.cofactor(i, v).count_ones()

    def test_cofactor_of_nullary_raises(self):
        with pytest.raises(ValueError):
            TruthTable(0, 1).cofactor(0, 0)

    def test_shannon_expansion(self):
        rng = random.Random(3)
        tt = TruthTable.random(4, rng)
        for i in range(4):
            xi = TruthTable.projection(4, i)
            pos = tt.cofactor(i, 1).extend_insert(i)
            neg = tt.cofactor(i, 0).extend_insert(i)
            assert (xi & pos) | (~xi & neg) == tt

    def test_flip_and_swap(self):
        a, b = TruthTable.projection(3, 0), TruthTable.projection(3, 1)
        f = a & ~b
        assert f.flip_input(1) == (a & b)
        assert f.swap_inputs(0, 1) == (b & ~a)
        assert f.flip_inputs(0b011) == (~a & b)

    def test_permute(self):
        f = TruthTable.projection(3, 0)
        # g(x) = f(x2, x0, x1) = x2.
        assert f.permute((2, 0, 1)) == TruthTable.projection(3, 2)

    def test_apply_transform(self):
        rng = random.Random(4)
        tt = TruthTable.random(4, rng)
        t = random_transform(4, rng)
        assert tt.apply(t).bits == t.apply_table(tt.bits, 4)
        assert tt.apply(NPNTransform.identity(4)) == tt

    def test_extend(self):
        and2 = TruthTable.from_binary("1000")
        wide = and2.extend(4)
        assert wide.n == 4
        assert wide.support() == (0, 1)
        assert wide.shrink_to_support() == and2
        with pytest.raises(ValueError):
            wide.extend(2)


class TestRendering:
    def test_binary_roundtrip(self):
        assert MAJ3.to_binary() == "11101000"
        assert TruthTable.from_binary(MAJ3.to_binary()) == MAJ3

    def test_repr_and_str(self):
        assert "e8" in repr(MAJ3)
        assert str(MAJ3) == "0xe8"
        assert str(TruthTable.from_binary("10")) == "10"

    def test_bit_array(self):
        arr = MAJ3.bit_array()
        assert arr.tolist() == [0, 0, 0, 1, 0, 1, 1, 1]


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=7), st.randoms(use_true_random=False))
def test_property_double_complement(n, rng):
    tt = TruthTable(n, rng.getrandbits(1 << n))
    assert ~~tt == tt
    assert (tt ^ tt).count_ones() == 0
    assert (tt ^ ~tt).count_ones() == 1 << n


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=2, max_value=7), st.randoms(use_true_random=False))
def test_property_cofactor_counts_sum(n, rng):
    """|f| = |f_{xi=0}| + |f_{xi=1}| for every variable (face decomposition)."""
    tt = TruthTable(n, rng.getrandbits(1 << n))
    for i in range(n):
        assert tt.cofactor_count(i, 0) + tt.cofactor_count(i, 1) == tt.count_ones()
