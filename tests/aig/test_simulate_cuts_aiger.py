"""Tests for simulation, cut enumeration, cut functions, and AIGER I/O."""

import random

import pytest

from repro.aig import aiger, builders
from repro.aig.cuts import Cut, cut_statistics, enumerate_cuts, merge_cuts
from repro.aig.network import AIG
from repro.aig.simulate import cone_function, cut_function, simulate, simulate_words
from repro.core.truth_table import TruthTable


def sample_aig():
    aig = AIG()
    a, b, c = aig.add_inputs(3)
    ab = aig.add_and(a, b)
    f = aig.add_or(ab, c)
    aig.add_output(f, "f")
    return aig, (a, b, c, ab, f)


class TestSimulation:
    def test_simulate_single_patterns(self):
        aig, _ = sample_aig()
        for m in range(8):
            bits = [(m >> k) & 1 for k in range(3)]
            expected = int((bits[0] and bits[1]) or bits[2])
            assert simulate(aig, bits) == [expected]

    def test_simulate_words_parallel(self):
        aig, (a, b, c, ab, f) = sample_aig()
        from repro.core import bitops

        words = simulate_words(
            aig, [bitops.var_mask(3, k) for k in range(3)], width=8
        )
        assert words[f] == TruthTable.from_function(
            3, lambda x, y, z: (x & y) | z
        ).bits
        assert words[f ^ 1] == words[f] ^ 0xFF

    def test_simulate_validates_arity(self):
        aig, _ = sample_aig()
        with pytest.raises(ValueError):
            simulate(aig, [0, 1])


class TestConeFunction:
    def test_cone_over_inputs(self):
        aig, (a, b, c, ab, f) = sample_aig()
        tt = cone_function(aig, f, [1, 2, 3])
        assert tt == TruthTable.from_function(3, lambda x, y, z: (x & y) | z)

    def test_cone_over_internal_leaf(self):
        aig, (a, b, c, ab, f) = sample_aig()
        # Treat the AND node (var 4) and input c (var 3) as leaves.
        tt = cone_function(aig, f, [ab // 2, c // 2])
        assert tt == TruthTable.from_function(2, lambda u, v: u | v)

    def test_cone_respects_leaf_order(self):
        aig, (a, b, c, ab, f) = sample_aig()
        forward = cone_function(aig, f, [1, 2, 3])
        swapped = cone_function(aig, f, [3, 2, 1])
        assert swapped == forward.permute((2, 1, 0))

    def test_cone_escape_raises(self):
        aig, (a, b, c, ab, f) = sample_aig()
        with pytest.raises(ValueError):
            cone_function(aig, f, [ab // 2])  # path through c escapes

    def test_complemented_root(self):
        aig, (a, b, c, ab, f) = sample_aig()
        tt = cone_function(aig, f ^ 1, [1, 2, 3])
        assert tt == ~TruthTable.from_function(3, lambda x, y, z: (x & y) | z)


class TestCutEnumeration:
    def test_cut_dataclass(self):
        cut = Cut.of((3, 1, 2))
        assert cut.leaves == (3, 1, 2)  # `of` does not sort; callers do
        assert Cut.of((1,)).dominates(Cut.of((1, 2)))
        assert not Cut.of((1, 3)).dominates(Cut.of((1, 2)))

    def test_merge_respects_k(self):
        a, b = Cut.of((1, 2)), Cut.of((3, 4))
        assert merge_cuts(a, b, 4).leaves == (1, 2, 3, 4)
        assert merge_cuts(a, b, 3) is None

    def test_inputs_have_trivial_cut(self):
        aig, _ = sample_aig()
        cuts = enumerate_cuts(aig, k=3)
        assert cuts[1] == [Cut.of((1,))]

    def test_every_cut_is_a_cut(self):
        """Every enumerated cut yields a well-defined cone function."""
        aig = builders.ripple_adder(4)
        cuts = enumerate_cuts(aig, k=5)
        for variable in aig.and_variables():
            for cut in cuts[variable]:
                tt = cut_function(aig, variable, cut.leaves)
                assert tt.n == cut.size

    def test_cut_functions_match_brute_force(self):
        """Cut truth tables agree with direct whole-network simulation."""
        rng = random.Random(0)
        aig = builders.multiplier(3)
        cuts = enumerate_cuts(aig, k=4)
        inputs = list(aig.input_variables())
        for variable in list(aig.and_variables())[::5]:
            for cut in cuts[variable][:3]:
                if not all(leaf in inputs for leaf in cut.leaves):
                    continue
                tt = cut_function(aig, variable, cut.leaves)
                for _ in range(8):
                    stimulus = [rng.getrandbits(1) for _ in inputs]
                    words = simulate_words(aig, stimulus, width=1)
                    index = sum(
                        (stimulus[leaf - 1] & 1) << pos
                        for pos, leaf in enumerate(sorted(cut.leaves))
                    )
                    assert tt.evaluate(index) == (words[2 * variable] & 1)

    def test_max_cuts_cap(self):
        aig = builders.multiplier(4)
        capped = enumerate_cuts(aig, k=6, max_cuts=4)
        assert all(len(c) <= 5 for c in capped.values())  # 4 + trivial

    def test_no_dominated_cuts(self):
        aig = builders.ripple_adder(4)
        cuts = enumerate_cuts(aig, k=4)
        for cut_list in cuts.values():
            for i, a in enumerate(cut_list):
                for j, b in enumerate(cut_list):
                    if i != j and a.size < b.size:
                        assert not a.dominates(b)

    def test_statistics(self):
        aig = builders.ripple_adder(3)
        stats = cut_statistics(enumerate_cuts(aig, k=4))
        assert sum(stats.values()) > 0
        assert all(1 <= size <= 4 for size in stats)

    def test_k_validation(self):
        aig, _ = sample_aig()
        with pytest.raises(ValueError):
            enumerate_cuts(aig, k=0)


class TestAiger:
    def test_roundtrip_preserves_behaviour(self):
        rng = random.Random(1)
        for build in (
            lambda: builders.ripple_adder(4),
            lambda: builders.priority_encoder(5),
            lambda: builders.random_control(5, 30, seed=9),
        ):
            original = build()
            rebuilt = aiger.loads(aiger.dumps(original))
            assert rebuilt.num_inputs == original.num_inputs
            assert rebuilt.num_outputs == original.num_outputs
            for _ in range(10):
                stimulus = [rng.getrandbits(1) for _ in range(original.num_inputs)]
                assert simulate(rebuilt, stimulus) == simulate(original, stimulus)

    def test_roundtrip_preserves_names(self):
        original = builders.ripple_adder(2)
        rebuilt = aiger.loads(aiger.dumps(original))
        assert rebuilt.input_names() == original.input_names()
        assert [n for _, n in rebuilt.outputs()] == [
            n for _, n in original.outputs()
        ]

    def test_file_roundtrip(self, tmp_path):
        original = builders.decoder(3)
        path = tmp_path / "dec3.aag"
        aiger.write_aiger(original, path)
        rebuilt = aiger.read_aiger(path)
        assert rebuilt.name == "dec3"
        assert rebuilt.num_outputs == 8

    def test_parse_minimal(self):
        text = "aag 3 2 0 1 1\n2\n4\n6\n6 4 2\n"
        aig = aiger.loads(text)
        assert aig.num_inputs == 2
        assert simulate(aig, [1, 1]) == [1]
        assert simulate(aig, [1, 0]) == [0]

    def test_parse_rejects_latches(self):
        with pytest.raises(ValueError):
            aiger.loads("aag 1 0 1 0 0\n2 3\n")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            aiger.loads("not aiger")
        with pytest.raises(ValueError):
            aiger.loads("")

    def test_parse_rejects_forward_reference(self):
        text = "aag 3 1 0 1 2\n2\n4\n4 6 2\n6 2 2\n"
        with pytest.raises(ValueError):
            aiger.loads(text)
