"""Builders verified bit-for-bit against Python integer arithmetic."""

import random

import pytest

from repro.aig import builders
from repro.aig.simulate import simulate


def drive(aig, values_by_prefix):
    """Order input values according to the AIG's input names."""
    inputs = []
    for name in aig.input_names():
        prefix = name.rstrip("0123456789")
        index = int(name[len(prefix):])
        inputs.append((values_by_prefix[prefix] >> index) & 1)
    return simulate(aig, inputs)


def word(bits):
    return sum(b << k for k, b in enumerate(bits))


class TestAdders:
    @pytest.mark.parametrize("builder", [builders.ripple_adder, builders.carry_lookahead_adder])
    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_exhaustive_small(self, builder, width):
        aig = builder(width)
        for a in range(1 << width):
            for b in range(1 << width):
                out = drive(aig, {"a": a, "b": b})
                assert word(out) == a + b

    def test_random_wide(self):
        rng = random.Random(0)
        aig = builders.ripple_adder(12)
        for _ in range(20):
            a, b = rng.getrandbits(12), rng.getrandbits(12)
            assert word(drive(aig, {"a": a, "b": b})) == a + b

    def test_adders_agree(self):
        rng = random.Random(1)
        ripple = builders.ripple_adder(8)
        cla = builders.carry_lookahead_adder(8)
        for _ in range(20):
            stimulus = {"a": rng.getrandbits(8), "b": rng.getrandbits(8)}
            assert drive(ripple, stimulus) == drive(cla, stimulus)


class TestMultipliers:
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_exhaustive(self, width):
        aig = builders.multiplier(width)
        for a in range(1 << width):
            for b in range(1 << width):
                assert word(drive(aig, {"a": a, "b": b})) == a * b

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_square(self, width):
        aig = builders.square(width)
        for a in range(1 << width):
            assert word(drive(aig, {"a": a})) == a * a


class TestSubtractDivideSqrt:
    @pytest.mark.parametrize("width", [1, 3, 5])
    def test_subtractor_exhaustive(self, width):
        aig = builders.subtractor(width)
        for a in range(1 << width):
            for b in range(1 << width):
                out = drive(aig, {"a": a, "b": b})
                diff, borrow = word(out[:-1]), out[-1]
                assert diff == (a - b) % (1 << width)
                assert borrow == int(a < b)

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_divider_exhaustive(self, width):
        aig = builders.divider(width)
        for a in range(1 << width):
            for b in range(1 << width):
                out = drive(aig, {"a": a, "b": b})
                q, r = word(out[:width]), word(out[width:])
                if b == 0:
                    # Restoring-hardware convention for division by zero.
                    assert q == (1 << width) - 1
                    assert r == a
                else:
                    assert (q, r) == divmod(a, b)

    def test_divider_random_wide(self):
        rng = random.Random(11)
        width = 7
        aig = builders.divider(width)
        for _ in range(25):
            a = rng.getrandbits(width)
            b = rng.randrange(1, 1 << width)
            out = drive(aig, {"a": a, "b": b})
            assert (word(out[:width]), word(out[width:])) == divmod(a, b)

    @pytest.mark.parametrize("width", [2, 4, 5, 6])
    def test_int_sqrt_exhaustive(self, width):
        import math

        aig = builders.int_sqrt(width)
        pairs = (width + 1) // 2
        for a in range(1 << width):
            out = drive(aig, {"a": a})
            root = word(out[:pairs])
            remainder = word(out[pairs:])
            assert root == math.isqrt(a)
            assert remainder == a - root * root


class TestShifterAndCompare:
    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_barrel_rotate(self, width):
        aig = builders.barrel_shifter(width)
        rng = random.Random(width)
        for _ in range(20):
            data = rng.getrandbits(width)
            shift = rng.randrange(width)
            out = word(drive(aig, {"d": data, "s": shift}))
            rotated = ((data << shift) | (data >> (width - shift))) & (
                (1 << width) - 1
            )
            assert out == rotated

    def test_barrel_rejects_bad_width(self):
        with pytest.raises(ValueError):
            builders.barrel_shifter(5)

    @pytest.mark.parametrize("width", [1, 3, 5])
    def test_comparator(self, width):
        aig = builders.comparator(width)
        for a in range(1 << width):
            for b in range(1 << width):
                gt, eq = drive(aig, {"a": a, "b": b})
                assert gt == int(a > b)
                assert eq == int(a == b)

    @pytest.mark.parametrize("width", [2, 4])
    def test_max_unit(self, width):
        aig = builders.max_unit(width)
        for a in range(1 << width):
            for b in range(1 << width):
                assert word(drive(aig, {"a": a, "b": b})) == max(a, b)


class TestControlBlocks:
    @pytest.mark.parametrize("width", [1, 4, 6])
    def test_priority_encoder(self, width):
        aig = builders.priority_encoder(width)
        for r in range(1 << width):
            out = drive(aig, {"r": r})
            grants, any_bit = out[:-1], out[-1]
            assert any_bit == int(r != 0)
            if r:
                winner = (r & -r).bit_length() - 1
                assert grants == [int(k == winner) for k in range(width)]
            else:
                assert grants == [0] * width

    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_decoder(self, bits):
        aig = builders.decoder(bits)
        for s in range(1 << bits):
            out = drive(aig, {"s": s})
            assert out == [int(v == s) for v in range(1 << bits)]

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_round_robin_arbiter(self, width):
        aig = builders.round_robin_arbiter(width)
        for r in range(1 << width):
            for pointer_slot in range(width):
                out = drive(aig, {"r": r, "p": 1 << pointer_slot})
                expected = [0] * width
                for offset in range(width):
                    k = (pointer_slot + offset) % width
                    if (r >> k) & 1:
                        expected[k] = 1
                        break
                assert out == expected

    @pytest.mark.parametrize("inputs", [3, 5, 7])
    def test_majority_voter(self, inputs):
        aig = builders.majority_voter(inputs)
        for v in range(1 << inputs):
            expected = int(bin(v).count("1") > inputs // 2)
            assert drive(aig, {"v": v}) == [expected]

    def test_voter_rejects_even(self):
        with pytest.raises(ValueError):
            builders.majority_voter(4)

    @pytest.mark.parametrize("inputs", [1, 4, 9])
    def test_parity(self, inputs):
        aig = builders.parity(inputs)
        for v in range(1 << inputs):
            assert drive(aig, {"x": v}) == [bin(v).count("1") % 2]

    def test_random_control_deterministic(self):
        a = builders.random_control(6, 40, seed=7)
        b = builders.random_control(6, 40, seed=7)
        assert a.num_ands == b.num_ands
        rng = random.Random(0)
        for _ in range(10):
            stimulus = [rng.getrandbits(1) for _ in range(6)]
            assert simulate(a, stimulus) == simulate(b, stimulus)

    def test_random_control_seeds_differ(self):
        a = builders.random_control(6, 40, seed=1)
        b = builders.random_control(6, 40, seed=2)
        rng = random.Random(3)
        same = all(
            simulate(a, stim) == simulate(b, stim)
            for stim in ([rng.getrandbits(1) for _ in range(6)] for _ in range(20))
        )
        assert not same or a.num_ands != b.num_ands
